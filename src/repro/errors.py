"""Exception hierarchy shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An object was configured with invalid or inconsistent parameters."""


class ResourceBudgetError(ReproError):
    """A design exceeds its neuromorphic resource budget (cores, axons...)."""


class TrainingError(ReproError):
    """A training run failed in a way the caller must handle."""


class CompilationError(ReproError):
    """A corelet tree could not be compiled onto neurosynaptic cores."""


class RoutingError(ReproError):
    """Spike routing between cores was configured inconsistently."""


class ServiceError(ReproError):
    """The serving layer rejected or failed a request.

    All serving-layer errors keep their constructor arguments in
    ``args`` only, so they pickle cleanly across worker boundaries.
    """


class QueueFullError(ServiceError):
    """The bounded request queue is at capacity (backpressure).

    Raised at submission time: the caller should retry later or shed
    load — the service never grows its queue beyond the configured
    capacity.
    """


class DeadlineExceededError(ServiceError):
    """A request's deadline expired before a result was produced."""


class ServiceClosedError(ServiceError):
    """The service is shut down and no longer accepts requests."""


__all__ = [
    "CompilationError",
    "ConfigurationError",
    "DeadlineExceededError",
    "QueueFullError",
    "ReproError",
    "ResourceBudgetError",
    "RoutingError",
    "ServiceClosedError",
    "ServiceError",
    "TrainingError",
]
