"""Exception hierarchy shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An object was configured with invalid or inconsistent parameters."""


class ResourceBudgetError(ReproError):
    """A design exceeds its neuromorphic resource budget (cores, axons...)."""


class TrainingError(ReproError):
    """A training run failed in a way the caller must handle."""


class CompilationError(ReproError):
    """A corelet tree could not be compiled onto neurosynaptic cores."""


class RoutingError(ReproError):
    """Spike routing between cores was configured inconsistently."""


class ServiceError(ReproError):
    """The serving layer rejected or failed a request.

    All serving-layer errors keep their constructor arguments in
    ``args`` only, so they pickle cleanly across worker boundaries.
    """


class QueueFullError(ServiceError):
    """The bounded request queue is at capacity (backpressure).

    Raised at submission time: the caller should retry later or shed
    load — the service never grows its queue beyond the configured
    capacity.
    """


class DeadlineExceededError(ServiceError):
    """A request's deadline expired before a result was produced."""


class ServiceClosedError(ServiceError):
    """The service is shut down and no longer accepts requests."""


class TransientScorerError(ServiceError):
    """A scorer failed in a way that is expected to heal on retry.

    Models raise (or wrap their backend's fault as) this type to opt a
    failure into the serving layer's retry-with-backoff path; any other
    exception type fails the batch immediately.
    """


class CircuitOpenError(ServiceError):
    """The per-model circuit breaker is open; the call was not attempted.

    Raised by :class:`repro.serve.resilience.CircuitBreaker` while it is
    cooling down after repeated scorer failures. Services configured
    with a ``degraded_value`` convert this into a degraded-mode response
    instead of an error.
    """


class WorkerDiedError(TransientScorerError):
    """A shard's worker process died while a batch was in flight.

    A transient fault by definition — the sharded service respawns the
    worker and redispatches the batch; this error only reaches callers
    when the redispatch budget is exhausted.
    """


__all__ = [
    "CircuitOpenError",
    "CompilationError",
    "ConfigurationError",
    "DeadlineExceededError",
    "QueueFullError",
    "ReproError",
    "ResourceBudgetError",
    "RoutingError",
    "ServiceClosedError",
    "ServiceError",
    "TrainingError",
    "TransientScorerError",
    "WorkerDiedError",
]
