"""Exception hierarchy shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An object was configured with invalid or inconsistent parameters."""


class ResourceBudgetError(ReproError):
    """A design exceeds its neuromorphic resource budget (cores, axons...)."""


class TrainingError(ReproError):
    """A training run failed in a way the caller must handle."""


class CompilationError(ReproError):
    """A corelet tree could not be compiled onto neurosynaptic cores."""


class RoutingError(ReproError):
    """Spike routing between cores was configured inconsistently."""
