"""repro: partitioned CNNs for neuromorphic feature extraction.

A reproduction of Tsai et al., "Co-training of Feature Extraction and
Classification using Partitioned Convolutional Neural Networks" (DAC 2017).

The package implements, from scratch:

- a tick-accurate simulator of the IBM TrueNorth neurosynaptic architecture
  (:mod:`repro.truenorth`),
- a corelet composition and compilation layer (:mod:`repro.corelets`),
- spike-coding schemes at configurable precision (:mod:`repro.coding`),
- reference, FPGA-style, and NApprox HoG feature extractors
  (:mod:`repro.hog`, :mod:`repro.napprox`),
- an Eedn-style trinary-weight spiking CNN training framework
  (:mod:`repro.eedn`),
- the Parrot HoG trained feature extractor (:mod:`repro.parrot`),
- the Absorbed monolithic classifier experiment (:mod:`repro.absorbed`),
- a linear SVM with hard-negative mining (:mod:`repro.svm`),
- the multi-scale sliding-window pedestrian-detection pipeline with
  miss-rate/FPPI evaluation (:mod:`repro.detection`),
- a synthetic INRIA-like pedestrian dataset (:mod:`repro.datasets`),
- the power/throughput deployment model behind Table 2 (:mod:`repro.power`).
"""

from repro.errors import (
    ConfigurationError,
    ReproError,
    ResourceBudgetError,
    TrainingError,
)

__version__ = "1.0.0"

__all__ = [
    "ConfigurationError",
    "ReproError",
    "ResourceBudgetError",
    "TrainingError",
    "__version__",
]
