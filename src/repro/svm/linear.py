"""Linear SVM trained by dual coordinate descent or Pegasos SGD."""

from typing import Optional

import numpy as np

from repro.utils.rng import RngLike, resolve_rng


class LinearSVM:
    """L2-regularised linear SVM for binary classification.

    Labels are {-1, +1}. The decision function is ``x . w + b``; the bias
    is handled by an augmented constant feature so both solvers treat it
    uniformly.

    Args:
        C: inverse regularisation strength (larger = harder margin).
        solver: ``"dcd"`` (dual coordinate descent, default) or
            ``"pegasos"`` (primal SGD).
        epochs: passes over the data.
        tol: dual-violation tolerance for early stopping (dcd only).
        bias_scale: value of the augmented constant feature; larger
            values let the bias move more freely under regularisation.
        rng: permutation randomness.
    """

    def __init__(
        self,
        C: float = 1.0,
        solver: str = "dcd",
        epochs: int = 40,
        tol: float = 1e-4,
        bias_scale: float = 1.0,
        rng: RngLike = None,
    ) -> None:
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        if solver not in ("dcd", "pegasos"):
            raise ValueError(f"solver must be 'dcd' or 'pegasos', got {solver!r}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.C = float(C)
        self.solver = solver
        self.epochs = int(epochs)
        self.tol = float(tol)
        self.bias_scale = float(bias_scale)
        self._rng = resolve_rng(rng)
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LinearSVM":
        """Train on ``(n, f)`` features and ``(n,)`` labels in {-1, +1}."""
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.float64).reshape(-1)
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError(
                f"features {x.shape} and labels {y.shape} are inconsistent"
            )
        if not np.all(np.isin(y, (-1.0, 1.0))):
            raise ValueError("labels must be in {-1, +1}")
        if len(np.unique(y)) < 2:
            raise ValueError("training needs both classes present")

        augmented = np.hstack([x, np.full((x.shape[0], 1), self.bias_scale)])
        if self.solver == "dcd":
            w = self._fit_dcd(augmented, y)
        else:
            w = self._fit_pegasos(augmented, y)
        self.weights = w[:-1].copy()
        self.bias = float(w[-1] * self.bias_scale)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed margins for ``(n, f)`` or ``(f,)`` feature input."""
        if self.weights is None:
            raise RuntimeError("fit must be called before decision_function")
        x = np.asarray(features, dtype=np.float64)
        single = x.ndim == 1
        if single:
            x = x[None, :]
        if x.shape[1] != self.weights.shape[0]:
            raise ValueError(
                f"expected {self.weights.shape[0]} features, got {x.shape[1]}"
            )
        scores = x @ self.weights + self.bias
        return scores[0] if single else scores

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Class labels in {-1, +1}."""
        return np.where(self.decision_function(features) >= 0.0, 1, -1)

    # ------------------------------------------------------------------
    def _fit_dcd(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Dual coordinate descent for L1-loss SVM (Hsieh et al. 2008)."""
        n = x.shape[0]
        alpha = np.zeros(n, dtype=np.float64)
        w = np.zeros(x.shape[1], dtype=np.float64)
        diag = np.einsum("ij,ij->i", x, x)
        diag = np.maximum(diag, 1e-12)
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            max_violation = 0.0
            for i in order:
                gradient = y[i] * (x[i] @ w) - 1.0
                projected = gradient
                if alpha[i] <= 0.0:
                    projected = min(gradient, 0.0)
                elif alpha[i] >= self.C:
                    projected = max(gradient, 0.0)
                max_violation = max(max_violation, abs(projected))
                if projected == 0.0:
                    continue
                old = alpha[i]
                alpha[i] = min(max(old - gradient / diag[i], 0.0), self.C)
                w += (alpha[i] - old) * y[i] * x[i]
            if max_violation < self.tol:
                break
        return w

    def _fit_pegasos(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Primal stochastic subgradient descent (Shalev-Shwartz 2007)."""
        n = x.shape[0]
        lam = 1.0 / (self.C * n)
        w = np.zeros(x.shape[1], dtype=np.float64)
        step = 0
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            for i in order:
                step += 1
                eta = 1.0 / (lam * step)
                margin = y[i] * (x[i] @ w)
                w *= 1.0 - eta * lam
                if margin < 1.0:
                    w += eta * y[i] * x[i]
        return w

    def __repr__(self) -> str:
        state = "fitted" if self.weights is not None else "unfitted"
        return f"LinearSVM(C={self.C}, solver={self.solver!r}, {state})"


__all__ = ["LinearSVM"]
