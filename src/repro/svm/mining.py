"""Hard-negative mining: the bootstrapping loop of the paper's Section 4.

"After the training of an SVM model is completed, we go through negative
training images to filter false positives, to augment the SVM model as
negatives." The miner is decoupled from any particular detector: the
caller supplies a function that, given the current model, returns the
feature vectors of windows the model wrongly scores positive.
"""

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.svm.linear import LinearSVM

NegativeScanner = Callable[[LinearSVM], np.ndarray]
"""Given the current model, return ``(n, f)`` hard-negative features."""


@dataclass
class MiningReport:
    """History of a mining run.

    Attributes:
        rounds_run: bootstrapping rounds completed (initial fit excluded).
        mined_per_round: hard negatives added in each round.
        final_training_size: examples in the last fit.
    """

    rounds_run: int = 0
    mined_per_round: List[int] = field(default_factory=list)
    final_training_size: int = 0


class HardNegativeMiner:
    """Train a linear SVM with iterative hard-negative bootstrapping.

    Args:
        svm_factory: zero-argument callable building a fresh
            :class:`LinearSVM` for each (re)fit, so solver state never
            leaks across rounds.
        rounds: maximum bootstrapping rounds after the initial fit.
        max_new_per_round: cap on mined negatives added per round (the
            highest-scoring are kept when the scanner returns more).
        min_new_to_continue: stop early when a round mines fewer than
            this many new negatives.
    """

    def __init__(
        self,
        svm_factory: Callable[[], LinearSVM],
        rounds: int = 2,
        max_new_per_round: int = 2000,
        min_new_to_continue: int = 1,
    ) -> None:
        if rounds < 0:
            raise ValueError(f"rounds must be >= 0, got {rounds}")
        self.svm_factory = svm_factory
        self.rounds = rounds
        self.max_new_per_round = max_new_per_round
        self.min_new_to_continue = min_new_to_continue
        self.model: Optional[LinearSVM] = None
        self.report = MiningReport()

    def fit(
        self,
        positive_features: np.ndarray,
        negative_features: np.ndarray,
        scan_negatives: Optional[NegativeScanner] = None,
    ) -> LinearSVM:
        """Run the initial fit plus mining rounds.

        Args:
            positive_features: ``(p, f)`` positive window descriptors.
            negative_features: ``(n, f)`` initial random negative window
                descriptors.
            scan_negatives: hard-negative source; when ``None`` only the
                initial fit runs.

        Returns:
            The final trained model (also stored on :attr:`model`).
        """
        positives = np.asarray(positive_features, dtype=np.float64)
        negatives = np.asarray(negative_features, dtype=np.float64)
        if positives.ndim != 2 or negatives.ndim != 2:
            raise ValueError("feature matrices must be 2-D")
        if positives.shape[1] != negatives.shape[1]:
            raise ValueError(
                f"feature widths differ: {positives.shape[1]} vs {negatives.shape[1]}"
            )

        self.report = MiningReport()
        model = self._fit_once(positives, negatives)
        if scan_negatives is not None:
            for _ in range(self.rounds):
                mined = np.asarray(scan_negatives(model), dtype=np.float64)
                if mined.size == 0:
                    break
                if mined.ndim != 2 or mined.shape[1] != positives.shape[1]:
                    raise ValueError(
                        f"scanner returned shape {mined.shape}, expected "
                        f"(n, {positives.shape[1]})"
                    )
                if mined.shape[0] > self.max_new_per_round:
                    scores = model.decision_function(mined)
                    keep = np.argsort(scores)[::-1][: self.max_new_per_round]
                    mined = mined[keep]
                self.report.mined_per_round.append(mined.shape[0])
                self.report.rounds_run += 1
                negatives = np.vstack([negatives, mined])
                model = self._fit_once(positives, negatives)
                if mined.shape[0] < self.min_new_to_continue:
                    break
        self.report.final_training_size = positives.shape[0] + negatives.shape[0]
        self.model = model
        return model

    def _fit_once(self, positives: np.ndarray, negatives: np.ndarray) -> LinearSVM:
        features = np.vstack([positives, negatives])
        labels = np.concatenate(
            [np.ones(positives.shape[0]), -np.ones(negatives.shape[0])]
        )
        model = self.svm_factory()
        model.fit(features, labels)
        return model


__all__ = ["HardNegativeMiner", "MiningReport", "NegativeScanner"]
