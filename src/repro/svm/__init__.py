"""Linear support-vector machines with hard-negative mining.

Replaces the paper's LIBSVM dependency (Chang & Lin 2011). Two solvers
for the same L2-regularised hinge objective:

- :class:`~repro.svm.linear.LinearSVM` with ``solver="dcd"`` — dual
  coordinate descent (the LIBLINEAR algorithm), deterministic given a
  seed and accurate at moderate data sizes;
- ``solver="pegasos"`` — primal stochastic subgradient descent, cheaper
  per epoch for very large mined training sets.

:mod:`repro.svm.mining` implements the bootstrapping loop of the paper's
Section 4: train, scan the negative training images for false positives,
augment the training set with them, retrain.
"""

from repro.svm.linear import LinearSVM
from repro.svm.mining import HardNegativeMiner, MiningReport

__all__ = ["HardNegativeMiner", "LinearSVM", "MiningReport"]
