"""Accumulator corelets: rate-coded addition of spike counts."""

from typing import Sequence

import numpy as np

from repro.corelets.corelet import BuiltCorelet, Corelet
from repro.corelets.library.weighted_sum import NeuronMode, WeightedSumCorelet
from repro.truenorth.system import NeurosynapticSystem


class AccumulatorCorelet(Corelet):
    """Sum the spike counts of groups of input lines.

    Output ``g`` emits one spike per ``threshold`` accumulated input
    spikes from its group (linear reset), so over a long enough drain
    window the output count equals ``floor(group count / threshold)``.
    Because a neuron fires at most once per tick, bursts larger than one
    spike per tick are smeared over subsequent ticks rather than lost —
    give the system a drain phase of at least the maximum expected count.

    Args:
        group_sizes: number of consecutive input lines in each group.
        threshold: input spikes consumed per output spike (default 1).
        name: corelet label.
    """

    def __init__(
        self, group_sizes: Sequence[int], threshold: int = 1, name: str = "acc"
    ) -> None:
        super().__init__(name)
        sizes = [int(s) for s in group_sizes]
        if not sizes or any(s < 1 for s in sizes):
            raise ValueError(f"group_sizes must be positive, got {group_sizes}")
        n_in = sum(sizes)
        weights = np.zeros((n_in, len(sizes)), dtype=np.int64)
        cursor = 0
        for group, size in enumerate(sizes):
            weights[cursor : cursor + size, group] = 1
            cursor += size
        self._inner = WeightedSumCorelet(
            weights, threshold=threshold, mode=NeuronMode.RECT_RATE, name=name
        )
        self._n_in = n_in
        self._n_out = len(sizes)

    @property
    def input_width(self) -> int:
        """Axon lines consumed (one per accumulated input)."""
        return self._n_in

    @property
    def output_width(self) -> int:
        """Neuron outputs produced (one per accumulator)."""
        return self._n_out

    def build(self, system: NeurosynapticSystem) -> BuiltCorelet:
        """Delegate to the underlying weighted sum."""
        built = self._inner.build(system)
        return self._collect(list(built.inputs), list(built.outputs), list(built.core_ids))


__all__ = ["AccumulatorCorelet"]
