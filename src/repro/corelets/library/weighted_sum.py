"""Weighted-sum corelets: TrueNorth's inner-product primitive.

A weighted sum with arbitrary signed integer weights is realised by
replicating each input line onto several axons (via an internal splitter
stage when needed): positive replicas carry axon type 0 (+1 in every
neuron's LUT) and negative replicas type 1 (-1), so a neuron that needs
weight ``w`` on a line simply connects to ``|w|`` replicas of the matching
sign. This is the standard TrueNorth weight-decomposition idiom.
"""

import enum
from typing import List, Sequence, Union

import numpy as np

from repro.errors import CompilationError
from repro.corelets.corelet import BuiltCorelet, Corelet
from repro.corelets.library.splitter import SplitterCorelet
from repro.truenorth.system import NeurosynapticSystem
from repro.truenorth.types import (
    CORE_AXONS,
    CORE_NEURONS,
    NeuronParameters,
    ResetMode,
)

_DEEP_FLOOR = 2**18
_DEEP_RESET = -(2**18)


class NeuronMode(enum.Enum):
    """Output-neuron behaviour of a weighted-sum corelet.

    Attributes:
        RECT_RATE: linear reset with a deep negative floor; the output
            spike count approximates ``max(0, sum) / threshold`` — a
            rectified, rate-coded inner product (the rectification is the
            running prefix-max, so inhibition is never forgotten).
        INDICATOR: no reset, deep negative floor; the neuron fires on every
            tick its running potential is at or above threshold — a
            persistent comparator.
        ONE_SHOT: fires at most once per window (reset to a deep negative
            potential) — used for single-vote decisions.
        PULSE: hard reset to zero after each fire — a per-tick threshold
            gate with no memory of past excess.
    """

    RECT_RATE = "rect_rate"
    INDICATOR = "indicator"
    ONE_SHOT = "one_shot"
    PULSE = "pulse"


def _neuron_params(mode: NeuronMode, threshold: int, leak: int) -> NeuronParameters:
    if mode is NeuronMode.RECT_RATE:
        # Deep negative floor: inhibitory spikes must be remembered, not
        # clipped per tick, or interleaved +/- streams overcount. The
        # output count is then the running prefix-max of the net input,
        # which matches max(0, net) for evenly spread rate codes.
        return NeuronParameters(
            weights=(1, -1, 0, 0),
            threshold=threshold,
            leak=leak,
            reset_mode=ResetMode.LINEAR,
            floor=_DEEP_FLOOR,
        )
    if mode is NeuronMode.INDICATOR:
        return NeuronParameters(
            weights=(1, -1, 0, 0),
            threshold=threshold,
            leak=leak,
            reset_mode=ResetMode.NONE,
            floor=_DEEP_FLOOR,
        )
    if mode is NeuronMode.ONE_SHOT:
        return NeuronParameters(
            weights=(1, -1, 0, 0),
            threshold=threshold,
            leak=leak,
            reset_mode=ResetMode.RESET,
            reset_potential=_DEEP_RESET,
            floor=_DEEP_FLOOR,
        )
    if mode is NeuronMode.PULSE:
        return NeuronParameters(
            weights=(1, -1, 0, 0),
            threshold=threshold,
            leak=leak,
            reset_mode=ResetMode.RESET,
            reset_potential=0,
            floor=0,
        )
    raise ValueError(f"unknown mode {mode!r}")


class WeightedSumCorelet(Corelet):
    """Compute ``n_out`` signed-integer weighted sums of ``n_in`` lines.

    Args:
        weights: integer matrix of shape ``(n_in, n_out)``.
        threshold: firing threshold; scalar or per-output sequence.
        mode: output-neuron behaviour (see :class:`NeuronMode`).
        leak: signed leak applied to every output neuron each tick; a
            leak of ``-threshold`` combined with :attr:`NeuronMode.PULSE`
            gives memoryless per-tick threshold logic.
        name: corelet label.

    Raises:
        CompilationError: if the replica axons required by the weight
            magnitudes exceed one core's 256 axons. Restructure into
            partial sums (see :class:`~repro.corelets.library.accumulator.AccumulatorCorelet`).
    """

    def __init__(
        self,
        weights: np.ndarray,
        threshold: Union[int, Sequence[int]] = 1,
        mode: NeuronMode = NeuronMode.RECT_RATE,
        leak: Union[int, Sequence[int]] = 0,
        name: str = "wsum",
    ) -> None:
        super().__init__(name)
        matrix = np.asarray(weights)
        if matrix.ndim != 2:
            raise ValueError(f"weights must be 2-D (n_in, n_out), got {matrix.shape}")
        if not np.issubdtype(matrix.dtype, np.integer):
            if not np.allclose(matrix, np.round(matrix)):
                raise ValueError("weights must be integers")
            matrix = np.round(matrix).astype(np.int64)
        self.weights = matrix.astype(np.int64)
        self.mode = mode
        n_out = self.weights.shape[1]
        if isinstance(threshold, (int, np.integer)):
            self.thresholds = [int(threshold)] * n_out
        else:
            self.thresholds = [int(t) for t in threshold]
        if len(self.thresholds) != n_out:
            raise ValueError(
                f"need {n_out} thresholds, got {len(self.thresholds)}"
            )
        if any(t < 1 for t in self.thresholds):
            raise ValueError("thresholds must be >= 1")
        if isinstance(leak, (int, np.integer)):
            self.leaks = [int(leak)] * n_out
        else:
            self.leaks = [int(value) for value in leak]
        if len(self.leaks) != n_out:
            raise ValueError(f"need {n_out} leaks, got {len(self.leaks)}")

        # Replicas per line: enough +1 axons for the largest positive
        # weight and enough -1 axons for the largest negative weight.
        self._pos = np.maximum(self.weights, 0).max(axis=1)
        self._neg = np.maximum(-self.weights, 0).max(axis=1)

    @property
    def input_width(self) -> int:
        """Axon lines consumed (rows of the weight matrix)."""
        return self.weights.shape[0]

    @property
    def output_width(self) -> int:
        """Neuron outputs produced (columns of the weight matrix)."""
        return self.weights.shape[1]

    def replica_count(self) -> int:
        """Axons the sum core needs (>=1 per line even if unused)."""
        return int(np.maximum(self._pos + self._neg, 1).sum())

    def build(self, system: NeurosynapticSystem) -> BuiltCorelet:
        """Allocate the (optional) splitter stage and the sum core(s)."""
        n_in, n_out = self.weights.shape
        replicas = self.replica_count()
        if replicas > CORE_AXONS:
            raise CompilationError(
                f"{self.name}: weight magnitudes need {replicas} replica "
                f"axons > {CORE_AXONS}; split into partial sums"
            )
        n_sum_cores = -(-n_out // CORE_NEURONS)  # ceil division

        per_line = np.maximum(self._pos + self._neg, 1)
        needs_splitter = n_sum_cores > 1 or bool((per_line > 1).any())

        core_ids: List[int] = []
        if needs_splitter:
            fanouts = [int(f) * n_sum_cores for f in per_line]
            splitter = SplitterCorelet(n_in, fanouts, name=f"{self.name}.split")
            built_split = splitter.build(system)
            core_ids.extend(built_split.core_ids)
            inputs = list(built_split.inputs)
            # Line-major copies: per line, n_sum_cores consecutive replica sets.
            copy_refs: List[List] = []
            cursor = 0
            for line in range(n_in):
                count = fanouts[line]
                copy_refs.append(list(built_split.outputs[cursor : cursor + count]))
                cursor += count
        else:
            inputs = []
            copy_refs = []

        outputs: List = []
        for sum_index in range(n_sum_cores):
            sum_core = system.new_core(f"{self.name}.sum{sum_index}")
            core_ids.append(sum_core.core_id)
            neuron_slice = range(
                sum_index * CORE_NEURONS, min((sum_index + 1) * CORE_NEURONS, n_out)
            )

            # Lay out replica axons line by line: positives then negatives.
            axon_cursor = 0
            pos_axons: List[List[int]] = []
            neg_axons: List[List[int]] = []
            for line in range(n_in):
                pos = [axon_cursor + k for k in range(int(self._pos[line]))]
                axon_cursor += len(pos)
                neg = [axon_cursor + k for k in range(int(self._neg[line]))]
                axon_cursor += len(neg)
                if not pos and not neg:  # keep an axon so the pin exists
                    pos = [axon_cursor]
                    axon_cursor += 1
                for axon in pos:
                    sum_core.set_axon_type(axon, 0)
                for axon in neg:
                    sum_core.set_axon_type(axon, 1)
                pos_axons.append(pos)
                neg_axons.append(neg)

                if needs_splitter:
                    refs = copy_refs[line]
                    per_core = len(refs) // n_sum_cores
                    chunk = refs[sum_index * per_core : (sum_index + 1) * per_core]
                    for (src_core, src_neuron), axon in zip(chunk, pos + neg):
                        system.add_route(src_core, src_neuron, sum_core.core_id, axon)
                elif sum_index == 0:
                    inputs.append((sum_core.core_id, pos[0] if pos else neg[0]))

            for local, neuron_index in enumerate(neuron_slice):
                local_neuron = neuron_index - sum_index * CORE_NEURONS
                sum_core.set_neuron(
                    local_neuron,
                    _neuron_params(
                        self.mode,
                        self.thresholds[neuron_index],
                        self.leaks[neuron_index],
                    ),
                )
                for line in range(n_in):
                    w = int(self.weights[line, neuron_index])
                    if w > 0:
                        for axon in pos_axons[line][:w]:
                            sum_core.connect(axon, local_neuron)
                    elif w < 0:
                        for axon in neg_axons[line][: -w]:
                            sum_core.connect(axon, local_neuron)
                outputs.append((sum_core.core_id, local_neuron))
                del local

        return self._collect(inputs, outputs, core_ids)


__all__ = ["NeuronMode", "WeightedSumCorelet"]
