"""Pattern-matching corelets: low-precision template correlation.

The paper's NApprox HoG finds gradient vectors "by performing low
precision pattern matching" with the filters (-1 0 1), (1 0 -1) and their
transposes (Table 1). A pattern matcher is a rectified weighted sum whose
weights are the template: the output spike count measures how strongly
the (rate-coded) input matches the template, with anti-matches clipped at
zero by the rectifier.
"""

import numpy as np

from repro.corelets.corelet import BuiltCorelet, Corelet
from repro.corelets.library.weighted_sum import NeuronMode, WeightedSumCorelet
from repro.truenorth.system import NeurosynapticSystem


class PatternMatchCorelet(Corelet):
    """Rectified correlation of the input lines against signed templates.

    Args:
        templates: integer matrix ``(n_in, n_templates)``; column ``t`` is
            template ``t`` over the input lines.
        threshold: spikes of matched evidence per output spike (sets the
            output scale; default 1 = raw rectified correlation counts).
        name: corelet label.
    """

    def __init__(
        self, templates: np.ndarray, threshold: int = 1, name: str = "match"
    ) -> None:
        super().__init__(name)
        matrix = np.asarray(templates, dtype=np.int64)
        if matrix.ndim != 2:
            raise ValueError(f"templates must be 2-D, got {matrix.shape}")
        self._inner = WeightedSumCorelet(
            matrix, threshold=threshold, mode=NeuronMode.RECT_RATE, name=name
        )
        self._shape = matrix.shape

    @property
    def input_width(self) -> int:
        """Axon lines consumed (the pattern width)."""
        return self._shape[0]

    @property
    def output_width(self) -> int:
        """Neuron outputs produced (one per stored pattern)."""
        return self._shape[1]

    def build(self, system: NeurosynapticSystem) -> BuiltCorelet:
        """Delegate to the underlying weighted sum."""
        built = self._inner.build(system)
        return self._collect(list(built.inputs), list(built.outputs), list(built.core_ids))


def gradient_templates() -> np.ndarray:
    """The four NApprox gradient templates over a pixel's 3x3 neighbourhood.

    Input line order is row-major over the 3x3 patch (pixel indices 0..8 as
    in Figure 2 of the paper). Columns are ``Ix``, ``-Ix``, ``Iy``, ``-Iy``:
    ``Ix = Pixel5 - Pixel3`` and ``Iy = Pixel1 - Pixel7``.

    Returns:
        Integer matrix of shape ``(9, 4)``.
    """
    templates = np.zeros((9, 4), dtype=np.int64)
    templates[5, 0] = 1   # Ix   = P5 - P3
    templates[3, 0] = -1
    templates[3, 1] = 1   # -Ix  = P3 - P5
    templates[5, 1] = -1
    templates[1, 2] = 1   # Iy   = P1 - P7
    templates[7, 2] = -1
    templates[7, 3] = 1   # -Iy  = P7 - P1
    templates[1, 3] = -1
    return templates


__all__ = ["PatternMatchCorelet", "gradient_templates"]
