"""Comparator corelets: the "comparison" primitive of Table 1.

A comparator neuron integrates ``count(a) - count(b)`` with no reset, so
once both streams have been presented it fires on every tick while the
running difference is at least one — a persistent ``a > b`` indicator
that downstream gated logic samples during a readout phase.
"""

import numpy as np

from repro.corelets.corelet import BuiltCorelet, Corelet
from repro.corelets.library.weighted_sum import NeuronMode, WeightedSumCorelet
from repro.truenorth.system import NeurosynapticSystem


class ComparatorCorelet(Corelet):
    """``n_pairs`` spike-count comparisons, each ``a_i > b_i``.

    Input pins are interleaved: pin ``2i`` is ``a_i``, pin ``2i + 1`` is
    ``b_i``. Output pin ``i`` fires on each tick where the cumulative
    count of ``a_i`` exceeds that of ``b_i`` by at least ``margin``.

    Args:
        n_pairs: number of independent comparisons.
        margin: required count difference (default 1, i.e. strict ``>``).
        name: corelet label.
    """

    def __init__(self, n_pairs: int, margin: int = 1, name: str = "cmp") -> None:
        super().__init__(name)
        if n_pairs < 1:
            raise ValueError(f"n_pairs must be >= 1, got {n_pairs}")
        if margin < 1:
            raise ValueError(f"margin must be >= 1, got {margin}")
        self.n_pairs = n_pairs
        self.margin = margin
        weights = np.zeros((2 * n_pairs, n_pairs), dtype=np.int64)
        for pair in range(n_pairs):
            weights[2 * pair, pair] = 1
            weights[2 * pair + 1, pair] = -1
        self._inner = WeightedSumCorelet(
            weights, threshold=margin, mode=NeuronMode.INDICATOR, name=name
        )

    @property
    def input_width(self) -> int:
        """Axon lines consumed: an (a, b) pair per comparator."""
        return 2 * self.n_pairs

    @property
    def output_width(self) -> int:
        """Neuron outputs produced (one verdict per pair)."""
        return self.n_pairs

    def build(self, system: NeurosynapticSystem) -> BuiltCorelet:
        """Delegate to the underlying weighted sum."""
        built = self._inner.build(system)
        return self._collect(list(built.inputs), list(built.outputs), list(built.core_ids))


__all__ = ["ComparatorCorelet"]
