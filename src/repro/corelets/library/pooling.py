"""Max-pooling corelets.

Under rate or stochastic coding, a per-tick OR of a group of lines
approximates the maximum of their values: the OR's firing probability is
``1 - prod(1 - p_i)``, which is dominated by (and lower-bounded by) the
largest ``p_i``. This is the standard TrueNorth pooling idiom and the
"max pooling" block of the paper's NApprox flow (Figure 1).
"""

from typing import Sequence

import numpy as np

from repro.corelets.corelet import BuiltCorelet, Corelet
from repro.corelets.library.weighted_sum import NeuronMode, WeightedSumCorelet
from repro.truenorth.system import NeurosynapticSystem


class MaxPoolCorelet(Corelet):
    """Per-tick OR over groups of input lines (rate-domain max).

    Args:
        group_sizes: number of consecutive input lines in each group.
        name: corelet label.
    """

    def __init__(self, group_sizes: Sequence[int], name: str = "maxpool") -> None:
        super().__init__(name)
        sizes = [int(s) for s in group_sizes]
        if not sizes or any(s < 1 for s in sizes):
            raise ValueError(f"group_sizes must be positive, got {group_sizes}")
        n_in = sum(sizes)
        weights = np.zeros((n_in, len(sizes)), dtype=np.int64)
        cursor = 0
        for group, size in enumerate(sizes):
            weights[cursor : cursor + size, group] = 1
            cursor += size
        # PULSE with threshold 1 is already memoryless: any tick with at
        # least one input spike fires and resets to zero, and a tick with
        # none leaves the potential at zero, so no leak is needed.
        self._inner = WeightedSumCorelet(
            weights,
            threshold=1,
            mode=NeuronMode.PULSE,
            name=name,
        )
        self._n_in = n_in
        self._n_out = len(sizes)

    @property
    def input_width(self) -> int:
        """Axon lines consumed (the pre-pool width)."""
        return self._n_in

    @property
    def output_width(self) -> int:
        """Neuron outputs produced (one per pool window)."""
        return self._n_out

    def build(self, system: NeurosynapticSystem) -> BuiltCorelet:
        """Delegate to the underlying weighted sum."""
        built = self._inner.build(system)
        return self._collect(list(built.inputs), list(built.outputs), list(built.core_ids))


__all__ = ["MaxPoolCorelet"]
