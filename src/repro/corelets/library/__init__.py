"""Reusable corelets: the operator vocabulary of the paper's designs.

Every operator in Table 1 of the paper maps onto one of these:

- **pattern matching** (gradient filters) —
  :class:`~repro.corelets.library.pattern_match.PatternMatchCorelet`;
- **inner product** (directional magnitude, histogram voting) —
  :class:`~repro.corelets.library.weighted_sum.WeightedSumCorelet`;
- **comparison** (gradient angle argmax) —
  :class:`~repro.corelets.library.comparator.ComparatorCorelet` combined
  with :class:`~repro.corelets.library.logic.GatedLogicCorelet`;
- fan-out plumbing — :class:`~repro.corelets.library.splitter.SplitterCorelet`;
- count aggregation — :class:`~repro.corelets.library.accumulator.AccumulatorCorelet`;
- **max pooling** — :class:`~repro.corelets.library.pooling.MaxPoolCorelet`.
"""

from repro.corelets.library.splitter import SplitterCorelet
from repro.corelets.library.weighted_sum import NeuronMode, WeightedSumCorelet
from repro.corelets.library.comparator import ComparatorCorelet
from repro.corelets.library.logic import GatedLogicCorelet
from repro.corelets.library.accumulator import AccumulatorCorelet
from repro.corelets.library.pooling import MaxPoolCorelet
from repro.corelets.library.pattern_match import PatternMatchCorelet

__all__ = [
    "AccumulatorCorelet",
    "ComparatorCorelet",
    "GatedLogicCorelet",
    "MaxPoolCorelet",
    "NeuronMode",
    "PatternMatchCorelet",
    "SplitterCorelet",
    "WeightedSumCorelet",
]
