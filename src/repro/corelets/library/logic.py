"""Gated threshold logic built from pulse and one-shot neurons.

These corelets combine persistent indicator lines (from
:class:`~repro.corelets.library.comparator.ComparatorCorelet`) with a gate
line that marks the readout phase, producing clean decisions unaffected by
transient indicator firings earlier in the window.
"""

from typing import List, Sequence

import numpy as np

from repro.corelets.corelet import BuiltCorelet, Corelet
from repro.corelets.library.weighted_sum import NeuronMode, WeightedSumCorelet
from repro.truenorth.system import NeurosynapticSystem


class GatedLogicCorelet(Corelet):
    """``n_out`` gated threshold-logic decisions over shared data lines.

    Each output ``j`` evaluates, on every tick, whether
    ``sum_i weights[i, j] * data_i(t) >= threshold`` *and* the gate line
    spiked this tick, where ``data_i(t)`` are this-tick spikes. The
    evaluation is memoryless: a leak equal to the firing threshold wipes
    any partial charge between ticks, so indicator transients before the
    readout phase cannot accumulate.

    With ``one_shot=True`` a follower stage of deep-reset neurons limits
    each output to a single spike per window (one extra core).

    The gate is input pin 0; data lines follow in order.

    Args:
        weights: integer matrix ``(n_data, n_out)`` over the data lines.
        threshold: required weighted data sum (the gate contributes on top).
        one_shot: when ``True`` each output fires at most once per window.
        name: corelet label.
    """

    def __init__(
        self,
        weights: np.ndarray,
        threshold: int = 1,
        one_shot: bool = True,
        name: str = "logic",
    ) -> None:
        super().__init__(name)
        matrix = np.asarray(weights, dtype=np.int64)
        if matrix.ndim != 2:
            raise ValueError(f"weights must be 2-D, got {matrix.shape}")
        n_data, n_out = matrix.shape
        # Prepend the gate row. The gate weight dominates so nothing can
        # fire while the gate is silent: the largest achievable data sum
        # stays below threshold + gate_weight.
        gate_weight = int(np.maximum(matrix, 0).sum(axis=0).max()) + int(threshold) + 1
        full = np.zeros((n_data + 1, n_out), dtype=np.int64)
        full[0, :] = gate_weight
        full[1:, :] = matrix
        required = int(threshold) + gate_weight
        # Fire iff this tick's weighted sum s >= required, with no memory:
        # with firing threshold 1 and leak -(required - 1), the potential
        # after an update is s - required + 1, which reaches 1 exactly when
        # s >= required; any sub-threshold residue is negative and the
        # PULSE zero floor wipes it.
        self._inner = WeightedSumCorelet(
            full,
            threshold=1,
            mode=NeuronMode.PULSE,
            leak=-(required - 1),
            name=f"{name}.eval",
        )
        self.one_shot = one_shot
        if one_shot:
            self._follower = WeightedSumCorelet(
                np.eye(n_out, dtype=np.int64),
                threshold=1,
                mode=NeuronMode.ONE_SHOT,
                name=f"{name}.once",
            )
        self.n_data = n_data
        self.n_out = n_out

    @property
    def input_width(self) -> int:
        """Axon lines consumed: data lines plus the gate line."""
        return self.n_data + 1

    @property
    def output_width(self) -> int:
        """Neuron outputs produced (one per logic gate)."""
        return self.n_out

    def build(self, system: NeurosynapticSystem) -> BuiltCorelet:
        """Build the evaluator and, for one-shot mode, the follower stage."""
        evaluator = self._inner.build(system)
        core_ids: List[int] = list(evaluator.core_ids)
        outputs = list(evaluator.outputs)
        if self.one_shot:
            follower = self._follower.build(system)
            core_ids.extend(follower.core_ids)
            for pin in range(self.n_out):
                src_core, src_neuron = evaluator.outputs[pin]
                dst_core, dst_axon = follower.inputs[pin]
                system.add_route(src_core, src_neuron, dst_core, dst_axon)
            outputs = list(follower.outputs)
        return self._collect(list(evaluator.inputs), outputs, core_ids)


def and_gate_weights(
    inputs_per_gate: Sequence[Sequence[int]], n_data: int
) -> np.ndarray:
    """Weight matrix for per-output AND over selected data lines.

    Args:
        inputs_per_gate: for each gate, the data-line indices it requires.
        n_data: total number of data lines.

    Returns:
        Integer matrix ``(n_data, len(inputs_per_gate))`` suitable for
        :class:`GatedLogicCorelet` with ``threshold`` equal to the gate
        arity (uniform arities assumed by the shared threshold).
    """
    weights = np.zeros((n_data, len(inputs_per_gate)), dtype=np.int64)
    for gate, lines in enumerate(inputs_per_gate):
        for line in lines:
            weights[line, gate] = 1
    return weights


__all__ = ["GatedLogicCorelet", "and_gate_weights"]
