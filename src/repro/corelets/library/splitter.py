"""Splitter corelets: fan a spike line out to several copies.

TrueNorth neurons target exactly one axon, so fan-out is built from
splitter cores: each input axon connects across the crossbar to several
identity neurons (+1 weight, threshold 1, reset), each of which can then
be routed to a different destination.
"""

from typing import List, Sequence, Union

from repro.errors import CompilationError
from repro.corelets.corelet import BuiltCorelet, Corelet
from repro.truenorth.system import NeurosynapticSystem
from repro.truenorth.types import CORE_AXONS, CORE_NEURONS, NeuronParameters, ResetMode

_IDENTITY = NeuronParameters(weights=(1, 0, 0, 0), threshold=1, reset_mode=ResetMode.RESET)


class SplitterCorelet(Corelet):
    """Copy each input line ``fanout`` times.

    Output pin ordering is copy-major: pin ``c * width + i`` carries copy
    ``c`` of input line ``i``. Per-line fan-outs may differ by passing a
    sequence; then output pins are line-major (all copies of line 0 first).

    Args:
        width: number of input lines.
        fanout: copies per line — an int (uniform) or per-line sequence.
        name: corelet label.
    """

    def __init__(
        self, width: int, fanout: Union[int, Sequence[int]], name: str = "split"
    ) -> None:
        super().__init__(name)
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if isinstance(fanout, int):
            fanouts = [fanout] * width
            self._uniform = True
        else:
            fanouts = list(fanout)
            self._uniform = False
        if len(fanouts) != width:
            raise ValueError(
                f"fanout sequence length {len(fanouts)} != width {width}"
            )
        if any(f < 1 for f in fanouts):
            raise ValueError("every fanout must be >= 1")
        self.width = width
        self.fanouts = fanouts

    @property
    def input_width(self) -> int:
        """Axon lines consumed (the fanned-out width)."""
        return self.width

    @property
    def output_width(self) -> int:
        """Neuron outputs produced (sum of all fanout copies)."""
        return sum(self.fanouts)

    def build(self, system: NeurosynapticSystem) -> BuiltCorelet:
        """Allocate splitter cores, packing lines greedily."""
        # Assign lines to cores: a line's copies must share its core.
        assignments: List[List[int]] = [[]]
        axons_used = 0
        neurons_used = 0
        for line in range(self.width):
            copies = self.fanouts[line]
            if copies > CORE_NEURONS:
                raise CompilationError(
                    f"{self.name}: line {line} needs {copies} copies, more "
                    f"than one core's {CORE_NEURONS} neurons; cascade splitters"
                )
            if axons_used + 1 > CORE_AXONS or neurons_used + copies > CORE_NEURONS:
                assignments.append([])
                axons_used = 0
                neurons_used = 0
            assignments[-1].append(line)
            axons_used += 1
            neurons_used += copies

        inputs = [None] * self.width  # type: List
        copies_by_line: List[List] = [[] for _ in range(self.width)]
        core_ids = []
        for chunk_index, lines in enumerate(assignments):
            core = system.new_core(f"{self.name}.{chunk_index}")
            core_ids.append(core.core_id)
            neuron_cursor = 0
            for axon, line in enumerate(lines):
                core.set_axon_type(axon, 0)
                inputs[line] = (core.core_id, axon)
                for _ in range(self.fanouts[line]):
                    core.set_neuron(neuron_cursor, _IDENTITY)
                    core.connect(axon, neuron_cursor)
                    copies_by_line[line].append((core.core_id, neuron_cursor))
                    neuron_cursor += 1

        if self._uniform:
            fanout = self.fanouts[0]
            outputs = [
                copies_by_line[line][copy]
                for copy in range(fanout)
                for line in range(self.width)
            ]
        else:
            outputs = [ref for line in copies_by_line for ref in line]
        return self._collect(list(inputs), outputs, core_ids)


__all__ = ["SplitterCorelet"]
