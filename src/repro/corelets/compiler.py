"""Compile corelets into simulatable programs and wire corelets together."""

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import CompilationError
from repro.corelets.corelet import BuiltCorelet, Corelet
from repro.truenorth.system import NeurosynapticSystem


@dataclass
class CompiledProgram:
    """A corelet attached to a system with named I/O.

    Attributes:
        system: the system holding the built cores.
        built: the corelet footprint.
        input_port: name of the system input port feeding the corelet.
        output_probe: name of the probe observing the corelet outputs.
    """

    system: NeurosynapticSystem
    built: BuiltCorelet
    input_port: str
    output_probe: str

    @property
    def core_count(self) -> int:
        """Cores allocated by the compiled corelet."""
        return self.built.core_count


def compile_corelet(
    corelet: Corelet,
    system: Optional[NeurosynapticSystem] = None,
    input_port: str = "in",
    output_probe: str = "out",
) -> CompiledProgram:
    """Build ``corelet`` and expose its pins as system I/O.

    Args:
        corelet: the corelet to build.
        system: target system; a fresh one is created when omitted.
        input_port: name for the created input port (one line per input pin).
        output_probe: name for the created output probe (one line per
            output pin).

    Returns:
        A :class:`CompiledProgram` ready for
        :class:`repro.truenorth.simulator.Simulator`.
    """
    target = system if system is not None else NeurosynapticSystem(corelet.name)
    built = corelet.build(target)
    target.add_input_port(input_port, [[ref] for ref in built.inputs])
    target.add_output_probe(output_probe, list(built.outputs))
    return CompiledProgram(target, built, input_port, output_probe)


def connect(
    system: NeurosynapticSystem,
    upstream: BuiltCorelet,
    downstream: BuiltCorelet,
    output_pins: Optional[Sequence[int]] = None,
    input_pins: Optional[Sequence[int]] = None,
    delay: int = 1,
) -> None:
    """Route upstream output pins to downstream input pins one-to-one.

    Args:
        system: the system both corelets were built into.
        upstream: source corelet.
        downstream: destination corelet.
        output_pins: which upstream pins to connect (default: all).
        input_pins: which downstream pins to connect (default: all).
        delay: delivery delay in ticks for every created route.

    Raises:
        CompilationError: when pin selections have different lengths.
    """
    outs = list(output_pins) if output_pins is not None else list(
        range(upstream.output_width)
    )
    ins = list(input_pins) if input_pins is not None else list(
        range(downstream.input_width)
    )
    if len(outs) != len(ins):
        raise CompilationError(
            f"cannot connect {len(outs)} outputs of {upstream.name} to "
            f"{len(ins)} inputs of {downstream.name}"
        )
    for out_pin, in_pin in zip(outs, ins):
        src_core, src_neuron = upstream.outputs[out_pin]
        dst_core, dst_axon = downstream.inputs[in_pin]
        system.add_route(src_core, src_neuron, dst_core, dst_axon, delay=delay)


__all__ = ["CompiledProgram", "compile_corelet", "connect"]
