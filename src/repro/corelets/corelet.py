"""Corelet and BuiltCorelet: the builder abstraction."""

import abc
from dataclasses import dataclass
from typing import List, Tuple

from repro.truenorth.system import NeurosynapticSystem

AxonRef = Tuple[int, int]
"""``(core_id, axon)`` — a concrete input line."""

NeuronRef = Tuple[int, int]
"""``(core_id, neuron)`` — a concrete output line."""


@dataclass(frozen=True)
class BuiltCorelet:
    """The concrete footprint of a corelet inside a system.

    Attributes:
        name: the corelet's label.
        inputs: input pins, in pin order, as ``(core_id, axon)``.
        outputs: output pins, in pin order, as ``(core_id, neuron)``.
        core_ids: ids of every core the corelet allocated (including
            subcorelets), used for resource accounting.
    """

    name: str
    inputs: Tuple[AxonRef, ...]
    outputs: Tuple[NeuronRef, ...]
    core_ids: Tuple[int, ...]

    @property
    def input_width(self) -> int:
        """Number of input pins."""
        return len(self.inputs)

    @property
    def output_width(self) -> int:
        """Number of output pins."""
        return len(self.outputs)

    @property
    def core_count(self) -> int:
        """Number of cores consumed (the paper's resource metric)."""
        return len(self.core_ids)


class Corelet(abc.ABC):
    """A reusable builder of neurosynaptic-core functionality.

    Subclasses declare their pin widths and implement :meth:`build`, which
    allocates cores inside the given system and wires internal routes.
    Corelets are stateless descriptions: one corelet instance can be built
    into several systems (or several times into one system).

    Args:
        name: label used for allocated cores and error messages.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    @property
    @abc.abstractmethod
    def input_width(self) -> int:
        """Number of input pins the built corelet exposes."""

    @property
    @abc.abstractmethod
    def output_width(self) -> int:
        """Number of output pins the built corelet exposes."""

    @abc.abstractmethod
    def build(self, system: NeurosynapticSystem) -> BuiltCorelet:
        """Allocate cores and internal routes; return the footprint."""

    def _collect(
        self,
        inputs: List[AxonRef],
        outputs: List[NeuronRef],
        core_ids: List[int],
    ) -> BuiltCorelet:
        """Assemble and sanity-check a :class:`BuiltCorelet`."""
        built = BuiltCorelet(
            name=self.name,
            inputs=tuple(inputs),
            outputs=tuple(outputs),
            core_ids=tuple(core_ids),
        )
        if built.input_width != self.input_width:
            raise AssertionError(
                f"{self.name}: declared input_width {self.input_width} but "
                f"built {built.input_width}"
            )
        if built.output_width != self.output_width:
            raise AssertionError(
                f"{self.name}: declared output_width {self.output_width} but "
                f"built {built.output_width}"
            )
        return built

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"in={self.input_width}, out={self.output_width})"
        )


__all__ = ["AxonRef", "BuiltCorelet", "Corelet", "NeuronRef"]
