"""Corelet layer: composable builders of neurosynaptic-core programs.

Corelets (Amir et al. 2013) abstract TrueNorth configuration: each corelet
encapsulates the cores, neuron/axon types and connectivity of one piece of
functionality and exposes named input/output pins. Corelets compose
hierarchically; a main corelet consists of subcorelets that perform small
portions of the overall operation (paper, Section 2.2).

In this package a :class:`~repro.corelets.corelet.Corelet` is a *builder*:
:meth:`~repro.corelets.corelet.Corelet.build` allocates cores inside a
:class:`~repro.truenorth.system.NeurosynapticSystem` and returns a
:class:`~repro.corelets.corelet.BuiltCorelet` that names the concrete
input axons and output neurons. :func:`~repro.corelets.compiler.compile_corelet`
wraps a corelet with system input ports and output probes so it can be
simulated directly.

The :mod:`repro.corelets.library` package provides the reusable operators
the paper's designs are assembled from: splitters (fan-out), rectified
weighted sums (pattern matching / inner products), comparators and gated
logic (the "comparison" primitive of Table 1), accumulators, and max
pooling.
"""

from repro.corelets.corelet import BuiltCorelet, Corelet
from repro.corelets.compiler import CompiledProgram, compile_corelet, connect

__all__ = [
    "BuiltCorelet",
    "CompiledProgram",
    "Corelet",
    "compile_corelet",
    "connect",
]
