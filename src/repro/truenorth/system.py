"""A system of neurosynaptic cores with named inputs and outputs."""

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError, RoutingError
from repro.truenorth.core import NeurosynapticCore
from repro.truenorth.router import Route, Router
from repro.truenorth.types import CORE_AXONS, CORE_NEURONS


@dataclass(frozen=True)
class InputPort:
    """A named external input: line ``i`` drives ``targets[i]`` axons.

    External inputs originate off-chip and may fan out to several axons
    without a splitter core (the merge/split constraint applies only to
    on-chip neuron outputs).

    Attributes:
        name: port name used when scheduling input spikes.
        targets: per-line list of ``(core_id, axon)`` destinations.
    """

    name: str
    targets: Tuple[Tuple[Tuple[int, int], ...], ...]

    @property
    def width(self) -> int:
        """Number of input lines on this port."""
        return len(self.targets)


@dataclass(frozen=True)
class OutputProbe:
    """A named readout: line ``i`` observes neuron ``sources[i]``.

    Attributes:
        name: probe name under which spikes are recorded.
        sources: per-line ``(core_id, neuron)`` observed outputs.
    """

    name: str
    sources: Tuple[Tuple[int, int], ...]

    @property
    def width(self) -> int:
        """Number of observed neurons."""
        return len(self.sources)


class NeurosynapticSystem:
    """Cores + routes + I/O ports: everything a simulation needs.

    The typical flow is: create a system, allocate cores with
    :meth:`new_core`, configure them, wire neuron outputs with
    :meth:`add_route`, declare :meth:`add_input_port` /
    :meth:`add_output_probe`, then hand the system to
    :class:`repro.truenorth.simulator.Simulator`.
    """

    def __init__(self, name: str = "system") -> None:
        self.name = name
        self._cores: Dict[int, NeurosynapticCore] = {}
        self.router = Router()
        self._input_ports: Dict[str, InputPort] = {}
        self._output_probes: Dict[str, OutputProbe] = {}
        self._next_core_id = 0
        self._chip_assignment: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Cores
    # ------------------------------------------------------------------
    def new_core(self, name: str = "") -> NeurosynapticCore:
        """Allocate, register, and return a fresh core."""
        core = NeurosynapticCore(self._next_core_id, name=name)
        self._cores[core.core_id] = core
        self._next_core_id += 1
        return core

    def core(self, core_id: int) -> NeurosynapticCore:
        """Look up a core by id."""
        try:
            return self._cores[core_id]
        except KeyError:
            raise ConfigurationError(f"no core with id {core_id}") from None

    @property
    def cores(self) -> Tuple[NeurosynapticCore, ...]:
        """All cores in allocation order."""
        return tuple(self._cores[cid] for cid in sorted(self._cores))

    @property
    def core_count(self) -> int:
        """Number of allocated cores (the paper's resource metric)."""
        return len(self._cores)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_route(
        self,
        src_core: int,
        src_neuron: int,
        dst_core: int,
        dst_axon: int,
        delay: int = 1,
    ) -> None:
        """Wire a neuron output to an axon input."""
        for cid, kind in ((src_core, "source"), (dst_core, "destination")):
            if cid not in self._cores:
                raise RoutingError(f"{kind} core {cid} does not exist")
        self.router.add_route(Route(src_core, src_neuron, dst_core, dst_axon, delay))

    def add_input_port(
        self, name: str, targets: Sequence[Sequence[Tuple[int, int]]]
    ) -> InputPort:
        """Declare an external input port.

        Args:
            name: unique port name.
            targets: ``targets[i]`` is the list of ``(core_id, axon)`` pairs
                that line ``i`` drives.

        Returns:
            The registered :class:`InputPort`.
        """
        if name in self._input_ports:
            raise ConfigurationError(f"input port {name!r} already exists")
        frozen: List[Tuple[Tuple[int, int], ...]] = []
        for line in targets:
            for core_id, axon in line:
                if core_id not in self._cores:
                    raise RoutingError(f"input target core {core_id} does not exist")
                if not 0 <= axon < CORE_AXONS:
                    raise RoutingError(f"input target axon out of range: {axon}")
            frozen.append(tuple((int(c), int(a)) for c, a in line))
        port = InputPort(name, tuple(frozen))
        self._input_ports[name] = port
        return port

    def add_output_probe(
        self, name: str, sources: Sequence[Tuple[int, int]]
    ) -> OutputProbe:
        """Declare a named readout over neuron outputs."""
        if name in self._output_probes:
            raise ConfigurationError(f"output probe {name!r} already exists")
        for core_id, neuron in sources:
            if core_id not in self._cores:
                raise RoutingError(f"probe source core {core_id} does not exist")
            if not 0 <= neuron < CORE_NEURONS:
                raise RoutingError(f"probe source neuron out of range: {neuron}")
        probe = OutputProbe(name, tuple((int(c), int(n)) for c, n in sources))
        self._output_probes[name] = probe
        return probe

    @property
    def input_ports(self) -> Dict[str, InputPort]:
        """Registered input ports by name."""
        return dict(self._input_ports)

    @property
    def output_probes(self) -> Dict[str, OutputProbe]:
        """Registered output probes by name."""
        return dict(self._output_probes)

    # ------------------------------------------------------------------
    # Chip placement
    # ------------------------------------------------------------------
    def apply_placement(self, placement) -> None:
        """Pin cores to chips for multi-chip hop accounting.

        Engines snapshot the assignment when they compile, so placement
        must be applied before constructing a simulator or engine.

        Args:
            placement: a ``PlacementReport`` (its ``assignment`` is used)
                or a plain ``core_id -> chip index`` mapping. Cores left
                unassigned default to chip 0.
        """
        assignment = getattr(placement, "assignment", placement)
        checked: Dict[int, int] = {}
        for core_id, chip in assignment.items():
            if core_id not in self._cores:
                raise ConfigurationError(
                    f"placement names unknown core {core_id}"
                )
            if int(chip) < 0:
                raise ConfigurationError(
                    f"chip index must be >= 0, got {chip} for core {core_id}"
                )
            checked[int(core_id)] = int(chip)
        self._chip_assignment = checked

    def chip_of(self, core_id: int) -> int:
        """Chip hosting ``core_id`` (0 when no placement was applied)."""
        return self._chip_assignment.get(core_id, 0)

    @property
    def chip_assignment(self) -> Dict[int, int]:
        """A copy of the applied ``core_id -> chip`` mapping."""
        return dict(self._chip_assignment)

    @property
    def chip_count(self) -> int:
        """Distinct chips occupied by the system's cores."""
        if not self._cores:
            return 0
        return len({self.chip_of(cid) for cid in self._cores})

    def reset_state(self) -> None:
        """Zero every core's potentials and drop in-flight spikes."""
        for core in self._cores.values():
            core.reset_state()
        self.router.clear()

    def __repr__(self) -> str:
        return (
            f"NeurosynapticSystem(name={self.name!r}, cores={self.core_count}, "
            f"routes={len(self.router.routes)})"
        )


__all__ = ["InputPort", "NeurosynapticSystem", "OutputProbe"]
