"""Vectorized batch simulation of a :class:`NeurosynapticSystem`.

The reference :class:`~repro.truenorth.simulator.Simulator` advances one
core at a time in Python, which is tick-accurate but pays interpreter
overhead per core per tick. This module compiles a fully configured
system into flat numpy arrays once — every core's effective synaptic
weight matrix (crossbar x per-neuron weight LUT), the per-neuron
membrane parameters, the route list grouped by delivery delay, and the
input-port / output-probe index tables — and then evaluates ``B``
independent input windows simultaneously:

- synaptic integration is one stacked matmul per tick,
  ``(n_cores, B, 256) @ (n_cores, 256, 256)``;
- leak, threshold, fire, reset and saturation are single vectorized
  updates over the ``(n_cores, B, 256)`` membrane-potential array;
- inter-core spike routing is an index-based scatter over the batch
  dimension into a tick-keyed mailbox, exactly mirroring the reference
  router's delay semantics.

Arithmetic runs in float32 when every reachable value fits the 24-bit
float32 mantissa (checked at compile time from the weight, threshold,
leak, reset and stochastic-span magnitudes) and float64 otherwise, so
results are bit-identical to the reference engine's int64 path — the
differential conformance suite (``tests/test_engine_conformance.py``)
asserts this raster for raster.

Randomness: lane ``i`` of a batch run consumes the stream of
``spawn_generators(rng, B)[i]`` (see :mod:`repro.utils.rng`), drawing in
the reference order (tick-major, then ascending core index, stochastic
cores only), so each lane is bit-identical to a reference run seeded
with the matching spawned generator.

Memory: the stacked weight tensor costs ``256 * 256 * itemsize`` bytes
per core (256 KiB in float32), and the mailbox ``n_cores * B * 256``
bytes per in-flight delay slot. Systems of a few hundred cores batch
comfortably; chip-scale systems (thousands of cores) should be sharded
per corelet before batching.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CompilationError, ConfigurationError
from repro.obs import get_registry, span
from repro.obs import hwcounters
from repro.truenorth.simulator import SimulationResult
from repro.truenorth.system import NeurosynapticSystem
from repro.truenorth.types import CORE_AXONS, CORE_NEURONS, POTENTIAL_MAX, POTENTIAL_MIN


@dataclass
class BatchSimulationResult:
    """Outcome of a batched simulation run.

    Attributes:
        ticks: number of ticks simulated.
        batch: number of independent lanes (input windows).
        probe_spikes: per-probe boolean spike rasters of shape
            ``(batch, ticks, probe.width)``.
        total_spikes: per-lane total neuron firings, shape ``(batch,)``.
        activity: the run's hardware-counter ledger
            (:class:`repro.obs.hwcounters.RunActivity`), or ``None``
            when telemetry was disabled for the run.
    """

    ticks: int
    batch: int
    probe_spikes: Dict[str, np.ndarray] = field(default_factory=dict)
    total_spikes: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    activity: Optional[hwcounters.RunActivity] = None

    def lane(self, index: int) -> SimulationResult:
        """The single-lane :class:`SimulationResult` of lane ``index``."""
        if not 0 <= index < self.batch:
            raise IndexError(f"lane must be in [0, {self.batch}), got {index}")
        return SimulationResult(
            ticks=self.ticks,
            probe_spikes={
                name: raster[index].copy() for name, raster in self.probe_spikes.items()
            },
            total_spikes=int(self.total_spikes[index]),
            activity=self.activity.lane(index) if self.activity is not None else None,
        )

    def lanes(self) -> List[SimulationResult]:
        """All lanes as single-lane results, lane order."""
        return [self.lane(index) for index in range(self.batch)]

    def spike_counts(self, probe: str) -> np.ndarray:
        """Per-lane, per-line firing counts, shape ``(batch, width)``."""
        return self.probe_spikes[probe].sum(axis=1)

    def spike_rates(self, probe: str) -> np.ndarray:
        """Per-lane firing rates (counts / ticks), shape ``(batch, width)``."""
        if self.ticks == 0:
            raise ValueError("no ticks were simulated")
        return self.spike_counts(probe) / float(self.ticks)


def normalize_batch_inputs(
    system: NeurosynapticSystem,
    ticks: int,
    inputs: Optional[Mapping[str, np.ndarray]],
    batch: Optional[int],
) -> Tuple[int, Dict[str, np.ndarray]]:
    """Validate input rasters and broadcast them to the batch dimension.

    Args:
        system: the simulated system (for port names and widths).
        ticks: ticks the run will simulate.
        inputs: mapping from port name to a raster of shape
            ``(ticks, width)`` (shared by every lane) or
            ``(batch, ticks, width)`` (per-lane inputs).
        batch: explicit lane count; inferred from the first 3-D raster
            when omitted.

    Returns:
        ``(batch, rasters)`` with every raster of shape
        ``(batch, ticks, width)`` (shared rasters are broadcast views).

    Raises:
        ValueError: on unknown ports, misshapen rasters, inconsistent
            batch sizes, or an unspecified batch with no 3-D raster.
    """
    ports = system.input_ports
    arrays: Dict[str, np.ndarray] = {}
    inferred = batch
    for name, raster in (inputs or {}).items():
        if name not in ports:
            raise ValueError(f"unknown input port {name!r}")
        arr = np.asarray(raster).astype(bool)
        width = ports[name].width
        if arr.ndim == 2:
            if arr.shape != (ticks, width):
                raise ValueError(
                    f"input raster for {name!r} must be ({ticks}, {width}), "
                    f"got {arr.shape}"
                )
        elif arr.ndim == 3:
            if arr.shape[1:] != (ticks, width):
                raise ValueError(
                    f"input raster for {name!r} must be (batch, {ticks}, "
                    f"{width}), got {arr.shape}"
                )
            if inferred is None:
                inferred = arr.shape[0]
            elif arr.shape[0] != inferred:
                raise ValueError(
                    f"input raster for {name!r} has batch {arr.shape[0]}, "
                    f"expected {inferred}"
                )
        else:
            raise ValueError(
                f"input raster for {name!r} must be 2-D or 3-D, got {arr.ndim}-D"
            )
        arrays[name] = arr
    if inferred is None:
        raise ValueError(
            "batch size could not be inferred; pass batch= or a 3-D raster"
        )
    if inferred < 1:
        raise ValueError(f"batch must be >= 1, got {inferred}")
    rasters = {
        name: (
            np.broadcast_to(arr, (inferred,) + arr.shape) if arr.ndim == 2 else arr
        )
        for name, arr in arrays.items()
    }
    return inferred, rasters


class _RouteGroup:
    """Routes sharing one delivery delay, as flat index arrays.

    ``src_core``/``dst_core`` are compiled core *indices*;
    ``src_core_id`` keeps the global core id, which fault hashing keys
    on so both engines agree on every per-delivery decision.
    """

    __slots__ = (
        "delay",
        "src_core",
        "src_neuron",
        "dst_core",
        "dst_axon",
        "src_core_id",
        "crossing",
    )

    def __init__(
        self, delay: int, rows: List[Tuple[int, int, int, int, int, int]]
    ) -> None:
        self.delay = delay
        arr = np.asarray(rows, dtype=np.int64)
        self.src_core = arr[:, 0]
        self.src_neuron = arr[:, 1]
        self.dst_core = arr[:, 2]
        self.dst_axon = arr[:, 3]
        self.src_core_id = arr[:, 4]
        # Per-route chip-boundary flag under the placement captured at
        # compile time; feeds the cross-chip hop counters.
        self.crossing = arr[:, 5].astype(bool)


class _PortTable:
    """One input port flattened to (line, target-core, target-axon) arrays."""

    __slots__ = ("width", "line", "core", "axon")

    def __init__(self, width: int, rows: List[Tuple[int, int, int]]) -> None:
        self.width = width
        arr = (
            np.asarray(rows, dtype=np.int64)
            if rows
            else np.zeros((0, 3), dtype=np.int64)
        )
        self.line = arr[:, 0]
        self.core = arr[:, 1]
        self.axon = arr[:, 2]


class BatchEngine:
    """Evaluates B input windows simultaneously through one system.

    The system's configuration is compiled once at construction;
    configuration changes made to the system afterwards are not picked
    up (create a new engine — compilation costs milliseconds).

    State semantics match the reference engine: ``reset=True`` starts
    from zero potentials and an empty mailbox; ``reset=False`` continues
    the engine's own persistent state (the reference engine keeps this
    state inside the cores instead, so the two engines' states are not
    shared). The mailbox is keyed by within-run tick, reproducing the
    reference router's carry-over behaviour across ``reset=False`` runs.

    Args:
        system: the fully configured system to compile.
        faults: optional :class:`repro.faults.FaultPlan` (or compiled
            :class:`repro.faults.compile.CompiledFaults`) to inject.
            Fault decisions are counter-based hashes of the fault site,
            so a faulted batch run stays bit-identical to the faulted
            reference engine lane by lane.
    """

    def __init__(self, system: NeurosynapticSystem, faults=None) -> None:
        self.system = system
        if faults is not None:
            from repro.faults.compile import compile_faults

            faults = compile_faults(faults, system)
        self._faults = faults
        cores = system.cores
        self.n_cores = len(cores)
        index_of = {core.core_id: i for i, core in enumerate(cores)}

        shape = (self.n_cores, CORE_AXONS, CORE_NEURONS)
        weights = np.zeros(shape, dtype=np.int64)
        params = {
            key: np.zeros((self.n_cores, CORE_NEURONS), dtype=np.int64)
            for key in (
                "threshold",
                "leak",
                "reset_code",
                "reset_potential",
                "floor",
                "stochastic_bits",
            )
        }
        for i, core in enumerate(cores):
            weights[i] = (
                faults.effective_weights(core)
                if faults is not None
                else core.effective_weights()
            )
            for key, value in core.neuron_arrays().items():
                params[key][i] = value
        # Hardware-counter support: synaptic events per delivered axon
        # activation = nonzero entries of that axon's weight row.
        self._row_nnz = (weights != 0).sum(axis=2).astype(np.int64)
        self._core_ids = np.array(
            [core.core_id for core in cores], dtype=np.int64
        )

        # Pick the float dtype in which every reachable value is exact:
        # float32 carries 24 mantissa bits, float64 carries 53. Synaptic
        # sums are bounded by 256 * max|w|; potentials are clipped to the
        # 20-bit register; thresholds gain at most the stochastic span
        # (plus any injected threshold drift).
        spans = np.where(
            params["stochastic_bits"] > 0, 1 << params["stochastic_bits"], 0
        )
        drift_max = (
            int(np.abs(faults.threshold_offset).max())
            if faults is not None and self.n_cores
            else 0
        )
        bound = max(
            int(np.abs(weights).sum(axis=1).max()) if weights.size else 0,
            int(np.abs(params["threshold"]).max() + spans.max() + drift_max)
            if self.n_cores
            else 0,
            int(np.abs(params["leak"]).max()) if self.n_cores else 0,
            int(np.abs(params["reset_potential"]).max()) if self.n_cores else 0,
            int(params["floor"].max()) if self.n_cores else 0,
            -POTENTIAL_MIN,
        )
        if bound + CORE_AXONS >= 2**52:
            raise CompilationError(
                f"parameter magnitudes near {bound} exceed exact float64 "
                "range; the batch engine cannot guarantee bit-identical "
                "results — use the reference engine"
            )
        self._dtype = np.float32 if bound + CORE_AXONS < 2**23 else np.float64

        self._weights = weights.astype(self._dtype)
        # Float copy of the nnz rows for the tracking matvec: per-tick
        # event counts are <= 256 * 256 < 2^24, exact in either dtype.
        self._row_nnz_f = self._row_nnz[:, :, None].astype(self._dtype)
        self._threshold = params["threshold"].astype(self._dtype)[:, None, :]
        # The fire *comparison* threshold; threshold drift faults shift it
        # while linear resets keep subtracting the configured threshold.
        self._threshold_cmp = self._threshold
        self._force_fire = self._force_silent = None
        if faults is not None:
            if drift_max:
                self._threshold_cmp = (
                    params["threshold"] + faults.threshold_offset
                ).astype(self._dtype)[:, None, :]
            if faults.has_output_faults:
                self._force_fire = faults.force_fire[:, None, :]
                self._force_silent = faults.force_silent[:, None, :]
        self._leak = params["leak"].astype(self._dtype)[:, None, :]
        self._reset_potential = params["reset_potential"].astype(self._dtype)[:, None, :]
        self._neg_floor = (-params["floor"]).astype(self._dtype)[:, None, :]
        self._is_hard = (params["reset_code"] == 0)[:, None, :]
        self._is_linear = (params["reset_code"] == 1)[:, None, :]

        # Stochastic cores: (core index, neuron mask, spans) in core order,
        # matching the reference engine's per-core draw granularity.
        self._stochastic: List[Tuple[int, np.ndarray, np.ndarray]] = []
        for i in range(self.n_cores):
            mask = params["stochastic_bits"][i] > 0
            if mask.any():
                spans_i = (1 << params["stochastic_bits"][i][mask]).astype(np.int64)
                self._stochastic.append((i, mask, spans_i))

        # Routes grouped by delay; deposits are idempotent so order within
        # a group is irrelevant.
        by_delay: Dict[int, List[Tuple[int, int, int, int, int, int]]] = {}
        chip_of = system.chip_of
        for route in system.router.routes:
            try:
                src = index_of[route.src_core]
                dst = index_of[route.dst_core]
            except KeyError as exc:
                raise ConfigurationError(
                    f"route references unknown core {exc.args[0]}"
                ) from None
            by_delay.setdefault(route.delay, []).append(
                (
                    src,
                    route.src_neuron,
                    dst,
                    route.dst_axon,
                    route.src_core,
                    int(chip_of(route.src_core) != chip_of(route.dst_core)),
                )
            )
        self._route_groups = [
            _RouteGroup(delay, rows) for delay, rows in sorted(by_delay.items())
        ]

        self._ports: Dict[str, _PortTable] = {}
        for name, port in system.input_ports.items():
            rows = [
                (line, index_of[core_id], axon)
                for line, targets in enumerate(port.targets)
                for core_id, axon in targets
            ]
            self._ports[name] = _PortTable(port.width, rows)

        self._probes: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        for name, probe in system.output_probes.items():
            sources = np.asarray(probe.sources, dtype=np.int64).reshape(-1, 2)
            cores_arr = np.array(
                [index_of[int(c)] for c in sources[:, 0]], dtype=np.int64
            )
            self._probes[name] = (cores_arr, sources[:, 1])

        # Persistent state for reset=False continuation runs.
        self._potentials: Optional[np.ndarray] = None
        self._mailbox: Dict[int, np.ndarray] = {}
        # (route, lane) spike deliveries of the most recent run, read by
        # the observability counters after the tick loop finishes.
        self._last_delivered = 0
        self._last_dropped = 0
        self._last_duplicated = 0

    # ------------------------------------------------------------------
    def run(
        self,
        ticks: int,
        rasters: Mapping[str, np.ndarray],
        lane_rngs: Sequence[np.random.Generator],
        reset: bool = True,
    ) -> BatchSimulationResult:
        """Simulate ``ticks`` ticks for ``len(lane_rngs)`` lanes at once.

        Args:
            ticks: number of ticks to advance.
            rasters: per-port boolean rasters of shape
                ``(batch, ticks, width)`` (see
                :func:`normalize_batch_inputs`).
            lane_rngs: one generator per lane for stochastic thresholds.
            reset: start from zero state (default) or continue the
                engine's persistent state (batch size must match).

        Returns:
            A :class:`BatchSimulationResult`.
        """
        if ticks < 0:
            raise ValueError(f"ticks must be >= 0, got {ticks}")
        batch = len(lane_rngs)
        if batch < 1:
            raise ValueError("need at least one lane")
        with span("engine.run", ticks=ticks, batch=batch):
            result = self._run(ticks, rasters, lane_rngs, reset, batch)
        obs = get_registry()
        obs.counter("engine_runs_total", help="batch-engine runs").inc()
        obs.counter("engine_lanes_total", help="lanes evaluated").inc(batch)
        obs.counter(
            "sim_ticks_total", help="lane-ticks simulated (all engines)"
        ).inc(ticks * batch)
        obs.counter(
            "sim_spikes_total", help="neuron firings simulated (all engines)"
        ).inc(int(result.total_spikes.sum()))
        obs.counter(
            "engine_spikes_delivered_total",
            help="inter-core spike deliveries scattered through the mailbox",
        ).inc(self._last_delivered)
        if self._last_dropped or self._last_duplicated:
            obs.counter(
                "faults_spikes_dropped_total",
                help="routed spike deliveries lost to injected faults",
            ).inc(self._last_dropped)
            obs.counter(
                "faults_spikes_duplicated_total",
                help="routed spike deliveries echoed by injected faults",
            ).inc(self._last_duplicated)
        if result.activity is not None:
            hwcounters.record_run(result.activity)
        return result

    def _run(
        self,
        ticks: int,
        rasters: Mapping[str, np.ndarray],
        lane_rngs: Sequence[np.random.Generator],
        reset: bool,
        batch: int,
    ) -> BatchSimulationResult:
        """The compiled tick loop behind :meth:`run`."""
        state_shape = (self.n_cores, batch, CORE_NEURONS)
        if reset or self._potentials is None:
            potentials = np.zeros(state_shape, dtype=self._dtype)
            mailbox: Dict[int, np.ndarray] = {}
        else:
            if self._potentials.shape != state_shape:
                raise ValueError(
                    f"reset=False requires the previous batch size "
                    f"{self._potentials.shape[1]}, got {batch}"
                )
            potentials = self._potentials
            mailbox = self._mailbox

        result = BatchSimulationResult(
            ticks=ticks,
            batch=batch,
            probe_spikes={
                name: np.zeros((batch, ticks, cores.size), dtype=bool)
                for name, (cores, _) in self._probes.items()
            },
            total_spikes=np.zeros(batch, dtype=np.int64),
        )

        delivered = dropped = duplicated = 0
        dynamic_faults = self._faults is not None and self._faults.has_dynamic
        lane_keys = self._faults.lane_keys(batch) if dynamic_faults else None
        box_shape = (self.n_cores, batch, CORE_AXONS)
        track = hwcounters.enabled()
        if track:
            hop_lanes = np.zeros(batch, dtype=np.int64)
            cross_lanes = np.zeros(batch, dtype=np.int64)
            drop_lanes = np.zeros(batch, dtype=np.int64)
            dup_lanes = np.zeros(batch, dtype=np.int64)
            active_lanes = np.zeros(batch, dtype=np.int64)
            core_spikes = np.zeros((batch, self.n_cores), dtype=np.int64)
            core_events = np.zeros((batch, self.n_cores), dtype=np.int64)
            spikes_per_tick = np.zeros((batch, ticks), dtype=np.int64)
        for tick in range(ticks):
            current = mailbox.pop(tick, None)
            if current is None:
                current = np.zeros(box_shape, dtype=bool)

            # 1. External inputs scheduled for this tick.
            for name, raster in rasters.items():
                table = self._ports[name]
                if table.line.size == 0:
                    continue
                active = raster[:, tick, :]
                if not active.any():
                    continue
                hits = active[:, table.line]
                lane_idx, pair_idx = np.nonzero(hits)
                current[table.core[pair_idx], lane_idx, table.axon[pair_idx]] = True

            # 2. Integrate, leak, threshold, fire, reset, saturate.
            if current.any():
                current_f = current.astype(self._dtype)
                if track:
                    # Batched matvec against the float nnz rows (exact,
                    # see __init__) reusing the integration operand —
                    # cheap enough to stay inside the 5 % obs budget.
                    core_events += (
                        (current_f @ self._row_nnz_f)[..., 0].T.astype(np.int64)
                    )
                potentials += current_f @ self._weights
            potentials += self._leak

            crossed = potentials >= self._threshold_cmp
            for core_index, mask, spans in self._stochastic:
                offsets = np.empty((batch, spans.size), dtype=np.int64)
                for lane, generator in enumerate(lane_rngs):
                    offsets[lane] = generator.integers(0, spans)
                crossed[core_index][:, mask] = potentials[core_index][:, mask] >= (
                    self._threshold_cmp[core_index, 0, mask][None, :]
                    + offsets.astype(self._dtype)
                )

            np.copyto(potentials, self._reset_potential, where=crossed & self._is_hard)
            np.subtract(
                potentials,
                self._threshold,
                out=potentials,
                where=crossed & self._is_linear,
            )
            np.maximum(potentials, self._neg_floor, out=potentials)
            np.clip(potentials, POTENTIAL_MIN, POTENTIAL_MAX, out=potentials)

            # Stuck-at faults clamp the *output* spike only; membrane
            # resets above followed the true comparator result.
            fired = crossed
            if self._force_fire is not None:
                fired = (crossed | self._force_fire) & ~self._force_silent

            if track:
                fired_cb = fired.sum(axis=2)  # (n_cores, batch)
                core_spikes += fired_cb.T
                spikes_per_tick[:, tick] = fired_cb.sum(axis=0)
                active_lanes += (fired_cb > 0).sum(axis=0)
                result.total_spikes += spikes_per_tick[:, tick]
            else:
                result.total_spikes += fired.sum(axis=(0, 2))

            # 3. Route this tick's output spikes forward.
            for group in self._route_groups:
                emitted = fired[group.src_core, :, group.src_neuron]
                if not emitted.any():
                    continue
                route_idx, lane_idx = np.nonzero(emitted)
                if dynamic_faults:
                    keep, echo = self._faults.spike_outcomes(
                        lane_keys[lane_idx],
                        tick,
                        group.src_core_id[route_idx],
                        group.src_neuron[route_idx],
                    )
                    dropped += int((~keep).sum())
                    duplicated += int(echo.sum())
                    if track:
                        drop_lanes += np.bincount(
                            lane_idx[~keep], minlength=batch
                        )
                        dup_lanes += np.bincount(
                            lane_idx[echo], minlength=batch
                        )
                    for selector, delay in ((keep, group.delay), (echo, group.delay + 1)):
                        sel = np.flatnonzero(selector)
                        if sel.size == 0:
                            continue
                        delivered += sel.size
                        if track:
                            hop_lanes += np.bincount(
                                lane_idx[sel], minlength=batch
                            )
                            cross_sel = sel[group.crossing[route_idx[sel]]]
                            if cross_sel.size:
                                cross_lanes += np.bincount(
                                    lane_idx[cross_sel], minlength=batch
                                )
                        slot = mailbox.get(tick + delay)
                        if slot is None:
                            slot = np.zeros(box_shape, dtype=bool)
                            mailbox[tick + delay] = slot
                        slot[
                            group.dst_core[route_idx[sel]],
                            lane_idx[sel],
                            group.dst_axon[route_idx[sel]],
                        ] = True
                    continue
                delivered += route_idx.size
                if track:
                    hop_lanes += np.bincount(lane_idx, minlength=batch)
                    cross = group.crossing[route_idx]
                    if cross.any():
                        cross_lanes += np.bincount(
                            lane_idx[cross], minlength=batch
                        )
                slot = mailbox.get(tick + group.delay)
                if slot is None:
                    slot = np.zeros(box_shape, dtype=bool)
                    mailbox[tick + group.delay] = slot
                slot[group.dst_core[route_idx], lane_idx, group.dst_axon[route_idx]] = (
                    True
                )

            # 4. Record probes.
            for name, (probe_cores, probe_neurons) in self._probes.items():
                result.probe_spikes[name][:, tick, :] = fired[
                    probe_cores, :, probe_neurons
                ].T

        self._potentials = potentials
        self._mailbox = mailbox
        self._last_delivered = delivered
        self._last_dropped = dropped
        self._last_duplicated = duplicated
        if track:
            result.activity = hwcounters.RunActivity(
                engine="batch",
                ticks=ticks,
                batch=batch,
                n_cores=self.n_cores,
                core_ids=self._core_ids,
                spikes=core_spikes.sum(axis=1),
                synaptic_events=core_events.sum(axis=1),
                router_hops=hop_lanes,
                dropped_spikes=drop_lanes,
                duplicated_spikes=dup_lanes,
                active_core_ticks=active_lanes,
                core_spikes=core_spikes,
                core_synaptic_events=core_events,
                spikes_per_tick=spikes_per_tick,
                cross_chip_hops=cross_lanes,
            )
        return result


__all__ = ["BatchEngine", "BatchSimulationResult", "normalize_batch_inputs"]
