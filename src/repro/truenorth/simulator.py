"""Tick-driven simulation of a :class:`NeurosynapticSystem`.

One tick corresponds to the 1 ms synchronisation interval of the real
hardware; all cores integrate and fire once per tick, and routed spikes are
delivered after their programmed delay.
"""

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from repro.obs import get_registry, span
from repro.obs import hwcounters
from repro.truenorth.system import NeurosynapticSystem
from repro.truenorth.types import CORE_AXONS, CORE_NEURONS
from repro.utils.rng import RngLike, resolve_rng, spawn_generators

ENGINES = ("reference", "batch", "event")


@dataclass
class SimulationResult:
    """Outcome of a simulation run.

    Attributes:
        ticks: number of ticks simulated.
        probe_spikes: per-probe boolean spike rasters of shape
            ``(ticks, probe.width)``.
        total_spikes: total number of neuron firings across the system,
            usable for activity-proportional power estimates.
        activity: the run's hardware-counter ledger
            (:class:`repro.obs.hwcounters.RunActivity`, batch 1), or
            ``None`` when telemetry was disabled for the run.
    """

    ticks: int
    probe_spikes: Dict[str, np.ndarray] = field(default_factory=dict)
    total_spikes: int = 0
    activity: Optional[hwcounters.RunActivity] = None

    def spike_counts(self, probe: str) -> np.ndarray:
        """Per-line firing counts over the whole run for ``probe``."""
        return self.probe_spikes[probe].sum(axis=0)

    def spike_rates(self, probe: str) -> np.ndarray:
        """Per-line firing rates (counts / ticks) for ``probe``."""
        if self.ticks == 0:
            raise ValueError("no ticks were simulated")
        return self.spike_counts(probe) / float(self.ticks)


class Simulator:
    """Runs a system tick by tick, feeding inputs and recording probes.

    Three interchangeable engines back the same API. The ``reference``
    engine advances one core at a time through
    :meth:`NeurosynapticCore.tick` and is the tick-accurate ground
    truth. The ``batch`` engine (:mod:`repro.truenorth.engine`) compiles
    the system into stacked arrays and evaluates whole batches of input
    windows with one matmul per tick. The ``event`` engine
    (:mod:`repro.truenorth.event_engine`) shares that compilation but
    advances only cores with pending spike deliveries or unsettled leak
    dynamics, skipping quiescent cores — fastest at sparse activity and
    small batch sizes. The conformance suite proves all engines'
    rasters bit-identical to the reference. Single-lane :meth:`run`
    results are bit-identical across engines for the same ``rng``;
    :meth:`run_batch` lane ``i`` is bit-identical to a reference run
    seeded with ``spawn_generators(rng, batch)[i]`` on any engine.

    Args:
        system: the fully configured system to simulate.
        rng: randomness source for stochastic neurons; pass a seed for
            reproducible runs.
        engine: ``"reference"`` (default), ``"batch"``, or ``"event"``.
        faults: optional :class:`repro.faults.FaultPlan` (or an already
            compiled :class:`repro.faults.compile.CompiledFaults`) to
            inject. Every engine injects bit-identically from the same
            plan, and fault hashing never consumes from ``rng``, so a
            faulted run uses exactly the random stream of the fault-free
            run.
    """

    def __init__(
        self,
        system: NeurosynapticSystem,
        rng: RngLike = None,
        engine: str = "reference",
        faults=None,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        self.system = system
        self.engine = engine
        self._rng_spec = rng
        self._rng = resolve_rng(rng)
        self._faults = None
        if faults is not None:
            from repro.faults.compile import compile_faults

            self._faults = compile_faults(faults, system)
        self._lane = 0  # lane index this simulator plays in a batch run
        # The compiled engine backing this simulator (BatchEngine or its
        # event-driven subclass); None means the reference loop runs.
        self._batch_engine = None
        if engine == "batch":
            from repro.truenorth.engine import BatchEngine

            self._batch_engine = BatchEngine(system, faults=self._faults)
        elif engine == "event":
            from repro.truenorth.event_engine import EventEngine

            self._batch_engine = EventEngine(system, faults=self._faults)

    def run(
        self,
        ticks: int,
        inputs: Optional[Mapping[str, np.ndarray]] = None,
        reset: bool = True,
    ) -> SimulationResult:
        """Simulate ``ticks`` ticks.

        Args:
            ticks: number of ticks to advance.
            inputs: mapping from input-port name to a boolean spike raster
                of shape ``(ticks, port.width)``; ``raster[t, i]`` injects a
                spike on line ``i`` of the port at tick ``t``. Missing ports
                receive no input.
            reset: when ``True`` (default), clear all membrane potentials
                and in-flight spikes before starting.

        Returns:
            A :class:`SimulationResult` with probe rasters.

        Raises:
            ValueError: on unknown port names or misshapen rasters.
        """
        if ticks < 0:
            raise ValueError(f"ticks must be >= 0, got {ticks}")

        ports = self.system.input_ports
        rasters: Dict[str, np.ndarray] = {}
        for name, raster in (inputs or {}).items():
            if name not in ports:
                raise ValueError(f"unknown input port {name!r}")
            arr = np.asarray(raster).astype(bool)
            if arr.shape != (ticks, ports[name].width):
                raise ValueError(
                    f"input raster for {name!r} must be ({ticks}, "
                    f"{ports[name].width}), got {arr.shape}"
                )
            rasters[name] = arr

        if self._batch_engine is not None:
            batched = {name: arr[None] for name, arr in rasters.items()}
            return self._batch_engine.run(
                ticks, batched, [self._rng], reset=reset
            ).lane(0)

        with span("sim.run", ticks=ticks):
            result = self._run_reference(ticks, rasters, reset)
        obs = get_registry()
        obs.counter(
            "sim_runs_total", help="reference-engine simulation runs"
        ).inc()
        obs.counter(
            "sim_ticks_total", help="lane-ticks simulated (all engines)"
        ).inc(ticks)
        obs.counter(
            "sim_spikes_total", help="neuron firings simulated (all engines)"
        ).inc(result.total_spikes)
        if result.activity is not None:
            hwcounters.record_run(result.activity)
        return result

    def _run_reference(
        self,
        ticks: int,
        rasters: Dict[str, np.ndarray],
        reset: bool,
    ) -> SimulationResult:
        """The tick-accurate reference loop behind :meth:`run`."""
        if reset:
            self.system.reset_state()

        ports = self.system.input_ports
        probes = self.system.output_probes
        result = SimulationResult(
            ticks=ticks,
            probe_spikes={
                name: np.zeros((ticks, probe.width), dtype=bool)
                for name, probe in probes.items()
            },
        )

        router = self.system.router
        cores = self.system.cores
        faults = self._faults
        core_faults: Dict[int, object] = {}
        dynamic_faults = False
        lane_key = None
        dropped = duplicated = 0
        if faults is not None:
            core_faults = {
                core.core_id: faults.core_view(core) for core in cores
            }
            dynamic_faults = faults.has_dynamic
            if dynamic_faults:
                lane_key = faults.lane_keys(self._lane + 1)[self._lane]

        track = hwcounters.enabled()
        if track:
            n_cores = len(cores)
            core_pos = {core.core_id: i for i, core in enumerate(cores)}
            # Synaptic events per delivered axon activation = nonzero
            # entries of that axon's effective weight row (post-fault),
            # matching the batch engine's compiled matrices.
            row_nnz = np.stack(
                [
                    (
                        (
                            faults.effective_weights(core)
                            if faults is not None
                            else core.effective_weights()
                        )
                        != 0
                    ).sum(axis=1)
                    for core in cores
                ]
            ).astype(np.int64) if n_cores else np.zeros((0, CORE_AXONS), np.int64)
            # Router hops per firing neuron = routes leaving it; the
            # dynamic-fault path subtracts drops and adds echoes. The
            # cross-chip column mirrors it for routes whose endpoints sit
            # on different chips under the applied placement.
            fanout = np.zeros((n_cores, CORE_NEURONS), dtype=np.int64)
            cross_fanout = np.zeros((n_cores, CORE_NEURONS), dtype=np.int64)
            chip_of = self.system.chip_of
            for route in router.routes:
                fanout[core_pos[route.src_core], route.src_neuron] += 1
                if chip_of(route.src_core) != chip_of(route.dst_core):
                    cross_fanout[core_pos[route.src_core], route.src_neuron] += 1
            core_spikes = np.zeros(n_cores, dtype=np.int64)
            core_events = np.zeros(n_cores, dtype=np.int64)
            spikes_per_tick = np.zeros(ticks, dtype=np.int64)
            hops = active_ticks = drop_hops = dup_hops = cross_hops = 0
        for tick in range(ticks):
            # 1. External inputs scheduled for this tick. Input-port
            # injections are off-chip and bypass spike-transport faults.
            for name, raster in rasters.items():
                port = ports[name]
                for line in np.flatnonzero(raster[tick]):
                    for core_id, axon in port.targets[line]:
                        router.inject(tick, core_id, axon)

            # 2. Gather axon vectors due now, then advance every core.
            due = router.collect(tick)
            fired_by_core: Dict[int, np.ndarray] = {}
            empty = np.zeros(CORE_AXONS, dtype=bool)
            for index, core in enumerate(cores):
                axon_vector = due.get(core.core_id, empty)
                fired = core.tick(
                    axon_vector,
                    rng=self._rng,
                    faults=core_faults.get(core.core_id),
                )
                fired_by_core[core.core_id] = fired
                fired_count = int(fired.sum())
                result.total_spikes += fired_count
                if track:
                    if axon_vector.any():
                        core_events[index] += int(row_nnz[index][axon_vector].sum())
                    if fired_count:
                        core_spikes[index] += fired_count
                        spikes_per_tick[tick] += fired_count
                        active_ticks += 1

            # 3. Route this tick's output spikes forward.
            if dynamic_faults:
                for core_id, fired in fired_by_core.items():
                    lost, echoed, crossed = faults.route_core_spikes(
                        router, tick, core_id, fired, lane_key
                    )
                    dropped += lost
                    duplicated += echoed
                    if track:
                        hops += (
                            int(fanout[core_pos[core_id]][fired].sum())
                            - lost
                            + echoed
                        )
                        drop_hops += lost
                        dup_hops += echoed
                        cross_hops += crossed
            else:
                for core_id, fired in fired_by_core.items():
                    router.submit(tick, core_id, fired)
                    if track:
                        hops += int(fanout[core_pos[core_id]][fired].sum())
                        cross_hops += int(
                            cross_fanout[core_pos[core_id]][fired].sum()
                        )

            # 4. Record probes.
            for name, probe in probes.items():
                raster_out = result.probe_spikes[name]
                for line, (core_id, neuron) in enumerate(probe.sources):
                    raster_out[tick, line] = fired_by_core[core_id][neuron]

        if dropped or duplicated:
            obs = get_registry()
            obs.counter(
                "faults_spikes_dropped_total",
                help="routed spike deliveries lost to injected faults",
            ).inc(dropped)
            obs.counter(
                "faults_spikes_duplicated_total",
                help="routed spike deliveries echoed by injected faults",
            ).inc(duplicated)
        if track:
            result.activity = hwcounters.RunActivity(
                engine="reference",
                ticks=ticks,
                batch=1,
                n_cores=n_cores,
                core_ids=np.array([core.core_id for core in cores], dtype=np.int64),
                spikes=np.array([result.total_spikes], dtype=np.int64),
                synaptic_events=np.array([core_events.sum()], dtype=np.int64),
                router_hops=np.array([hops], dtype=np.int64),
                dropped_spikes=np.array([drop_hops], dtype=np.int64),
                duplicated_spikes=np.array([dup_hops], dtype=np.int64),
                active_core_ticks=np.array([active_ticks], dtype=np.int64),
                core_spikes=core_spikes[None, :],
                core_synaptic_events=core_events[None, :],
                spikes_per_tick=spikes_per_tick[None, :],
                cross_chip_hops=np.array([cross_hops], dtype=np.int64),
            )
        return result

    def run_batch(
        self,
        ticks: int,
        inputs: Optional[Mapping[str, np.ndarray]] = None,
        batch: Optional[int] = None,
        reset: bool = True,
    ):
        """Simulate ``batch`` independent input windows (lanes).

        Works on either engine with identical results: the batch engine
        vectorizes across lanes, the reference engine falls back to one
        sequential run per lane. Lane ``i`` consumes the random stream of
        ``spawn_generators(rng, batch)[i]`` where ``rng`` is the
        simulator's constructor argument, so lanes are mutually
        independent and the two engines comparable bit for bit.

        Args:
            ticks: number of ticks to advance in every lane.
            inputs: mapping from input-port name to a spike raster of
                shape ``(ticks, width)`` (shared by all lanes) or
                ``(batch, ticks, width)`` (per-lane).
            batch: lane count; inferred from the first 3-D raster when
                omitted.
            reset: must be ``True`` — every lane starts from a reset
                system; carrying state into a batch run is undefined.

        Returns:
            A :class:`repro.truenorth.engine.BatchSimulationResult`.

        Raises:
            ValueError: on ``reset=False``, unknown ports, misshapen
                rasters, or an undeterminable batch size.
        """
        from repro.truenorth.engine import (
            BatchSimulationResult,
            normalize_batch_inputs,
        )

        if not reset:
            raise ValueError("run_batch always starts from a reset state")
        if ticks < 0:
            raise ValueError(f"ticks must be >= 0, got {ticks}")
        batch, rasters = normalize_batch_inputs(self.system, ticks, inputs, batch)
        lane_rngs = spawn_generators(self._rng_spec, batch)

        if self._batch_engine is not None:
            return self._batch_engine.run(ticks, rasters, lane_rngs, reset=True)

        result = BatchSimulationResult(
            ticks=ticks,
            batch=batch,
            probe_spikes={
                name: np.zeros((batch, ticks, probe.width), dtype=bool)
                for name, probe in self.system.output_probes.items()
            },
            total_spikes=np.zeros(batch, dtype=np.int64),
        )
        lane_activities = []
        for lane, lane_rng in enumerate(lane_rngs):
            lane_inputs = {name: raster[lane] for name, raster in rasters.items()}
            lane_sim = Simulator(self.system, rng=lane_rng, faults=self._faults)
            lane_sim._lane = lane
            lane_result = lane_sim.run(ticks, lane_inputs, reset=True)
            for name, raster in lane_result.probe_spikes.items():
                result.probe_spikes[name][lane] = raster
            result.total_spikes[lane] = lane_result.total_spikes
            lane_activities.append(lane_result.activity)
        # Each lane already recorded itself; the stacked ledger exists so
        # batch-level consumers see one (batch,)-shaped view per engine.
        if all(activity is not None for activity in lane_activities):
            result.activity = hwcounters.RunActivity.stack(lane_activities)
        return result


__all__ = ["ENGINES", "SimulationResult", "Simulator"]
