"""Tick-driven simulation of a :class:`NeurosynapticSystem`.

One tick corresponds to the 1 ms synchronisation interval of the real
hardware; all cores integrate and fire once per tick, and routed spikes are
delivered after their programmed delay.
"""

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from repro.truenorth.system import NeurosynapticSystem
from repro.truenorth.types import CORE_AXONS
from repro.utils.rng import RngLike, resolve_rng


@dataclass
class SimulationResult:
    """Outcome of a simulation run.

    Attributes:
        ticks: number of ticks simulated.
        probe_spikes: per-probe boolean spike rasters of shape
            ``(ticks, probe.width)``.
        total_spikes: total number of neuron firings across the system,
            usable for activity-proportional power estimates.
    """

    ticks: int
    probe_spikes: Dict[str, np.ndarray] = field(default_factory=dict)
    total_spikes: int = 0

    def spike_counts(self, probe: str) -> np.ndarray:
        """Per-line firing counts over the whole run for ``probe``."""
        return self.probe_spikes[probe].sum(axis=0)

    def spike_rates(self, probe: str) -> np.ndarray:
        """Per-line firing rates (counts / ticks) for ``probe``."""
        if self.ticks == 0:
            raise ValueError("no ticks were simulated")
        return self.spike_counts(probe) / float(self.ticks)


class Simulator:
    """Runs a system tick by tick, feeding inputs and recording probes.

    Args:
        system: the fully configured system to simulate.
        rng: randomness source for stochastic neurons; pass a seed for
            reproducible runs.
    """

    def __init__(self, system: NeurosynapticSystem, rng: RngLike = None) -> None:
        self.system = system
        self._rng = resolve_rng(rng)

    def run(
        self,
        ticks: int,
        inputs: Optional[Mapping[str, np.ndarray]] = None,
        reset: bool = True,
    ) -> SimulationResult:
        """Simulate ``ticks`` ticks.

        Args:
            ticks: number of ticks to advance.
            inputs: mapping from input-port name to a boolean spike raster
                of shape ``(ticks, port.width)``; ``raster[t, i]`` injects a
                spike on line ``i`` of the port at tick ``t``. Missing ports
                receive no input.
            reset: when ``True`` (default), clear all membrane potentials
                and in-flight spikes before starting.

        Returns:
            A :class:`SimulationResult` with probe rasters.

        Raises:
            ValueError: on unknown port names or misshapen rasters.
        """
        if ticks < 0:
            raise ValueError(f"ticks must be >= 0, got {ticks}")
        if reset:
            self.system.reset_state()

        ports = self.system.input_ports
        rasters: Dict[str, np.ndarray] = {}
        for name, raster in (inputs or {}).items():
            if name not in ports:
                raise ValueError(f"unknown input port {name!r}")
            arr = np.asarray(raster).astype(bool)
            if arr.shape != (ticks, ports[name].width):
                raise ValueError(
                    f"input raster for {name!r} must be ({ticks}, "
                    f"{ports[name].width}), got {arr.shape}"
                )
            rasters[name] = arr

        probes = self.system.output_probes
        result = SimulationResult(
            ticks=ticks,
            probe_spikes={
                name: np.zeros((ticks, probe.width), dtype=bool)
                for name, probe in probes.items()
            },
        )

        router = self.system.router
        cores = self.system.cores
        for tick in range(ticks):
            # 1. External inputs scheduled for this tick.
            for name, raster in rasters.items():
                port = ports[name]
                for line in np.flatnonzero(raster[tick]):
                    for core_id, axon in port.targets[line]:
                        router.inject(tick, core_id, axon)

            # 2. Gather axon vectors due now, then advance every core.
            due = router.collect(tick)
            fired_by_core: Dict[int, np.ndarray] = {}
            empty = np.zeros(CORE_AXONS, dtype=bool)
            for core in cores:
                axon_vector = due.get(core.core_id, empty)
                fired = core.tick(axon_vector, rng=self._rng)
                fired_by_core[core.core_id] = fired
                result.total_spikes += int(fired.sum())

            # 3. Route this tick's output spikes forward.
            for core_id, fired in fired_by_core.items():
                router.submit(tick, core_id, fired)

            # 4. Record probes.
            for name, probe in probes.items():
                raster_out = result.probe_spikes[name]
                for line, (core_id, neuron) in enumerate(probe.sources):
                    raster_out[tick, line] = fired_by_core[core_id][neuron]

        return result


__all__ = ["SimulationResult", "Simulator"]
