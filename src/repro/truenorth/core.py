"""The neurosynaptic core: 256 axons x 256 neurons joined by a crossbar."""

from typing import Dict, Optional, Sequence

import numpy as np

from repro.truenorth.types import (
    CORE_AXONS,
    CORE_NEURONS,
    NUM_AXON_TYPES,
    NeuronParameters,
    POTENTIAL_MAX,
    POTENTIAL_MIN,
    ResetMode,
)
from repro.utils.rng import RngLike, resolve_rng

_RESET_CODES = {ResetMode.RESET: 0, ResetMode.LINEAR: 1, ResetMode.NONE: 2}


class NeurosynapticCore:
    """One TrueNorth core with vectorised membrane dynamics.

    The function of the crossbar is the inner product of the 256-element
    binary input-spike vector and the effective weight matrix, where the
    effective weight of crossbar point ``(axon, neuron)`` is the 1-bit
    connectivity indicator times the neuron's 4-entry weight LUT entry for
    the axon's type (paper, Section 2.2).

    State mutates only through :meth:`tick` and :meth:`reset_state`;
    configuration mutates through the ``set_*``/``connect`` methods, which
    must be called before simulation starts.

    Args:
        core_id: identifier of this core within its system.
        name: optional human-readable label used in error messages.
    """

    def __init__(self, core_id: int, name: str = "") -> None:
        if core_id < 0:
            raise ValueError(f"core_id must be >= 0, got {core_id}")
        self.core_id = core_id
        self.name = name or f"core{core_id}"

        # Configuration (axon x neuron layout).
        self._crossbar = np.zeros((CORE_AXONS, CORE_NEURONS), dtype=bool)
        self._axon_types = np.zeros(CORE_AXONS, dtype=np.int64)
        self._lut = np.zeros((CORE_NEURONS, NUM_AXON_TYPES), dtype=np.int64)
        self._threshold = np.ones(CORE_NEURONS, dtype=np.int64)
        self._leak = np.zeros(CORE_NEURONS, dtype=np.int64)
        self._reset_code = np.zeros(CORE_NEURONS, dtype=np.int64)
        self._reset_potential = np.zeros(CORE_NEURONS, dtype=np.int64)
        self._floor = np.zeros(CORE_NEURONS, dtype=np.int64)
        self._stochastic_bits = np.zeros(CORE_NEURONS, dtype=np.int64)

        # Runtime state.
        self._potential = np.zeros(CORE_NEURONS, dtype=np.int64)
        self._effective = None  # type: Optional[np.ndarray]

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def set_axon_type(self, axon: int, axon_type: int) -> None:
        """Label ``axon`` with one of the four axon types."""
        self._check_axon(axon)
        if not 0 <= axon_type < NUM_AXON_TYPES:
            raise ValueError(
                f"axon_type must be in [0, {NUM_AXON_TYPES}), got {axon_type}"
            )
        self._axon_types[axon] = axon_type
        self._effective = None

    def set_axon_types(self, axon_types: Sequence[int]) -> None:
        """Label all 256 axons at once."""
        types = np.asarray(axon_types, dtype=np.int64)
        if types.shape != (CORE_AXONS,):
            raise ValueError(f"need {CORE_AXONS} axon types, got shape {types.shape}")
        if types.min() < 0 or types.max() >= NUM_AXON_TYPES:
            raise ValueError("axon types must be in [0, 4)")
        self._axon_types = types.copy()
        self._effective = None

    def set_neuron(self, neuron: int, params: NeuronParameters) -> None:
        """Configure one neuron from a :class:`NeuronParameters` record."""
        self._check_neuron(neuron)
        self._lut[neuron] = np.asarray(params.weights, dtype=np.int64)
        self._threshold[neuron] = params.threshold
        self._leak[neuron] = params.leak
        self._reset_code[neuron] = _RESET_CODES[params.reset_mode]
        self._reset_potential[neuron] = params.reset_potential
        self._floor[neuron] = params.floor
        self._stochastic_bits[neuron] = params.stochastic_threshold_bits
        self._effective = None

    def connect(self, axon: int, neuron: int, connected: bool = True) -> None:
        """Set one crossbar point's 1-bit connectivity indicator."""
        self._check_axon(axon)
        self._check_neuron(neuron)
        self._crossbar[axon, neuron] = connected
        self._effective = None

    def set_crossbar(self, crossbar: np.ndarray) -> None:
        """Replace the full 256x256 connectivity matrix (axon-major)."""
        arr = np.asarray(crossbar).astype(bool)
        if arr.shape != (CORE_AXONS, CORE_NEURONS):
            raise ValueError(
                f"crossbar must be ({CORE_AXONS}, {CORE_NEURONS}), got {arr.shape}"
            )
        self._crossbar = arr.copy()
        self._effective = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def potentials(self) -> np.ndarray:
        """Copy of the 256 membrane potentials (test/probe hook)."""
        return self._potential.copy()

    @property
    def crossbar(self) -> np.ndarray:
        """Copy of the 256x256 boolean connectivity matrix."""
        return self._crossbar.copy()

    @property
    def axon_types(self) -> np.ndarray:
        """Copy of the 256 axon type labels."""
        return self._axon_types.copy()

    def neuron_arrays(self) -> Dict[str, np.ndarray]:
        """Copies of the per-neuron parameter arrays, keyed by name.

        Consumed by the batch engine's compiler
        (:mod:`repro.truenorth.engine`), which precomputes the whole
        system's dynamics from these arrays instead of ticking cores one
        by one. Keys: ``threshold``, ``leak``, ``reset_code`` (0 = reset,
        1 = linear, 2 = none), ``reset_potential``, ``floor``,
        ``stochastic_bits`` — each of shape ``(CORE_NEURONS,)``.
        """
        return {
            "threshold": self._threshold.copy(),
            "leak": self._leak.copy(),
            "reset_code": self._reset_code.copy(),
            "reset_potential": self._reset_potential.copy(),
            "floor": self._floor.copy(),
            "stochastic_bits": self._stochastic_bits.copy(),
        }

    def effective_weights(self) -> np.ndarray:
        """The ``(axon, neuron)`` effective synaptic weight matrix.

        ``effective[a, n] = crossbar[a, n] * lut[n, axon_type[a]]``.
        """
        if self._effective is None:
            per_axon = self._lut[:, self._axon_types].T  # (axon, neuron)
            self._effective = np.where(self._crossbar, per_axon, 0)
        return self._effective

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def tick(
        self, input_spikes: np.ndarray, rng: RngLike = None, faults=None
    ) -> np.ndarray:
        """Advance the core by one tick.

        Order of operations per the digital neuron model: synaptic
        integration, leak, threshold comparison (with optional stochastic
        offset), fire + reset, then saturation at the negative floor and
        the potential register bounds.

        Args:
            input_spikes: 256-element binary vector of axon activity.
            rng: randomness source for stochastic thresholds. Only consulted
                when at least one neuron enables stochastic mode; fault
                injection never consumes from this stream.
            faults: optional :class:`repro.faults.compile.CoreFaults` view
                for this core. Weight overrides replace the effective
                matrix; threshold offsets drift the fire comparison (the
                linear-reset subtraction keeps the configured threshold);
                stuck masks clamp the *output* only, so membrane dynamics
                follow the true comparator result.

        Returns:
            256-element boolean vector; ``True`` where the neuron fired.
        """
        spikes = np.asarray(input_spikes)
        if spikes.shape != (CORE_AXONS,):
            raise ValueError(
                f"input_spikes must have shape ({CORE_AXONS},), got {spikes.shape}"
            )
        active = spikes.astype(bool)

        weights = self.effective_weights()
        if faults is not None and faults.weights is not None:
            weights = faults.weights
        synaptic = weights[active].sum(axis=0) if active.any() else 0
        self._potential = self._potential + synaptic + self._leak

        threshold = self._threshold
        stochastic = self._stochastic_bits > 0
        if stochastic.any():
            generator = resolve_rng(rng)
            offsets = np.zeros(CORE_NEURONS, dtype=np.int64)
            spans = (1 << self._stochastic_bits[stochastic]).astype(np.int64)
            offsets[stochastic] = generator.integers(0, spans)
            threshold = threshold + offsets
        if faults is not None and faults.threshold_offset is not None:
            threshold = threshold + faults.threshold_offset

        crossed = self._potential >= threshold

        hard_reset = crossed & (self._reset_code == 0)
        linear_reset = crossed & (self._reset_code == 1)
        self._potential = np.where(hard_reset, self._reset_potential, self._potential)
        self._potential = np.where(
            linear_reset, self._potential - self._threshold, self._potential
        )

        self._potential = np.maximum(self._potential, -self._floor)
        np.clip(self._potential, POTENTIAL_MIN, POTENTIAL_MAX, out=self._potential)

        fired = crossed
        if faults is not None:
            if faults.force_fire is not None:
                fired = fired | faults.force_fire
            if faults.force_silent is not None:
                fired = fired & ~faults.force_silent
        return fired

    def reset_state(self) -> None:
        """Zero all membrane potentials (configuration is untouched)."""
        self._potential = np.zeros(CORE_NEURONS, dtype=np.int64)

    # ------------------------------------------------------------------
    def _check_axon(self, axon: int) -> None:
        if not 0 <= axon < CORE_AXONS:
            raise ValueError(f"{self.name}: axon must be in [0, {CORE_AXONS}), got {axon}")

    def _check_neuron(self, neuron: int) -> None:
        if not 0 <= neuron < CORE_NEURONS:
            raise ValueError(
                f"{self.name}: neuron must be in [0, {CORE_NEURONS}), got {neuron}"
            )

    def __repr__(self) -> str:
        used = int(self._crossbar.any(axis=0).sum())
        return f"NeurosynapticCore(id={self.core_id}, name={self.name!r}, neurons_used={used})"


__all__ = ["NeurosynapticCore"]
