"""Inter-core spike routing.

On TrueNorth, each neuron's output is wired to exactly one axon — on the
same core (local) or another core (long-distance) — with a programmable
delivery delay. Fan-out greater than one is built from splitter cores (see
:mod:`repro.corelets.library.splitter`), so the router enforces the
one-target-per-neuron rule.
"""

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.errors import RoutingError
from repro.truenorth.types import CORE_AXONS, CORE_NEURONS, MAX_DELAY_TICKS


@dataclass(frozen=True)
class Route:
    """A wire from one neuron output to one axon input.

    Attributes:
        src_core: core holding the source neuron.
        src_neuron: source neuron index in ``[0, 256)``.
        dst_core: core holding the destination axon.
        dst_axon: destination axon index in ``[0, 256)``.
        delay: delivery delay in ticks, ``1..15`` (1 = next tick).
    """

    src_core: int
    src_neuron: int
    dst_core: int
    dst_axon: int
    delay: int = 1

    def __post_init__(self) -> None:
        if not 0 <= self.src_neuron < CORE_NEURONS:
            raise RoutingError(f"src_neuron out of range: {self.src_neuron}")
        if not 0 <= self.dst_axon < CORE_AXONS:
            raise RoutingError(f"dst_axon out of range: {self.dst_axon}")
        if not 1 <= self.delay <= MAX_DELAY_TICKS:
            raise RoutingError(
                f"delay must be in [1, {MAX_DELAY_TICKS}], got {self.delay}"
            )


class Router:
    """Delivers spikes along configured routes with per-route delays.

    The router owns a time-indexed mailbox: spikes emitted at tick ``t``
    along a route with delay ``d`` appear on the destination axon at tick
    ``t + d``.
    """

    def __init__(self) -> None:
        self._routes: Dict[Tuple[int, int], Route] = {}
        # (core, neuron) -> route, keyed by source; enforces fan-out 1.
        self._by_src_core: Dict[int, List[Route]] = defaultdict(list)
        self._mailbox: Dict[int, Dict[int, np.ndarray]] = defaultdict(dict)

    def add_route(self, route: Route) -> None:
        """Register a route; raises if the source neuron is already wired."""
        key = (route.src_core, route.src_neuron)
        if key in self._routes:
            raise RoutingError(
                f"neuron {key} already routed to "
                f"({self._routes[key].dst_core}, {self._routes[key].dst_axon}); "
                "use a splitter corelet for fan-out"
            )
        self._routes[key] = route
        self._by_src_core[route.src_core].append(route)

    def add_routes(self, routes: Iterable[Route]) -> None:
        """Register many routes."""
        for route in routes:
            self.add_route(route)

    @property
    def routes(self) -> Tuple[Route, ...]:
        """All registered routes."""
        return tuple(self._routes.values())

    def route_for(self, src_core: int, src_neuron: int) -> Route:
        """Return the route leaving ``(src_core, src_neuron)``.

        Raises:
            KeyError: if the neuron has no route.
        """
        return self._routes[(src_core, src_neuron)]

    def routes_from(self, src_core: int) -> Tuple[Route, ...]:
        """All routes leaving ``src_core`` in registration order."""
        return tuple(self._by_src_core.get(src_core, ()))

    def crossing_routes(self, chip_of) -> Tuple[Route, ...]:
        """Routes whose endpoints sit on different chips.

        Args:
            chip_of: callable mapping a core id to its chip index
                (typically ``NeurosynapticSystem.chip_of``).
        """
        return tuple(
            route
            for route in self._routes.values()
            if chip_of(route.src_core) != chip_of(route.dst_core)
        )

    # ------------------------------------------------------------------
    # Simulation-time interface
    # ------------------------------------------------------------------
    def submit(self, tick: int, src_core: int, fired: np.ndarray) -> None:
        """Record the spikes ``fired`` emitted by ``src_core`` at ``tick``."""
        if not fired.any():
            return
        for route in self._by_src_core.get(src_core, ()):
            if fired[route.src_neuron]:
                self._deposit(tick + route.delay, route.dst_core, route.dst_axon)
        # Spikes from unrouted neurons fall on the floor by design: they are
        # either probed externally or genuinely unused.

    def _deposit(self, tick: int, core_id: int, axon: int) -> None:
        slot = self._mailbox[tick]
        if core_id not in slot:
            slot[core_id] = np.zeros(CORE_AXONS, dtype=bool)
        slot[core_id][axon] = True

    def inject(self, tick: int, core_id: int, axon: int) -> None:
        """Deposit an externally generated spike (input port delivery)."""
        self._deposit(tick, core_id, axon)

    def collect(self, tick: int) -> Dict[int, np.ndarray]:
        """Pop and return the axon vectors due at ``tick``, keyed by core."""
        return self._mailbox.pop(tick, {})

    def clear(self) -> None:
        """Drop all in-flight spikes (routes are kept)."""
        self._mailbox.clear()


__all__ = ["Route", "Router"]
