"""Event-driven sparse simulation of a :class:`NeurosynapticSystem`.

Spiking workloads are mostly silent: Esser et al. (arXiv:1603.08270)
report the sparse, event-driven activity that makes TrueNorth
energy-efficient, and the same sparsity is a throughput opportunity in
software. The :class:`BatchEngine` pays for every core every tick — one
stacked matmul over ``(n_cores, B, 256)`` regardless of how many cores
actually received a spike. This module adds a third engine,
``Simulator(engine="event")``, that advances only the *active* subset of
cores per tick and skips quiescent cores entirely, while staying
bit-identical to the reference engine — rasters, ``total_spikes``, and
the full :class:`~repro.obs.hwcounters.RunActivity` ledger.

Skip-tick equivalence (the correctness argument, DESIGN.md §13)
----------------------------------------------------------------

A core may be skipped at tick ``t`` only when the no-input tick map is
the *identity* on its current state. Per neuron, a reference tick with
an all-zero axon vector computes::

    p'      = p + leak                      # integration is zero
    crossed = p' >= threshold_cmp           # fire comparison
    p''     = reset(p') if crossed else p'
    p_next  = clip(max(p'', -floor), MIN, MAX)

The engine therefore skips a core iff **every** neuron in **every**
lane satisfies both

1. ``p + leak < threshold_cmp`` — the neuron cannot fire, so no spike
   is emitted, routed, probed, or counted; and
2. ``clip(max(p + leak, -floor), MIN, MAX) == p`` — the membrane
   potential is a fixed point of the leak/floor/saturation dynamics.

Under (1) and (2) the tick changes nothing, and by induction the state
stays a fixed point until the router delivers a spike, so skipping any
number of such ticks is exactly equivalent to simulating them. Cores
whose state is *not* yet settled (e.g. a nonzero leak still decaying a
potential toward its floor) remain in the active set and are ticked
normally until they settle — correctness never depends on a decay
shortcut.

Two classes of core are pinned permanently active:

- **Stochastic cores** draw a threshold offset from the lane RNG every
  tick in the reference engine; skipping them would desynchronise the
  random stream. They are ticked (and draw) every tick, in ascending
  core order, exactly like the batch engine.
- **Stuck-fire cores** (fault-injected ``force_fire``) emit spikes
  every tick by definition, so they are never quiescent.

Everything else — compilation, float-exactness bounds, fault hashing,
lane seeding — is inherited from :class:`BatchEngine`; the residual
active-core inner loop is the batch engine's vectorized matvec applied
to the active slice. With ``B > 1`` a core is skipped only when it is
quiescent in *every* lane, so the engine shines at small batch sizes
and realistic (≤10 %) spike densities; ``benchmarks/bench_engine_batch.py
--sweep`` records the density/speedup curve in ``BENCH_engine.json``.
"""

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.obs import hwcounters
from repro.truenorth.engine import BatchEngine, BatchSimulationResult
from repro.truenorth.system import NeurosynapticSystem
from repro.truenorth.types import CORE_AXONS, CORE_NEURONS, POTENTIAL_MAX, POTENTIAL_MIN


class EventEngine(BatchEngine):
    """Evaluates B input windows, touching only active cores per tick.

    Construction compiles the system exactly like :class:`BatchEngine`
    (same arrays, same float-exactness guarantees, same fault
    compilation); only the tick loop differs. State semantics match the
    batch engine: ``reset=False`` continues this engine's persistent
    potentials, in-flight mailbox, *and* the per-core settledness used
    for skipping.

    Args:
        system: the fully configured system to compile.
        faults: optional :class:`repro.faults.FaultPlan` (or compiled
            :class:`repro.faults.compile.CompiledFaults`) to inject,
            bit-identically to the other engines.
    """

    engine_name = "event"

    def __init__(self, system: NeurosynapticSystem, faults=None) -> None:
        super().__init__(system, faults=faults)
        always = np.zeros(self.n_cores, dtype=bool)
        for core_index, _, _ in self._stochastic:
            always[core_index] = True
        if self._force_fire is not None:
            always |= self._force_fire[:, 0, :].any(axis=1)
        #: Cores ticked unconditionally: stochastic (RNG stream parity)
        #: and stuck-fire (they emit every tick).
        self._always_active = always
        # Event-specific persistent state for reset=False continuation.
        self._cooling: Optional[np.ndarray] = None
        self._touched_by_tick: Dict[int, np.ndarray] = {}
        #: (core, tick) pairs actually integrated in the most recent run
        #: (includes non-firing active cores), read by tests and the
        #: density-sweep benchmark to verify work really was skipped.
        self.last_processed_core_ticks = 0

    # ------------------------------------------------------------------
    def _unsettled(
        self, potentials: np.ndarray, core_indices: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Per-core mask of cores whose no-input tick is NOT the identity.

        Args:
            potentials: ``(k, B, 256)`` potentials — the full state when
                ``core_indices`` is ``None``, else the slice at those
                compiled core indices.
            core_indices: compiled core indices the slice corresponds to.

        Returns:
            ``(k,)`` bool; ``True`` where the core must keep ticking
            (could fire without input, or its potential still changes).
        """
        sel = slice(None) if core_indices is None else core_indices
        after_leak = potentials + self._leak[sel]
        can_fire = after_leak >= self._threshold_cmp[sel]
        settled = (
            np.clip(
                np.maximum(after_leak, self._neg_floor[sel]),
                POTENTIAL_MIN,
                POTENTIAL_MAX,
            )
            == potentials
        )
        return (can_fire | ~settled).any(axis=(1, 2))

    # ------------------------------------------------------------------
    def _run(
        self,
        ticks: int,
        rasters: Mapping[str, np.ndarray],
        lane_rngs: Sequence[np.random.Generator],
        reset: bool,
        batch: int,
    ) -> BatchSimulationResult:
        """The event-driven tick loop behind :meth:`run`."""
        state_shape = (self.n_cores, batch, CORE_NEURONS)
        if reset or self._potentials is None:
            potentials = np.zeros(state_shape, dtype=self._dtype)
            mailbox: Dict[int, np.ndarray] = {}
            touched_by_tick: Dict[int, np.ndarray] = {}
            cooling: Optional[np.ndarray] = None
        else:
            if self._potentials.shape != state_shape:
                raise ValueError(
                    f"reset=False requires the previous batch size "
                    f"{self._potentials.shape[1]}, got {batch}"
                )
            potentials = self._potentials
            mailbox = self._mailbox
            touched_by_tick = self._touched_by_tick
            cooling = self._cooling
        if cooling is None:
            # One full settledness pass at run start; afterwards only
            # processed cores are re-evaluated (skipped cores are at a
            # fixed point and provably stay there).
            cooling = self._unsettled(potentials)

        result = BatchSimulationResult(
            ticks=ticks,
            batch=batch,
            probe_spikes={
                name: np.zeros((batch, ticks, cores.size), dtype=bool)
                for name, (cores, _) in self._probes.items()
            },
            total_spikes=np.zeros(batch, dtype=np.int64),
        )

        delivered = dropped = duplicated = 0
        processed_core_ticks = 0
        dynamic_faults = self._faults is not None and self._faults.has_dynamic
        lane_keys = self._faults.lane_keys(batch) if dynamic_faults else None
        box_shape = (self.n_cores, batch, CORE_AXONS)
        pos_of = np.empty(self.n_cores, dtype=np.int64)
        track = hwcounters.enabled()
        if track:
            hop_lanes = np.zeros(batch, dtype=np.int64)
            cross_lanes = np.zeros(batch, dtype=np.int64)
            drop_lanes = np.zeros(batch, dtype=np.int64)
            dup_lanes = np.zeros(batch, dtype=np.int64)
            active_lanes = np.zeros(batch, dtype=np.int64)
            core_spikes = np.zeros((batch, self.n_cores), dtype=np.int64)
            core_events = np.zeros((batch, self.n_cores), dtype=np.int64)
            spikes_per_tick = np.zeros((batch, ticks), dtype=np.int64)
        for tick in range(ticks):
            current = mailbox.pop(tick, None)
            touched = touched_by_tick.pop(tick, None)
            if touched is None:
                touched = np.zeros(self.n_cores, dtype=bool)

            # 1. External inputs scheduled for this tick.
            for name, raster in rasters.items():
                table = self._ports[name]
                if table.line.size == 0:
                    continue
                active_lines = raster[:, tick, :]
                if not active_lines.any():
                    continue
                hits = active_lines[:, table.line]
                lane_idx, pair_idx = np.nonzero(hits)
                if lane_idx.size == 0:
                    continue
                if current is None:
                    current = np.zeros(box_shape, dtype=bool)
                cores_hit = table.core[pair_idx]
                current[cores_hit, lane_idx, table.axon[pair_idx]] = True
                touched[cores_hit] = True

            # 2. The active set: cores with deliveries, cores whose leak
            # dynamics have not settled, and the permanently active ones.
            active = self._always_active | cooling | touched
            act = np.flatnonzero(active)
            if act.size == 0:
                # Every core is at a no-input fixed point: the tick is
                # the identity (zero spikes, untouched probes/counters).
                continue
            pos_of[act] = np.arange(act.size)
            processed_core_ticks += act.size

            # 3. Integrate, leak, threshold, fire, reset, saturate — on
            # the active slice only, reusing the batch engine's math.
            # Only cores that actually received a delivery need the
            # matvec (cooling/always-active cores have all-zero axons),
            # and for small delivery sets per-core matvecs against
            # weight *views* beat the stacked matmul, whose fancy
            # indexing copies a full 256x256 matrix per core per tick.
            # Either path sums exactly representable integers, so the
            # result is bit-identical regardless (see engine dtype
            # bounds).
            pot = potentials[act]
            if current is not None:
                cur = current[act]
                hit = np.flatnonzero(cur.any(axis=(1, 2)))
                if hit.size:
                    cur_f = cur[hit].astype(self._dtype)
                    if track:
                        core_events[:, act[hit]] += (
                            (cur_f @ self._row_nnz_f[act[hit]])[..., 0]
                            .T.astype(np.int64)
                        )
                    if hit.size * batch <= 32:
                        for local, row in enumerate(hit):
                            pot[row] += cur_f[local] @ self._weights[act[row]]
                    else:
                        pot[hit] += cur_f @ self._weights[act[hit]]
            pot += self._leak[act]

            crossed = pot >= self._threshold_cmp[act]
            for core_index, mask, spans in self._stochastic:
                position = pos_of[core_index]
                offsets = np.empty((batch, spans.size), dtype=np.int64)
                for lane, generator in enumerate(lane_rngs):
                    offsets[lane] = generator.integers(0, spans)
                crossed[position][:, mask] = pot[position][:, mask] >= (
                    self._threshold_cmp[core_index, 0, mask][None, :]
                    + offsets.astype(self._dtype)
                )

            np.copyto(pot, self._reset_potential[act], where=crossed & self._is_hard[act])
            np.subtract(
                pot,
                self._threshold[act],
                out=pot,
                where=crossed & self._is_linear[act],
            )
            np.maximum(pot, self._neg_floor[act], out=pot)
            np.clip(pot, POTENTIAL_MIN, POTENTIAL_MAX, out=pot)

            fired = crossed
            if self._force_fire is not None:
                fired = (crossed | self._force_fire[act]) & ~self._force_silent[act]

            if track:
                fired_cb = fired.sum(axis=2)  # (active cores, batch)
                core_spikes[:, act] += fired_cb.T
                spikes_per_tick[:, tick] = fired_cb.sum(axis=0)
                active_lanes += (fired_cb > 0).sum(axis=0)
                result.total_spikes += spikes_per_tick[:, tick]
            else:
                result.total_spikes += fired.sum(axis=(0, 2))

            # 4. Route this tick's output spikes forward (active sources
            # only — skipped cores cannot have fired).
            for group in self._route_groups:
                rows = np.flatnonzero(active[group.src_core])
                if rows.size == 0:
                    continue
                emitted = fired[
                    pos_of[group.src_core[rows]], :, group.src_neuron[rows]
                ]
                if not emitted.any():
                    continue
                local_idx, lane_idx = np.nonzero(emitted)
                route_idx = rows[local_idx]
                if dynamic_faults:
                    keep, echo = self._faults.spike_outcomes(
                        lane_keys[lane_idx],
                        tick,
                        group.src_core_id[route_idx],
                        group.src_neuron[route_idx],
                    )
                    dropped += int((~keep).sum())
                    duplicated += int(echo.sum())
                    if track:
                        drop_lanes += np.bincount(
                            lane_idx[~keep], minlength=batch
                        )
                        dup_lanes += np.bincount(
                            lane_idx[echo], minlength=batch
                        )
                    for selector, delay in ((keep, group.delay), (echo, group.delay + 1)):
                        sel = np.flatnonzero(selector)
                        if sel.size == 0:
                            continue
                        delivered += sel.size
                        if track:
                            hop_lanes += np.bincount(
                                lane_idx[sel], minlength=batch
                            )
                            cross_sel = sel[group.crossing[route_idx[sel]]]
                            if cross_sel.size:
                                cross_lanes += np.bincount(
                                    lane_idx[cross_sel], minlength=batch
                                )
                        self._deposit(
                            mailbox,
                            touched_by_tick,
                            box_shape,
                            tick + delay,
                            group.dst_core[route_idx[sel]],
                            lane_idx[sel],
                            group.dst_axon[route_idx[sel]],
                        )
                    continue
                delivered += route_idx.size
                if track:
                    hop_lanes += np.bincount(lane_idx, minlength=batch)
                    cross = group.crossing[route_idx]
                    if cross.any():
                        cross_lanes += np.bincount(
                            lane_idx[cross], minlength=batch
                        )
                self._deposit(
                    mailbox,
                    touched_by_tick,
                    box_shape,
                    tick + group.delay,
                    group.dst_core[route_idx],
                    lane_idx,
                    group.dst_axon[route_idx],
                )

            # 5. Record probes (inactive probe cores stayed silent).
            for name, (probe_cores, probe_neurons) in self._probes.items():
                rows = np.flatnonzero(active[probe_cores])
                if rows.size:
                    result.probe_spikes[name][:, tick, rows] = fired[
                        pos_of[probe_cores[rows]], :, probe_neurons[rows]
                    ].T

            # 6. Write back and re-evaluate settledness for the cores we
            # just ticked; skipped cores are at a fixed point already.
            potentials[act] = pot
            cooling[act] = self._unsettled(pot, act)

        self._potentials = potentials
        self._mailbox = mailbox
        self._touched_by_tick = touched_by_tick
        self._cooling = cooling
        self._last_delivered = delivered
        self._last_dropped = dropped
        self._last_duplicated = duplicated
        self.last_processed_core_ticks = processed_core_ticks
        if track:
            result.activity = hwcounters.RunActivity(
                engine=self.engine_name,
                ticks=ticks,
                batch=batch,
                n_cores=self.n_cores,
                core_ids=self._core_ids,
                spikes=core_spikes.sum(axis=1),
                synaptic_events=core_events.sum(axis=1),
                router_hops=hop_lanes,
                dropped_spikes=drop_lanes,
                duplicated_spikes=dup_lanes,
                active_core_ticks=active_lanes,
                core_spikes=core_spikes,
                core_synaptic_events=core_events,
                spikes_per_tick=spikes_per_tick,
                cross_chip_hops=cross_lanes,
            )
        return result

    @staticmethod
    def _deposit(
        mailbox: Dict[int, np.ndarray],
        touched_by_tick: Dict[int, np.ndarray],
        box_shape: Tuple[int, int, int],
        due: int,
        dst_core: np.ndarray,
        lane_idx: np.ndarray,
        dst_axon: np.ndarray,
    ) -> None:
        """Scatter deliveries into the ``due`` slot, marking target cores."""
        slot = mailbox.get(due)
        if slot is None:
            slot = np.zeros(box_shape, dtype=bool)
            mailbox[due] = slot
            touched_by_tick[due] = np.zeros(box_shape[0], dtype=bool)
        slot[dst_core, lane_idx, dst_axon] = True
        touched_by_tick[due][dst_core] = True


__all__ = ["EventEngine"]
