"""Activity-proportional energy accounting.

Table 2 uses the nominal 16 uW/core figure, which folds typical activity
into a constant. The real chip's power splits into a static leakage
floor plus dynamic energy per active-neuron event and per synaptic event
(Cassidy et al. 2013 report ~26 pJ per synaptic event at 0.775 V; the
static floor dominates at low activity). This module exposes that split
so simulated workloads can be charged by their *measured* spike
activity, and calibrates the constants so that a typical-activity core
lands on the paper's 16 uW.
"""

from dataclasses import dataclass

import numpy as np

from repro.truenorth.power import CORE_POWER_WATTS, TICK_SECONDS
from repro.truenorth.simulator import SimulationResult

SYNAPTIC_EVENT_JOULES = 26e-12
"""Energy per synaptic event (~26 pJ, Cassidy et al. 2013)."""

SPIKE_EVENT_JOULES = 2.6e-10
"""Energy per neuron firing (integration + routing), ~10 synaptic events."""

TYPICAL_ACTIVE_SYNAPSES_PER_CORE_PER_TICK = 400.0
"""Calibration activity: with this many synaptic events per tick, a core
plus its firing neurons draws the nominal 16 uW."""

STATIC_CORE_WATTS = (
    CORE_POWER_WATTS
    - TYPICAL_ACTIVE_SYNAPSES_PER_CORE_PER_TICK * SYNAPTIC_EVENT_JOULES / TICK_SECONDS
    - (TYPICAL_ACTIVE_SYNAPSES_PER_CORE_PER_TICK / 100.0)
    * SPIKE_EVENT_JOULES
    / TICK_SECONDS
)
"""Static (leakage + clocking) power per core, the calibrated remainder."""


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy of one simulated run.

    Attributes:
        static_joules: leakage/clocking energy over the run's duration.
        dynamic_joules: spike- and synapse-event energy.
        total_joules: their sum.
        average_watts: total energy / duration.
    """

    static_joules: float
    dynamic_joules: float
    total_joules: float
    average_watts: float


def estimate_energy(
    result: SimulationResult,
    cores: int,
    synaptic_events: float = 0.0,
) -> EnergyEstimate:
    """Charge a simulation run for its activity.

    Args:
        result: the run (ticks and total spike count).
        cores: cores in the simulated system.
        synaptic_events: total synaptic events, when known; defaults to
            100 events per spike (a dense-crossbar heuristic).

    Returns:
        An :class:`EnergyEstimate`.
    """
    if cores < 0:
        raise ValueError(f"cores must be >= 0, got {cores}")
    if result.ticks <= 0:
        raise ValueError("the run must cover at least one tick")
    duration = result.ticks * TICK_SECONDS
    if synaptic_events <= 0.0:
        synaptic_events = 100.0 * result.total_spikes
    static = STATIC_CORE_WATTS * cores * duration
    dynamic = (
        result.total_spikes * SPIKE_EVENT_JOULES
        + synaptic_events * SYNAPTIC_EVENT_JOULES
    )
    total = static + dynamic
    return EnergyEstimate(
        static_joules=static,
        dynamic_joules=dynamic,
        total_joules=total,
        average_watts=total / duration,
    )


def activity_energy_joules(spikes, synaptic_events, ticks: int, cores: int):
    """Energy of one run lane from exact hardware counters.

    The per-lane formula behind per-request attribution: a lane occupies
    every core for ``ticks`` ticks, so it pays the full static floor
    plus its own dynamic spike and synaptic-event energy.

    Args:
        spikes: neuron firings — a scalar or a per-lane array.
        synaptic_events: synaptic events, broadcastable with ``spikes``.
        ticks: ticks the lane ran for (must be >= 1).
        cores: cores in the simulated system.

    Returns:
        Total joules, with the broadcast shape of the activity inputs
        (a numpy scalar for scalar inputs).
    """
    if ticks <= 0:
        raise ValueError(f"ticks must be >= 1, got {ticks}")
    if cores < 0:
        raise ValueError(f"cores must be >= 0, got {cores}")
    static = STATIC_CORE_WATTS * cores * ticks * TICK_SECONDS
    return (
        static
        + np.asarray(spikes, dtype=np.float64) * SPIKE_EVENT_JOULES
        + np.asarray(synaptic_events, dtype=np.float64) * SYNAPTIC_EVENT_JOULES
    )


def estimate_energy_from_activity(activity) -> EnergyEstimate:
    """Whole-run :class:`EnergyEstimate` from a hardware-counter ledger.

    Unlike :func:`estimate_energy`, nothing is heuristic here: the
    synaptic-event count is the measured one. Static energy is charged
    per lane (each lane is an independent occupation of the cores), and
    ``average_watts`` is the sustained draw over one lane's duration.

    Args:
        activity: a :class:`repro.obs.hwcounters.RunActivity`.
    """
    if activity.ticks <= 0:
        raise ValueError("the run must cover at least one tick")
    duration = activity.ticks * TICK_SECONDS
    static = STATIC_CORE_WATTS * activity.n_cores * duration * activity.batch
    dynamic = (
        float(activity.spikes.sum()) * SPIKE_EVENT_JOULES
        + float(activity.synaptic_events.sum()) * SYNAPTIC_EVENT_JOULES
    )
    total = static + dynamic
    return EnergyEstimate(
        static_joules=static,
        dynamic_joules=dynamic,
        total_joules=total,
        average_watts=total / (duration * activity.batch),
    )


def nominal_energy(cores: int, ticks: int) -> float:
    """The constant-power (Table 2) energy for comparison: 16 uW x time."""
    if cores < 0 or ticks < 0:
        raise ValueError("cores and ticks must be >= 0")
    return CORE_POWER_WATTS * cores * ticks * TICK_SECONDS


__all__ = [
    "EnergyEstimate",
    "SPIKE_EVENT_JOULES",
    "STATIC_CORE_WATTS",
    "SYNAPTIC_EVENT_JOULES",
    "activity_energy_joules",
    "estimate_energy",
    "estimate_energy_from_activity",
    "nominal_energy",
]
