"""TrueNorth power and capacity constants with deployment arithmetic.

Numbers come from the paper (Section 2.2): a core consumes ~16 uW and a
4096-core chip 66 mW at 0.8 V. :mod:`repro.power` builds the full Table 2
model on top of these primitives.
"""

import math

CORE_POWER_WATTS = 16e-6
"""Nominal power of one active neurosynaptic core (~16 uW)."""

CHIP_CORES = 4096
"""Cores per TrueNorth chip."""

CHIP_POWER_WATTS = 66e-3
"""Measured whole-chip power at 0.8 V (66 mW for 4096 cores)."""

CHIP_NEURONS = CHIP_CORES * 256
"""1M neurons per chip."""

CHIP_SYNAPSES = CHIP_CORES * 256 * 256
"""256M synapses per chip."""

TICK_SECONDS = 1e-3
"""Duration of one synchronisation tick (1 ms)."""


def chips_required(cores: int) -> int:
    """Whole chips needed to host ``cores`` cores.

    Args:
        cores: total core count of the deployed design.

    Returns:
        ``ceil(cores / 4096)``; zero for a zero-core design.
    """
    if cores < 0:
        raise ValueError(f"cores must be >= 0, got {cores}")
    return math.ceil(cores / CHIP_CORES)


def system_power_watts(cores: int, per_core: bool = True) -> float:
    """Estimated power for a design occupying ``cores`` cores.

    Args:
        cores: total core count.
        per_core: when ``True``, scale by active cores (16 uW each) — the
            paper's convention for partially filled chips; when ``False``,
            charge whole chips at 66 mW each.

    Returns:
        Power in watts.
    """
    if cores < 0:
        raise ValueError(f"cores must be >= 0, got {cores}")
    if per_core:
        return cores * CORE_POWER_WATTS
    return chips_required(cores) * CHIP_POWER_WATTS


__all__ = [
    "CHIP_CORES",
    "CHIP_NEURONS",
    "CHIP_POWER_WATTS",
    "CHIP_SYNAPSES",
    "CORE_POWER_WATTS",
    "TICK_SECONDS",
    "chips_required",
    "system_power_watts",
]
