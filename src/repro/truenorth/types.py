"""Architectural constants and per-neuron parameter records for TrueNorth."""

import enum
from dataclasses import dataclass
from typing import Tuple

CORE_AXONS = 256
"""Number of axons (input lines) per neurosynaptic core."""

CORE_NEURONS = 256
"""Number of neurons (output lines) per neurosynaptic core."""

NUM_AXON_TYPES = 4
"""Each axon carries one of four types; each neuron holds a 4-entry weight LUT."""

MAX_DELAY_TICKS = 15
"""Maximum programmable spike delivery delay in ticks."""

# The digital neuron stores its membrane potential in a bounded signed
# register; 20 bits slightly exceeds the real hardware but keeps saturation
# semantics observable in tests without ever mattering for valid programs.
POTENTIAL_MIN = -(2**19)
POTENTIAL_MAX = 2**19 - 1


class ResetMode(enum.Enum):
    """Post-fire membrane reset behaviour of the Cassidy digital neuron.

    Attributes:
        RESET: set the potential to the neuron's ``reset_potential``
            ("normal" reset).
        LINEAR: subtract the threshold from the potential, retaining any
            excess charge (used for counting/accumulating neurons).
        NONE: leave the potential unchanged after firing.
    """

    RESET = "reset"
    LINEAR = "linear"
    NONE = "none"


@dataclass(frozen=True)
class NeuronParameters:
    """Configuration of a single TrueNorth neuron.

    Attributes:
        weights: 4-entry synaptic weight look-up table, indexed by the
            incoming axon's type. Signed integers.
        threshold: positive firing threshold (alpha). The neuron fires when
            the membrane potential reaches or exceeds it.
        leak: signed leak added to the potential every tick.
        reset_mode: what happens to the potential after a fire.
        reset_potential: target potential for :attr:`ResetMode.RESET`.
        floor: negative floor (beta, stored as a non-negative magnitude);
            the potential saturates at ``-floor`` after each update.
        stochastic_threshold_bits: when positive, a uniform random value in
            ``[0, 2**bits - 1]`` is added to the threshold each tick,
            implementing the stochastic firing mode the paper mentions.
    """

    weights: Tuple[int, int, int, int] = (0, 0, 0, 0)
    threshold: int = 1
    leak: int = 0
    reset_mode: ResetMode = ResetMode.RESET
    reset_potential: int = 0
    floor: int = 0
    stochastic_threshold_bits: int = 0

    def __post_init__(self) -> None:
        if len(self.weights) != NUM_AXON_TYPES:
            raise ValueError(
                f"weights must have {NUM_AXON_TYPES} entries, got {len(self.weights)}"
            )
        if self.threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {self.threshold}")
        if self.floor < 0:
            raise ValueError(f"floor is a magnitude and must be >= 0, got {self.floor}")
        if self.stochastic_threshold_bits < 0:
            raise ValueError(
                "stochastic_threshold_bits must be >= 0, got "
                f"{self.stochastic_threshold_bits}"
            )


@dataclass(frozen=True)
class CoreAddress:
    """Identifies one core within a multi-core system."""

    core_id: int

    def __post_init__(self) -> None:
        if self.core_id < 0:
            raise ValueError(f"core_id must be >= 0, got {self.core_id}")


@dataclass(frozen=True)
class NeuronAddress:
    """Identifies one neuron (output line) within a system."""

    core_id: int
    neuron: int

    def __post_init__(self) -> None:
        if not 0 <= self.neuron < CORE_NEURONS:
            raise ValueError(f"neuron must be in [0, {CORE_NEURONS}), got {self.neuron}")


@dataclass(frozen=True)
class AxonAddress:
    """Identifies one axon (input line) within a system."""

    core_id: int
    axon: int

    def __post_init__(self) -> None:
        if not 0 <= self.axon < CORE_AXONS:
            raise ValueError(f"axon must be in [0, {CORE_AXONS}), got {self.axon}")


__all__ = [
    "AxonAddress",
    "CORE_AXONS",
    "CORE_NEURONS",
    "CoreAddress",
    "MAX_DELAY_TICKS",
    "NUM_AXON_TYPES",
    "NeuronAddress",
    "NeuronParameters",
    "POTENTIAL_MAX",
    "POTENTIAL_MIN",
    "ResetMode",
]
