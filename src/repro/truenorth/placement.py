"""Core-to-chip placement for multi-chip deployments.

Table 2's NApprox design needs ~650 chips; placement determines how many
routes cross chip boundaries — off-chip hops cost extra latency and
energy on the real interconnect. This module provides:

- :func:`sequential_placement` — cores packed in allocation order (the
  baseline a naive compiler produces);
- :func:`grouped_placement` — cores packed so that each corelet/module
  stays on one chip where possible (the deployment the paper's
  replicated cell modules imply);
- :class:`PlacementReport` — per-placement chip count and inter-chip
  route statistics.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.truenorth.power import CHIP_CORES
from repro.truenorth.system import NeurosynapticSystem


@dataclass(frozen=True)
class PlacementReport:
    """Outcome of placing a system onto chips.

    Attributes:
        assignment: ``core_id -> chip index``.
        chips: chips used.
        total_routes: routes in the system.
        inter_chip_routes: routes whose endpoints sit on different chips.
    """

    assignment: Dict[int, int]
    chips: int
    total_routes: int
    inter_chip_routes: int

    @property
    def inter_chip_fraction(self) -> float:
        """Share of routes crossing a chip boundary (0 when no routes)."""
        if self.total_routes == 0:
            return 0.0
        return self.inter_chip_routes / self.total_routes


def _audit(
    system: NeurosynapticSystem, assignment: Dict[int, int]
) -> PlacementReport:
    routes = system.router.routes
    crossing = sum(
        1
        for route in routes
        if assignment[route.src_core] != assignment[route.dst_core]
    )
    chips = len(set(assignment.values())) if assignment else 0
    return PlacementReport(
        assignment=dict(assignment),
        chips=chips,
        total_routes=len(routes),
        inter_chip_routes=crossing,
    )


def sequential_placement(
    system: NeurosynapticSystem, cores_per_chip: int = CHIP_CORES
) -> PlacementReport:
    """Pack cores onto chips in allocation order.

    Args:
        system: the system to place.
        cores_per_chip: chip capacity (4096 on TrueNorth).

    Returns:
        A :class:`PlacementReport`.
    """
    if cores_per_chip < 1:
        raise ValueError(f"cores_per_chip must be >= 1, got {cores_per_chip}")
    assignment = {
        core.core_id: index // cores_per_chip
        for index, core in enumerate(system.cores)
    }
    return _audit(system, assignment)


def grouped_placement(
    system: NeurosynapticSystem,
    groups: Sequence[Sequence[int]],
    cores_per_chip: int = CHIP_CORES,
) -> PlacementReport:
    """Pack cores group by group, never splitting a group across chips.

    Groups are typically corelet footprints (``BuiltCorelet.core_ids``):
    keeping a module's cores co-resident removes its internal routes from
    the chip-to-chip interconnect.

    Args:
        system: the system to place.
        groups: disjoint core-id groups; cores not covered by any group
            are appended as singleton groups.
        cores_per_chip: chip capacity.

    Returns:
        A :class:`PlacementReport`.

    Raises:
        ValueError: if a group exceeds one chip, or groups overlap.
    """
    if cores_per_chip < 1:
        raise ValueError(f"cores_per_chip must be >= 1, got {cores_per_chip}")
    seen: set = set()
    work: List[Tuple[int, ...]] = []
    for group in groups:
        ids = tuple(group)
        if len(ids) > cores_per_chip:
            raise ValueError(
                f"group of {len(ids)} cores exceeds chip capacity {cores_per_chip}"
            )
        overlap = seen.intersection(ids)
        if overlap:
            raise ValueError(f"cores {sorted(overlap)} appear in multiple groups")
        seen.update(ids)
        work.append(ids)
    for core in system.cores:
        if core.core_id not in seen:
            work.append((core.core_id,))

    assignment: Dict[int, int] = {}
    chip = 0
    used = 0
    for ids in work:
        if used + len(ids) > cores_per_chip:
            chip += 1
            used = 0
        for core_id in ids:
            assignment[core_id] = chip
        used += len(ids)
    return _audit(system, assignment)


@dataclass(frozen=True)
class ChipTopology:
    """A tree-routed AER fabric connecting chips (HiAER-style).

    Chips are leaves of a ``fanout``-ary routing tree; a spike crossing
    chips climbs to the lowest common ancestor and back down, so the hop
    distance between two chips is twice the climb depth. On-chip delivery
    costs zero fabric hops.

    Attributes:
        fanout: children per routing node (4 models a quad-tree fabric).
    """

    fanout: int = 4

    def __post_init__(self) -> None:
        if self.fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {self.fanout}")

    def hops_between(self, chip_a: int, chip_b: int) -> int:
        """Fabric hops for a spike travelling ``chip_a -> chip_b``."""
        a, b = int(chip_a), int(chip_b)
        if a < 0 or b < 0:
            raise ValueError("chip indices must be >= 0")
        climb = 0
        while a != b:
            a //= self.fanout
            b //= self.fanout
            climb += 1
        return 2 * climb


def fabric_hop_cost(
    system: NeurosynapticSystem,
    report: PlacementReport,
    topology: Optional[ChipTopology] = None,
) -> int:
    """Total fabric hops if every route fired once under ``report``.

    A static cost model for comparing placements: dynamic per-spike
    accounting lives in the engines' RunActivity ledgers.
    """
    topology = topology or ChipTopology()
    return sum(
        topology.hops_between(
            report.assignment[route.src_core], report.assignment[route.dst_core]
        )
        for route in system.router.routes
    )


def apply_best_placement(
    system: NeurosynapticSystem,
    groups: Optional[Sequence[Sequence[int]]] = None,
    cores_per_chip: int = CHIP_CORES,
) -> PlacementReport:
    """Choose :func:`best_placement` and pin it onto the system.

    Engines compiled after this call account intra- vs cross-chip hops
    against the applied assignment.
    """
    report = best_placement(system, groups, cores_per_chip)
    system.apply_placement(report)
    return report


def best_placement(
    system: NeurosynapticSystem,
    groups: Optional[Sequence[Sequence[int]]] = None,
    cores_per_chip: int = CHIP_CORES,
) -> PlacementReport:
    """The better of sequential and grouped placement by crossing count."""
    sequential = sequential_placement(system, cores_per_chip)
    if groups is None:
        return sequential
    grouped = grouped_placement(system, groups, cores_per_chip)
    if grouped.inter_chip_routes <= sequential.inter_chip_routes:
        return grouped
    return sequential


__all__ = [
    "ChipTopology",
    "PlacementReport",
    "apply_best_placement",
    "best_placement",
    "fabric_hop_cost",
    "grouped_placement",
    "sequential_placement",
]
