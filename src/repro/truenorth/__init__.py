"""Tick-accurate simulator of the IBM TrueNorth neurosynaptic architecture.

The abstraction follows Section 2.2 of the paper and its references
(Akopyan et al. 2015; Cassidy et al. 2013; Merolla et al. 2014):

- a **neurosynaptic core** has 256 axons (inputs), 256 neurons (outputs)
  and a 256x256 binary crossbar; the effective synaptic weight of a
  crossbar point is the product of the 1-bit connectivity indicator and a
  per-neuron 4-entry look-up table indexed by the axon's type
  (:mod:`repro.truenorth.core`);
- each neuron integrates the inner product of the input spike vector and
  its effective weights into a membrane potential, applies a leak, and
  fires when the potential exceeds a threshold (plus a random number when
  stochastic mode is enabled) (:mod:`repro.truenorth.neuron`);
- a neuron's output connects to exactly one axon, on the same or another
  core, with a programmable delivery delay (:mod:`repro.truenorth.router`);
- a chip holds 4096 cores and consumes ~66 mW (~16 uW per core)
  (:mod:`repro.truenorth.power`).

:class:`repro.truenorth.system.NeurosynapticSystem` assembles cores,
routes, input ports, and output probes, and
:class:`repro.truenorth.simulator.Simulator` advances the whole system one
tick at a time.
"""

from repro.truenorth.types import (
    CORE_AXONS,
    CORE_NEURONS,
    NUM_AXON_TYPES,
    NeuronParameters,
    ResetMode,
)
from repro.truenorth.core import NeurosynapticCore
from repro.truenorth.router import Route, Router
from repro.truenorth.system import InputPort, NeurosynapticSystem, OutputProbe
from repro.truenorth.simulator import ENGINES, SimulationResult, Simulator
from repro.truenorth.engine import (
    BatchEngine,
    BatchSimulationResult,
    normalize_batch_inputs,
)
from repro.truenorth.power import (
    CHIP_CORES,
    CHIP_POWER_WATTS,
    CORE_POWER_WATTS,
    chips_required,
    system_power_watts,
)
from repro.truenorth.placement import (
    ChipTopology,
    PlacementReport,
    apply_best_placement,
    best_placement,
    fabric_hop_cost,
    grouped_placement,
    sequential_placement,
)
from repro.truenorth.energy import EnergyEstimate, estimate_energy, nominal_energy

__all__ = [
    "BatchEngine",
    "BatchSimulationResult",
    "CHIP_CORES",
    "CHIP_POWER_WATTS",
    "CORE_AXONS",
    "CORE_NEURONS",
    "CORE_POWER_WATTS",
    "ChipTopology",
    "ENGINES",
    "EnergyEstimate",
    "InputPort",
    "NUM_AXON_TYPES",
    "NeuronParameters",
    "NeurosynapticCore",
    "NeurosynapticSystem",
    "OutputProbe",
    "PlacementReport",
    "ResetMode",
    "Route",
    "Router",
    "apply_best_placement",
    "best_placement",
    "fabric_hop_cost",
    "grouped_placement",
    "sequential_placement",
    "SimulationResult",
    "Simulator",
    "chips_required",
    "estimate_energy",
    "normalize_batch_inputs",
    "nominal_energy",
    "system_power_watts",
]
