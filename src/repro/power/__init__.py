"""Deployment power and throughput: the analytical model behind Table 2.

The paper derives its power numbers from three ingredients, all
reproduced here:

- per-module throughput: one cell per spike window, at 1 ms per tick
  (15 cells/s for the 64-spike NApprox module, 31 at 32 spikes, 1000 at
  1 spike) — :mod:`repro.power.throughput`;
- the full-HD workload: 57,749 cells per frame at 26 fps, about 1.5M
  cells/s — :func:`repro.detection.pyramid.cells_per_second`;
- TrueNorth core power (~16 uW) and chip capacity (4,096 cores) —
  :mod:`repro.truenorth.power`.

:func:`repro.power.model.generate_table2` combines them into the paper's
Table 2 rows, alongside the FPGA baseline constants.
"""

from repro.power.model import (
    FPGA_LOGIC_WATTS,
    FPGA_SYSTEM_WATTS,
    PowerEstimate,
    fpga_estimate,
    generate_table2,
    napprox_estimate,
    parrot_estimate,
    power_ratio_parrot_vs_napprox,
)
from repro.power.throughput import (
    module_throughput_cells_per_second,
    modules_required,
    system_cell_rate,
)

__all__ = [
    "FPGA_LOGIC_WATTS",
    "FPGA_SYSTEM_WATTS",
    "PowerEstimate",
    "fpga_estimate",
    "generate_table2",
    "module_throughput_cells_per_second",
    "modules_required",
    "napprox_estimate",
    "parrot_estimate",
    "power_ratio_parrot_vs_napprox",
    "system_cell_rate",
]
