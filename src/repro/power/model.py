"""Table 2: estimated power of the HoG feature extraction approaches."""

from dataclasses import dataclass
from typing import List, Optional

from repro.coding.base import precision_bits
from repro.power.throughput import modules_required
from repro.truenorth.power import CORE_POWER_WATTS, chips_required

FPGA_LOGIC_WATTS = 1.12
"""Synthesised HoG accelerator logic on a Virtex-7 690T (paper, Sec. 5.2)."""

FPGA_SYSTEM_WATTS = 8.6
"""FPGA system power including clocking and CAPI peripherals."""

NAPPROX_CORES_PER_MODULE = 26
"""Cores per NApprox cell module as reported by the paper (this repo's
corelet implementation uses 22; pass it explicitly to compare)."""

PARROT_CORES_PER_MODULE = 8
"""Cores per Parrot cell module (8 cores per 8x8 cell, paper Sec. 5.1)."""


@dataclass(frozen=True)
class PowerEstimate:
    """One Table 2 row.

    Attributes:
        approach: description of the design point.
        signal_resolution: input representation label.
        cores_per_module: extraction cores per cell module (0 for FPGA).
        modules: parallel modules needed for full-HD at the frame rate.
        total_cores: cores across all modules.
        chips: whole TrueNorth chips required.
        power_watts: estimated power.
    """

    approach: str
    signal_resolution: str
    cores_per_module: int
    modules: int
    total_cores: int
    chips: int
    power_watts: float


def napprox_estimate(
    window: int = 64,
    cores_per_module: int = NAPPROX_CORES_PER_MODULE,
    frames_per_second: float = 26.0,
) -> PowerEstimate:
    """NApprox on TrueNorth at the given spike window.

    The paper's numbers: 64-spike (6-bit), 26 cores and 15 cells/s per
    module, ~650 chips and ~40 W for full-HD at 26 fps.
    """
    modules = modules_required(window, frames_per_second)
    total = modules * cores_per_module
    return PowerEstimate(
        approach="NApprox HoG on TrueNorth",
        signal_resolution=f"{window}-spike ({precision_bits(window)}-bit)",
        cores_per_module=cores_per_module,
        modules=modules,
        total_cores=total,
        chips=chips_required(total),
        power_watts=total * CORE_POWER_WATTS,
    )


def parrot_estimate(
    window: int = 32,
    cores_per_module: int = PARROT_CORES_PER_MODULE,
    frames_per_second: float = 26.0,
) -> PowerEstimate:
    """Parrot on TrueNorth at the given stochastic-coding window.

    The paper's numbers: 6.15 W at 32 spikes, 768 mW at 4, 192 mW at 1.
    """
    modules = modules_required(window, frames_per_second)
    total = modules * cores_per_module
    return PowerEstimate(
        approach="Parrot HoG on TrueNorth",
        signal_resolution=f"{window}-spike ({precision_bits(window)}-bit)",
        cores_per_module=cores_per_module,
        modules=modules,
        total_cores=total,
        chips=chips_required(total),
        power_watts=total * CORE_POWER_WATTS,
    )


def fpga_estimate(system: bool = False) -> PowerEstimate:
    """The FPGA baseline row (constants from the paper)."""
    return PowerEstimate(
        approach="High-precision HoG on FPGA",
        signal_resolution="16-bit" + (" (system)" if system else " (logic only)"),
        cores_per_module=0,
        modules=1,
        total_cores=0,
        chips=0,
        power_watts=FPGA_SYSTEM_WATTS if system else FPGA_LOGIC_WATTS,
    )


def generate_table2(
    napprox_cores: int = NAPPROX_CORES_PER_MODULE,
    parrot_cores: int = PARROT_CORES_PER_MODULE,
    parrot_windows: Optional[List[int]] = None,
    frames_per_second: float = 26.0,
) -> List[PowerEstimate]:
    """All rows of Table 2, in the paper's order.

    Args:
        napprox_cores: NApprox module size (26 in the paper, 22 measured
            from this repo's corelet).
        parrot_cores: Parrot module size (8 in the paper).
        parrot_windows: parrot spike windows (paper: 32, 4, 1).
        frames_per_second: deployment frame rate (26 in the paper).
    """
    windows = parrot_windows if parrot_windows is not None else [32, 4, 1]
    rows = [
        fpga_estimate(system=False),
        fpga_estimate(system=True),
        napprox_estimate(cores_per_module=napprox_cores, frames_per_second=frames_per_second),
    ]
    rows.extend(
        parrot_estimate(
            window=window,
            cores_per_module=parrot_cores,
            frames_per_second=frames_per_second,
        )
        for window in windows
    )
    return rows


def power_ratio_parrot_vs_napprox(parrot_window: int) -> float:
    """How many times less power Parrot uses than NApprox (6.5x-208x)."""
    napprox = napprox_estimate()
    parrot = parrot_estimate(window=parrot_window)
    return napprox.power_watts / parrot.power_watts


__all__ = [
    "FPGA_LOGIC_WATTS",
    "FPGA_SYSTEM_WATTS",
    "NAPPROX_CORES_PER_MODULE",
    "PARROT_CORES_PER_MODULE",
    "PowerEstimate",
    "fpga_estimate",
    "generate_table2",
    "napprox_estimate",
    "parrot_estimate",
    "power_ratio_parrot_vs_napprox",
]
