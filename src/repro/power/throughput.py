"""Cell throughput arithmetic."""

import math

from repro.detection.pyramid import cells_per_second, full_hd_cell_count
from repro.truenorth.power import TICK_SECONDS


def module_throughput_cells_per_second(window_ticks: int) -> int:
    """Cells per second of one pipelined extraction module.

    A module accepts a new cell every ``window_ticks`` ticks of 1 ms, so
    throughput is ``floor(1000 / window_ticks)`` — 15 cells/s at the
    64-spike representation, 31 at 32 spikes, 1000 at 1 spike, matching
    the paper's figures.

    Args:
        window_ticks: the spike window (N of the N-spike representation).
    """
    if window_ticks < 1:
        raise ValueError(f"window_ticks must be >= 1, got {window_ticks}")
    ticks_per_second = 1.0 / TICK_SECONDS
    return int(ticks_per_second // window_ticks)


def system_cell_rate(frames_per_second: float = 26.0) -> float:
    """Required cells/second for full-HD at the given frame rate (~1.5M)."""
    return cells_per_second(frames_per_second)


def modules_required(
    window_ticks: int, frames_per_second: float = 26.0
) -> int:
    """Extraction modules needed to sustain full-HD at the frame rate."""
    throughput = module_throughput_cells_per_second(window_ticks)
    if throughput == 0:
        raise ValueError(
            f"window of {window_ticks} ticks exceeds one second; no throughput"
        )
    return math.ceil(system_cell_rate(frames_per_second) / throughput)


__all__ = [
    "full_hd_cell_count",
    "module_throughput_cells_per_second",
    "modules_required",
    "system_cell_rate",
]
