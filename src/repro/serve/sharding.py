"""Multi-chip scale-out: sharded worker processes behind the batcher.

A single :class:`~repro.serve.service.InferenceService` scores every
batch on the calling process's engines. This module scales the same
request surface across *worker processes*, one per simulated chip
assembly (DESIGN.md §14)::

    submit() ── cache? ──> HashRing ──> shard queue ──> MicroBatcher
        │          │      (model_id,        │               │
        │          hit     row key)         │          dispatcher thread
        │          │                        │               │
        │          │                     breaker         mp.Queue
        │          │                        │               │
        └─ Future <┴──── results, ledgers, energy ──── worker process

Design points:

- **Deterministic routing.** Requests are routed by the consistent hash
  of their content key (``content_key(model_id, row)``) over a replica
  ring, so equal rows always land on the same shard and the ring barely
  reshuffles when the shard count changes.
- **Bit-identical results.** Worker processes are forked *after* the
  model is constructed, so every shard scores with a copy-on-write
  snapshot of the exact same compiled model; which shard serves a row
  cannot change its score, cache key, ledger, or energy attribution.
- **Ledgers cross the process boundary.** Workers score inside a
  :func:`repro.obs.hwcounters.collect` scope and ship the raw
  :class:`~repro.obs.hwcounters.RunActivity` ledgers back with the
  results; the parent re-records them (registry counters, open
  ``collect`` scopes, cross-chip hop split, per-request energy) exactly
  as if the engines had run in-process.
- **Per-shard circuit breakers.** Each shard has its own
  :class:`~repro.serve.resilience.CircuitBreaker` on the service clock,
  so one persistently failing worker cools down without blocking the
  other shards.
- **Death is transient.** A worker that dies mid-batch is respawned
  with fresh queues and the batch is redispatched (bounded); only an
  exhausted redispatch budget surfaces
  :class:`~repro.errors.WorkerDiedError` to callers.
"""

import bisect
import hashlib
import multiprocessing
import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, List, Optional, Union

import numpy as np

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    QueueFullError,
    ServiceClosedError,
    TransientScorerError,
    WorkerDiedError,
)
from repro.obs import MetricsRegistry, hwcounters, span, trace_context
from repro.obs.flight import flight_recorder, new_trace_id
from repro.serve.batcher import BatchPolicy, MicroBatcher, ServeRequest
from repro.serve.cache import LruResultCache, content_key
from repro.serve.resilience import STATE_CODES, CircuitBreaker
from repro.serve.service import _resolve_batch_fn, attribute_batch_energy
from repro.serve.stats import ServiceStats


class HashRing:
    """Consistent hashing of content keys onto shard indices.

    Each shard owns ``replicas`` pseudo-random points on a 64-bit ring;
    a key maps to the shard owning the first point at or after the
    key's own hash. Replication keeps shard loads even, and adding or
    removing one shard only remaps the keys adjacent to its points —
    the property that keeps result caches warm across resizes.

    Args:
        shards: number of shards (>= 1).
        replicas: ring points per shard.
    """

    def __init__(self, shards: int, replicas: int = 64) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        self.shards = shards
        self.replicas = replicas
        points = []
        for shard in range(shards):
            for replica in range(replicas):
                token = f"shard:{shard}:{replica}".encode()
                points.append((self._hash(token), shard))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [shard for _, shard in points]

    @staticmethod
    def _hash(data: bytes) -> int:
        return int.from_bytes(
            hashlib.blake2b(data, digest_size=8).digest(), "big"
        )

    def shard_for(self, key: bytes) -> int:
        """The shard index owning ``key`` (deterministic)."""
        position = bisect.bisect_left(self._points, self._hash(key))
        if position == len(self._points):
            position = 0
        return self._owners[position]


def _worker_main(shard_index, model, in_queue, out_queue):
    """Score batches for one shard inside a forked worker process.

    Protocol: dispatch messages are ``(batch_id, matrix, telemetry,
    trace_ids, parent_span_id, tracing_on)``; ``None`` means shut down.
    Replies are ``("ok", batch_id, results, runs, spans, metrics_delta)``
    with the raw activity ledgers, the span records completed since the
    previous reply, and the worker registry's state delta (the same
    ship-raw-merge-in-parent pattern the hw ledgers use), or
    ``("err", batch_id, type_name, message)`` — exceptions are
    flattened to strings so they pickle regardless of type.

    The worker's spans run under the parent's trace context: the
    scoring span names the parent dispatch span as its ``parent_id``
    and carries the batch's request trace ids, which is how
    :func:`repro.obs.traces.assemble_traces` stitches one tree per
    request across the process boundary.
    """
    # The fork inherits the parent's metrics registry mid-use (and its
    # lock state, if another parent thread held it at fork time); swap
    # in a fresh private registry before touching any instrument. The
    # fork also inherits the forking thread's span stack and the
    # parent's id pool: reset the one, namespace the other so ids
    # minted here can never collide with parent-minted ids.
    from repro.obs import metrics as obs_metrics
    from repro.obs import tracing
    from repro.obs.ids import configure_namespace

    configure_namespace(f"s{shard_index}")
    obs_metrics.set_registry(MetricsRegistry())
    tracing.reset_thread_state()
    tracing.trace_log().clear()
    registry = obs_metrics.get_registry()
    shipped_state = registry.export_state()
    shipped_seq = 0
    batch_fn = _resolve_batch_fn(model)
    while True:
        message = in_queue.get()
        if message is None:
            return
        batch_id, matrix, telemetry, trace_ids, parent_span_id, tracing_on = message
        hwcounters.configure(telemetry)
        tracing.configure(tracing_on)
        try:
            with tracing.span(
                "serve.shard.worker.score",
                registry=registry,
                parent_id=parent_span_id,
                shard=shard_index,
                trace_ids=trace_ids,
            ):
                with hwcounters.collect() as activity:
                    results = np.asarray(batch_fn(matrix))
            spans: list = []
            for seq, record in tracing.trace_log().records():
                if seq >= shipped_seq:
                    spans.append(record)
                    shipped_seq = seq + 1
            state = registry.export_state()
            delta = obs_metrics.diff_states(state, shipped_state)
            shipped_state = state
            out_queue.put(
                ("ok", batch_id, results, list(activity.runs), spans, delta)
            )
        except Exception as exc:  # flatten: arbitrary types may not pickle
            out_queue.put(("err", batch_id, type(exc).__name__, str(exc)))


class _Shard:
    """One worker process plus its parent-side plumbing."""

    def __init__(
        self,
        index: int,
        model,
        context,
        queue_capacity: int,
        policy: BatchPolicy,
        on_expired,
        clock: Callable[[], float],
        breaker: Optional[CircuitBreaker],
    ) -> None:
        self.index = index
        self.model = model
        self.context = context
        self.requests: "queue.Queue[ServeRequest]" = queue.Queue(
            queue_capacity
        )
        self.batcher = MicroBatcher(
            self.requests, policy, on_expired=on_expired, clock=clock
        )
        self.breaker = breaker
        self.process = None
        self.in_queue = None
        self.out_queue = None
        self.dispatcher: Optional[threading.Thread] = None
        self.batch_counter = 0

    def spawn(self) -> None:
        """Fork a worker with fresh queues (initial start and respawn).

        Fresh queues ensure a batch sent to a dead worker can never be
        double-delivered to its replacement — the replacement's queues
        start empty.
        """
        self.in_queue = self.context.Queue()
        self.out_queue = self.context.Queue()
        self.process = self.context.Process(
            target=_worker_main,
            args=(self.index, self.model, self.in_queue, self.out_queue),
            name=f"repro-shard-{self.index}",
            daemon=True,
        )
        self.process.start()

    def terminate(self) -> None:
        """Shut the worker down (sentinel first, then force)."""
        if self.process is None:
            return
        try:
            self.in_queue.put(None)
        except (OSError, ValueError):
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
        for mp_queue in (self.in_queue, self.out_queue):
            mp_queue.close()
            mp_queue.join_thread()


class ShardedInferenceService:
    """Serve one model from sharded worker processes (multi-chip tier).

    Drop-in for :class:`~repro.serve.service.InferenceService` where it
    matters — ``submit`` / ``score`` / ``score_many`` / ``stats`` /
    ``cache`` / context-manager lifecycle — but every batch is scored in
    one of ``workers`` forked processes, routed by consistent hash of
    the request's content key. Results, cache keys, activity ledgers,
    and per-request energy are bit-identical to in-process serving
    (``tests/test_serve_differential.py``).

    Args:
        model: a ``(n, f) -> (n, ...)`` callable or ``decision_function``
            scorer; constructed *before* the fork so all shards share
            one copy-on-write snapshot.
        workers: shard (worker process) count, >= 1.
        max_batch_size / max_wait_ms: per-shard micro-batching policy.
        queue_capacity: bounded depth of each shard's request queue.
        cache_capacity: shared parent-side LRU result cache; 0 disables
            (also disabled for ``cacheable = False`` models).
        model_id: stable identity for cache keys and routing; defaults
            to the model's ``model_id``.
        clock: monotonic time source shared by batchers, deadlines, and
            breakers (single-clock contract).
        registry: metrics registry behind :attr:`stats`.
        breaker_failure_threshold / breaker_reset_timeout_s: per-shard
            circuit-breaker tuning; ``breaker_failure_threshold=0``
            disables circuit breaking.
        ring_replicas: consistent-hash points per shard.
        result_timeout_s: per-poll wait on a worker reply before the
            liveness check runs (total in-flight wait is unbounded while
            the worker stays alive).
        max_redispatches: batches redispatched to a respawned worker
            before the batch fails with :class:`WorkerDiedError`.
    """

    def __init__(
        self,
        model,
        workers: int = 2,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        queue_capacity: int = 256,
        cache_capacity: int = 4096,
        model_id: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
        registry: Optional[MetricsRegistry] = None,
        breaker_failure_threshold: int = 5,
        breaker_reset_timeout_s: float = 1.0,
        ring_replicas: int = 64,
        result_timeout_s: float = 1.0,
        max_redispatches: int = 1,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        if cache_capacity < 0:
            raise ConfigurationError(
                f"cache_capacity must be >= 0, got {cache_capacity}"
            )
        if breaker_failure_threshold < 0:
            raise ConfigurationError(
                "breaker_failure_threshold must be >= 0, got "
                f"{breaker_failure_threshold}"
            )
        if result_timeout_s <= 0:
            raise ConfigurationError(
                f"result_timeout_s must be > 0, got {result_timeout_s}"
            )
        if max_redispatches < 0:
            raise ConfigurationError(
                f"max_redispatches must be >= 0, got {max_redispatches}"
            )
        self.model = model
        self.model_id = (
            model_id
            if model_id is not None
            else getattr(model, "model_id", None)
            or f"{type(model).__name__}@{id(model):x}"
        )
        self.workers = workers
        self.policy = BatchPolicy(max_batch_size, max_wait_ms)
        self.stats = ServiceStats(registry=registry)
        self._clock = clock
        self.result_timeout_s = result_timeout_s
        self.max_redispatches = max_redispatches

        cacheable = bool(getattr(model, "cacheable", True))
        if cache_capacity > 0 and not cacheable:
            self.stats.count("cache_disabled")
            cache_capacity = 0
        self.cache = LruResultCache(cache_capacity) if cache_capacity else None

        self.ring = HashRing(workers, replicas=ring_replicas)
        # Forked workers inherit the already-compiled model; "fork" is
        # asserted rather than assumed so a non-fork platform fails
        # loudly instead of re-pickling the model per shard.
        self._context = multiprocessing.get_context("fork")

        breaker_gauge = self.stats.registry.gauge(
            "serve_breaker_open_shards",
            help="shards whose circuit breaker is not closed",
        )
        self._breaker_gauge = breaker_gauge
        self._shards: List[_Shard] = []
        for index in range(workers):
            breaker = None
            if breaker_failure_threshold > 0:
                breaker = CircuitBreaker(
                    failure_threshold=breaker_failure_threshold,
                    reset_timeout_s=breaker_reset_timeout_s,
                    clock=clock,
                )
                breaker._on_state_change = (
                    lambda state, _shard=index: self._on_breaker_state(
                        _shard, state
                    )
                )
            self._shards.append(
                _Shard(
                    index,
                    model,
                    self._context,
                    queue_capacity,
                    self.policy,
                    self._expire,
                    clock,
                    breaker,
                )
            )
        self._queue_depth = lambda: sum(
            shard.requests.qsize() for shard in self._shards
        )
        self.stats.bind_queue(self._queue_depth)

        self._stop = threading.Event()
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def clock(self) -> Callable[[], float]:
        """The service's monotonic time source (single-clock contract)."""
        return self._clock

    def _on_breaker_state(self, shard_index: int, state: str) -> None:
        self._breaker_gauge.set(
            sum(
                1
                for shard in self._shards
                if shard.breaker is not None
                and STATE_CODES[shard.breaker._state] != 0
            )
        )
        if state == "open":
            self.stats.count("breaker_opens")
        flight_recorder().record(
            "shard_breaker", shard=shard_index, state=state
        )

    def start(self) -> "ShardedInferenceService":
        """Fork the worker processes and start the dispatchers."""
        if self._closed:
            raise ServiceClosedError("service already closed")
        if not self._started:
            self._started = True
            for shard in self._shards:
                shard.spawn()
                shard.dispatcher = threading.Thread(
                    target=self._dispatch_loop,
                    args=(shard,),
                    name=f"repro-dispatch-{shard.index}",
                    daemon=True,
                )
                shard.dispatcher.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop the dispatchers and shut every worker process down."""
        if self._closed:
            return
        self._closed = True
        if not drain:
            for shard in self._shards:
                while True:
                    try:
                        request = shard.requests.get_nowait()
                    except queue.Empty:
                        break
                    request.future.set_exception(
                        ServiceClosedError(
                            "service closed before the request ran"
                        )
                    )
                    self.stats.count("rejected_closed")
        self._stop.set()
        for shard in self._shards:
            if shard.dispatcher is not None and shard.dispatcher.is_alive():
                shard.dispatcher.join()
        for shard in self._shards:
            shard.terminate()

    def __enter__(self) -> "ShardedInferenceService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Submission path
    # ------------------------------------------------------------------
    def shard_of(self, features: np.ndarray) -> int:
        """The shard index a feature row routes to (deterministic)."""
        row = np.ascontiguousarray(features, dtype=np.float64)
        return self.ring.shard_for(content_key(self.model_id, row))

    def submit(
        self,
        features: np.ndarray,
        timeout_s: Optional[float] = None,
    ) -> "Future":
        """Queue one feature row for scoring on its home shard.

        Same contract as :meth:`InferenceService.submit`: returns a
        future; raises :class:`ServiceClosedError` /
        :class:`QueueFullError` / :class:`ValueError` at submission.
        """
        if self._closed or not self._started:
            raise ServiceClosedError(
                "service is closed" if self._closed else "service not started"
            )
        row = np.ascontiguousarray(features, dtype=np.float64)
        if row.ndim != 1:
            raise ValueError(f"features must be 1-D, got shape {row.shape}")
        self.stats.count("submitted")

        now = self._clock()
        request = ServeRequest(
            features=row,
            deadline=None if timeout_s is None else now + timeout_s,
            enqueued_at=now,
            trace_id=new_trace_id(),
        )
        # The content key is computed unconditionally: it doubles as the
        # routing key, so equal rows stay on one shard even with the
        # cache disabled.
        request.cache_key = content_key(self.model_id, row)
        recorder = flight_recorder()
        with trace_context(request.trace_id):
            with span("serve.submit", registry=self.stats.registry):
                if self.cache is not None:
                    hit, value = self.cache.lookup(request.cache_key)
                    if hit:
                        self.stats.count("cache_hits")
                        self.stats.count("completed")
                        self.stats.record_latency(self._clock() - now)
                        recorder.record("cache_hit", trace_id=request.trace_id)
                        request.future.set_result(value)
                        return request.future
                    self.stats.count("cache_misses")
                    recorder.record("cache_miss", trace_id=request.trace_id)

                shard = self._shards[self.ring.shard_for(request.cache_key)]
                try:
                    shard.requests.put_nowait(request)
                except queue.Full:
                    self.stats.count("rejected_queue_full")
                    recorder.record(
                        "queue_full",
                        trace_id=request.trace_id,
                        shard=shard.index,
                        capacity=shard.requests.maxsize,
                    )
                    raise QueueFullError(
                        f"shard {shard.index} queue is at capacity "
                        f"({shard.requests.maxsize})"
                    ) from None
                recorder.record(
                    "enqueue",
                    trace_id=request.trace_id,
                    shard=shard.index,
                    deadline_in_s=timeout_s,
                    queue_depth=shard.requests.qsize(),
                )
        return request.future

    def score(
        self, features: np.ndarray, timeout_s: Optional[float] = None
    ) -> Union[float, np.ndarray]:
        """Submit one row and block for its result."""
        return self.submit(features, timeout_s=timeout_s).result()

    def score_many(
        self,
        features: np.ndarray,
        timeout_s: Optional[float] = None,
    ) -> np.ndarray:
        """Submit every row of ``(n, f)`` and gather results in order."""
        matrix = np.asarray(features, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {matrix.shape}")
        futures = [self.submit(row, timeout_s=timeout_s) for row in matrix]
        return np.asarray([future.result() for future in futures])

    # ------------------------------------------------------------------
    # Dispatcher side (one thread per shard)
    # ------------------------------------------------------------------
    def _expire(self, request: ServeRequest) -> None:
        """Fail a request whose deadline lapsed while it queued."""
        self.stats.count("expired_before_batch")
        flight_recorder().record(
            "deadline_expired", trace_id=request.trace_id, phase="queued"
        )
        request.future.set_exception(
            DeadlineExceededError("deadline expired while queued")
        )

    def _dispatch_loop(self, shard: _Shard) -> None:
        while True:
            batch = shard.batcher.collect(block_s=0.02)
            if batch:
                # The execute span lives inside _run_batch so it can
                # carry the batch's trace ids and hand its span id to
                # the worker as the cross-process parent.
                self._run_batch(shard, batch)
            elif self._stop.is_set() and shard.requests.empty():
                return

    def _fail_batch(
        self, batch: List[ServeRequest], exc: BaseException
    ) -> None:
        self.stats.count("failed", len(batch))
        recorder = flight_recorder()
        error = f"{type(exc).__name__}: {exc}"
        for request in batch:
            recorder.record(
                "request_failed", trace_id=request.trace_id, error=error
            )
            request.future.set_exception(exc)

    def _round_trip(
        self,
        shard: _Shard,
        matrix: np.ndarray,
        trace_ids: List[str],
        parent_span_id: str,
    ):
        """One send/receive cycle with death detection and respawn.

        Returns the worker's reply tuple, or raises
        :class:`WorkerDiedError` once the redispatch budget is spent.
        Each redispatch goes to a freshly spawned worker over fresh
        queues, so a reply can only belong to the batch just sent.
        The trace context (request trace ids plus the dispatch span's
        id) rides along so worker spans join the request trees.
        """
        from repro.obs import tracing

        for attempt in range(self.max_redispatches + 1):
            shard.batch_counter += 1
            batch_id = shard.batch_counter
            self.stats.count("dispatches")
            if attempt > 0:
                self.stats.count("redispatches")
            shard.in_queue.put(
                (
                    batch_id,
                    matrix,
                    hwcounters.enabled(),
                    trace_ids,
                    parent_span_id,
                    tracing.enabled(),
                )
            )
            while True:
                try:
                    reply = shard.out_queue.get(
                        timeout=self.result_timeout_s
                    )
                except queue.Empty:
                    if shard.process.is_alive():
                        continue
                    break  # dead worker: respawn below
                if reply[1] == batch_id:
                    return reply
                # A reply from before a respawn cannot appear (fresh
                # queues), but guard against protocol bugs anyway.
                flight_recorder().record(
                    "shard_stale_reply", shard=shard.index, got=reply[1]
                )
            self.stats.count("worker_deaths")
            flight_recorder().record(
                "worker_death",
                shard=shard.index,
                exitcode=shard.process.exitcode,
                attempt=attempt,
            )
            shard.spawn()
            self.stats.count("worker_respawns")
        raise WorkerDiedError(
            f"shard {shard.index} worker died {self.max_redispatches + 1} "
            "times on one batch"
        )

    def _absorb_worker_telemetry(
        self, shard: _Shard, worker_spans, metrics_delta
    ) -> None:
        """Fold a worker reply's spans and metrics delta into the parent.

        Shipped span records are appended to the parent trace log (so
        assembled traces and ``python -m repro trace`` see the whole
        fleet) and the worker registry's delta is merged into the
        parent registry with a ``shard`` label — closing the gap where
        ``_worker_main``'s fresh private registry made worker-side
        series invisible to ``serve --workers N --metrics``.
        """
        from repro.obs import tracing

        if worker_spans:
            log = tracing.trace_log()
            for record in worker_spans:
                log.append(record)
        if metrics_delta and metrics_delta["series"]:
            self.stats.registry.merge_state(
                metrics_delta, extra_labels={"shard": str(shard.index)}
            )

    def _run_batch(self, shard: _Shard, batch: List[ServeRequest]) -> None:
        self.stats.record_batch(len(batch))
        self.stats.count("windows_scored", len(batch))
        recorder = flight_recorder()
        trace_ids = [request.trace_id for request in batch]
        recorder.record(
            "batch_form",
            size=len(batch),
            shard=shard.index,
            trace_ids=trace_ids,
        )
        matrix = np.stack([request.features for request in batch])

        token = None
        if shard.breaker is not None:
            try:
                token = shard.breaker.before_call()
            except CircuitOpenError as exc:
                self._fail_batch(batch, exc)
                return
        with span(
            "serve.shard.execute",
            registry=self.stats.registry,
            shard=shard.index,
            trace_ids=trace_ids,
        ) as execute_span:
            try:
                reply = self._round_trip(
                    shard,
                    matrix,
                    trace_ids,
                    execute_span.span_id if execute_span is not None else "",
                )
            except WorkerDiedError as exc:
                if shard.breaker is not None:
                    shard.breaker.record_failure(token)
                self._fail_batch(batch, exc)
                return

        if reply[0] == "err":
            _, _, type_name, message = reply
            if shard.breaker is not None:
                shard.breaker.record_failure(token)
            self._fail_batch(
                batch, TransientScorerError(f"{type_name}: {message}")
            )
            return
        if shard.breaker is not None:
            shard.breaker.record_success(token)
        _, _, results, runs, worker_spans, metrics_delta = reply
        self._absorb_worker_telemetry(shard, worker_spans, metrics_delta)
        results = np.asarray(results)
        if results.shape[0] != len(batch):
            self._fail_batch(
                batch,
                ConfigurationError(
                    f"worker returned {results.shape[0]} rows for a batch "
                    f"of {len(batch)}"
                ),
            )
            return

        # Re-record the workers' ledgers in the parent: the registry
        # counters, any open collect() scopes, and energy attribution
        # observe exactly what in-process serving would have recorded.
        with hwcounters.collect() as activity:
            for run in runs:
                hwcounters.record_run(run)
        hw_totals = activity.totals() if activity.runs else None
        if hw_totals is not None:
            self.stats.record_hw_totals(hw_totals, shard=shard.index)
        request_energy_nj = attribute_batch_energy(activity, len(batch))
        recorder.record(
            "score",
            size=len(batch),
            shard=shard.index,
            trace_ids=trace_ids,
            hw=hw_totals,
            energy_nj=(
                float(request_energy_nj.sum())
                if request_energy_nj is not None
                else None
            ),
        )

        now = self._clock()
        for index, (request, row) in enumerate(zip(batch, results)):
            value = float(row) if np.ndim(row) == 0 else np.array(row)
            if self.cache is not None and request.cache_key is not None:
                self.cache.put(request.cache_key, value)
            if request_energy_nj is not None:
                self.stats.record_energy(float(request_energy_nj[index]))
            if request.expired(now):
                self.stats.count("expired_after_batch")
                recorder.record(
                    "deadline_expired",
                    trace_id=request.trace_id,
                    phase="scored",
                )
                request.future.set_exception(
                    DeadlineExceededError("deadline expired during scoring")
                )
                continue
            self.stats.count("completed")
            self.stats.record_latency(now - request.enqueued_at)
            request.future.set_result(value)


__all__ = ["HashRing", "ShardedInferenceService"]
