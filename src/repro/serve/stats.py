"""Observability surface of the inference service.

:class:`ServiceStats` keeps the API the service, the load generator,
and ``benchmarks/bench_serve.py`` were written against, but since the
``repro.obs`` layer landed it is a thin facade over a
:class:`~repro.obs.MetricsRegistry` (DESIGN.md §10): every ``count()``
is a registry counter, the batch-size histogram and latency reservoir
are registry histograms, and the queue-depth gauge is a registry
callback gauge. By default each instance owns a private registry so
concurrent services (and tests) stay isolated; pass
``registry=repro.obs.get_registry()`` to publish into the process-wide
registry alongside the simulator and detection metrics — that is what
``python -m repro serve --metrics`` does.
"""

from typing import Callable, Dict, Optional

from repro.obs import MetricsRegistry, summarize_spans

#: Upper bounds for the request-latency histogram (seconds).
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Upper bounds for the batch-size histogram (requests per batch).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

#: Upper bounds for the per-request energy histogram (nanojoules).
ENERGY_BUCKETS_NJ = (
    1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8,
)


class ServiceStats:
    """Counters, batch-size histogram, and a latency reservoir.

    Args:
        latency_window: number of most-recent request latencies kept for
            the percentile estimates (a bounded reservoir so a
            long-running service never grows).
        registry: target metrics registry; ``None`` (default) creates a
            private one per instance.
        prefix: metric-name prefix inside the registry (counters become
            ``{prefix}_{name}_total`` and so on).
    """

    def __init__(
        self,
        latency_window: int = 8192,
        registry: Optional[MetricsRegistry] = None,
        prefix: str = "serve",
    ) -> None:
        if latency_window < 1:
            raise ValueError(
                f"latency_window must be >= 1, got {latency_window}"
            )
        self.registry = registry if registry is not None else MetricsRegistry()
        self.prefix = prefix
        self._latency = self.registry.histogram(
            f"{prefix}_latency_seconds",
            help="submit-to-result latency of completed requests",
            buckets=LATENCY_BUCKETS,
            reservoir=latency_window,
        )
        self._batches = self.registry.histogram(
            f"{prefix}_batch_size",
            help="requests per dispatched micro-batch",
            buckets=BATCH_SIZE_BUCKETS,
            reservoir=latency_window,
            track_values=True,
        )
        self._queue_gauge = self.registry.gauge(
            f"{prefix}_queue_depth",
            help="requests currently waiting in the bounded queue",
        )
        self._energy = self.registry.histogram(
            f"{prefix}_request_energy_nj",
            help="attributed simulated energy per scored request (nJ)",
            buckets=ENERGY_BUCKETS_NJ,
            reservoir=latency_window,
        )

    # ------------------------------------------------------------------
    def bind_queue(self, depth_fn: Callable[[], int]) -> None:
        """Register the live queue-depth gauge (called by the service)."""
        self._queue_gauge.bind(depth_fn)

    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.registry.counter(f"{self.prefix}_{name}_total").inc(n)

    def record_batch(self, size: int) -> None:
        """Record one dispatched batch of ``size`` requests."""
        self._batches.observe(size)

    def record_latency(self, seconds: float) -> None:
        """Record one completed request's submit-to-result latency."""
        self._latency.observe(seconds)

    def record_hw_totals(
        self, totals: Dict[str, int], shard: Optional[int] = None
    ) -> None:
        """Fold one batch's activity-ledger totals into the counters.

        Both serving tiers (in-process and sharded workers) call this
        with :meth:`~repro.obs.hwcounters.ActivityCollector.totals`, so
        router-hop traffic — including the intra- vs cross-chip split of
        a placed multi-chip model — is comparable across deployment
        modes from the same ``serve_hw_*`` counters. When ``shard`` is
        given the totals are additionally attributed to a
        ``{shard="<n>"}``-labeled series, so the parent exposition
        breaks hop traffic down per worker while the unlabeled fleet
        totals stay comparable with the in-process tier.
        """
        for key in ("router_hops", "cross_chip_hops", "intra_chip_hops"):
            value = int(totals.get(key, 0))
            if value:
                self.count(f"hw_{key}", value)
                if shard is not None:
                    self.registry.counter(
                        f"{self.prefix}_hw_{key}_total",
                        labels={"shard": str(shard)},
                    ).inc(value)

    def record_energy(self, nanojoules: float) -> None:
        """Attribute ``nanojoules`` of simulated energy to one request."""
        self._energy.observe(nanojoules)
        self.registry.counter(
            f"{self.prefix}_energy_nanojoules_total",
            help="total simulated energy attributed to scored requests (nJ)",
        ).inc(nanojoules)

    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never touched)."""
        metric = self.registry.get(f"{self.prefix}_{name}_total")
        return metric.value if metric is not None else 0

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting in the bounded queue."""
        value = self._queue_gauge.value
        return int(value) if value == value else 0  # NaN-safe

    @property
    def cache_hit_rate(self) -> float:
        """Cache hits / lookups, 0.0 before any lookup."""
        hits = self.counter("cache_hits")
        total = hits + self.counter("cache_misses")
        return hits / total if total else 0.0

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th latency percentile in seconds (0.0 when empty)."""
        return self._latency.percentile(q)

    def _short_counters(self) -> Dict[str, int]:
        """Registry counters mapped back to their legacy short names."""
        prefix = f"{self.prefix}_"
        out: Dict[str, int] = {}
        for name, value in self.registry.counters_with_prefix(prefix).items():
            short = name[len(prefix):]
            if short.endswith("_total"):
                short = short[: -len("_total")]
            out[short] = value
        return out

    def snapshot(self) -> Dict:
        """One JSON-ready view of every stat (for logs and benchmarks).

        The legacy keys (``counters``, ``queue_depth``,
        ``batch_size_histogram``, ``mean_batch_size``,
        ``cache_hit_rate``, ``latency_ms``) are unchanged; ``spans``
        (per-span wall-clock aggregates recorded into this stats
        object's registry) is additive.
        """
        counters = self._short_counters()
        batch_sizes = {
            int(size): count
            for size, count in sorted(self._batches.value_counts().items())
        }
        total_batched = sum(size * n for size, n in batch_sizes.items())
        n_batches = sum(batch_sizes.values())
        hits = counters.get("cache_hits", 0)
        lookups = hits + counters.get("cache_misses", 0)
        latency = self._latency.snapshot()
        energy = self._energy.snapshot()
        return {
            "counters": counters,
            "queue_depth": self.queue_depth,
            "batch_size_histogram": {str(k): v for k, v in batch_sizes.items()},
            "mean_batch_size": (total_batched / n_batches) if n_batches else 0.0,
            "cache_hit_rate": (hits / lookups) if lookups else 0.0,
            "latency_ms": {
                "count": latency["count"],
                "p50": latency["p50"] * 1e3,
                "p99": latency["p99"] * 1e3,
                "max": latency["max"] * 1e3,
            },
            "energy_nj": {
                "count": energy["count"],
                "mean": energy["mean"],
                "p50": energy["p50"],
                "p99": energy["p99"],
                "total": energy["sum"],
            },
            "spans": summarize_spans(self.registry),
        }


__all__ = [
    "BATCH_SIZE_BUCKETS",
    "ENERGY_BUCKETS_NJ",
    "LATENCY_BUCKETS",
    "ServiceStats",
]
