"""Thread-safe observability surface of the inference service.

One :class:`ServiceStats` instance is shared by the submission path, the
micro-batcher, and the worker pool. Everything is guarded by a single
lock — the counters are touched once per request or per batch, so
contention is negligible next to a simulator call.
"""

import threading
from collections import Counter, deque
from typing import Callable, Dict, Optional

import numpy as np


class ServiceStats:
    """Counters, batch-size histogram, and a latency reservoir.

    Args:
        latency_window: number of most-recent request latencies kept for
            the percentile estimates (a bounded reservoir so a
            long-running service never grows).
    """

    def __init__(self, latency_window: int = 8192) -> None:
        if latency_window < 1:
            raise ValueError(
                f"latency_window must be >= 1, got {latency_window}"
            )
        self._lock = threading.Lock()
        self._latencies = deque(maxlen=latency_window)
        self._batch_sizes = Counter()
        self._counters = Counter()
        self._queue_depth_fn: Optional[Callable[[], int]] = None

    # ------------------------------------------------------------------
    def bind_queue(self, depth_fn: Callable[[], int]) -> None:
        """Register the live queue-depth gauge (called by the service)."""
        self._queue_depth_fn = depth_fn

    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        with self._lock:
            self._counters[name] += n

    def record_batch(self, size: int) -> None:
        """Record one dispatched batch of ``size`` requests."""
        with self._lock:
            self._batch_sizes[size] += 1

    def record_latency(self, seconds: float) -> None:
        """Record one completed request's submit-to-result latency."""
        with self._lock:
            self._latencies.append(seconds)

    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never touched)."""
        with self._lock:
            return self._counters[name]

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting in the bounded queue."""
        return self._queue_depth_fn() if self._queue_depth_fn else 0

    @property
    def cache_hit_rate(self) -> float:
        """Cache hits / lookups, 0.0 before any lookup."""
        with self._lock:
            hits = self._counters["cache_hits"]
            total = hits + self._counters["cache_misses"]
        return hits / total if total else 0.0

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th latency percentile in seconds (0.0 when empty)."""
        with self._lock:
            if not self._latencies:
                return 0.0
            return float(np.percentile(np.asarray(self._latencies), q))

    def snapshot(self) -> Dict:
        """One JSON-ready view of every stat (for logs and benchmarks)."""
        with self._lock:
            counters = dict(self._counters)
            batch_sizes = dict(sorted(self._batch_sizes.items()))
            latencies = np.asarray(self._latencies, dtype=np.float64)
        total_batched = sum(size * n for size, n in batch_sizes.items())
        n_batches = sum(batch_sizes.values())
        hits = counters.get("cache_hits", 0)
        lookups = hits + counters.get("cache_misses", 0)
        return {
            "counters": counters,
            "queue_depth": self.queue_depth,
            "batch_size_histogram": {str(k): v for k, v in batch_sizes.items()},
            "mean_batch_size": (total_batched / n_batches) if n_batches else 0.0,
            "cache_hit_rate": (hits / lookups) if lookups else 0.0,
            "latency_ms": {
                "count": int(latencies.size),
                "p50": float(np.percentile(latencies, 50) * 1e3)
                if latencies.size
                else 0.0,
                "p99": float(np.percentile(latencies, 99) * 1e3)
                if latencies.size
                else 0.0,
                "max": float(latencies.max() * 1e3) if latencies.size else 0.0,
            },
        }


__all__ = ["ServiceStats"]
