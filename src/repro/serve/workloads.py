"""Reference serving workloads.

Two request shapes matter in this repo:

- **Classifier windows** — feature rows through a deployed
  :class:`~repro.detection.pipeline.TrueNorthBinaryScorer` (the
  detection hot path's inner call). Used by ``python -m repro serve``.
- **NApprox cells** — 10x10 pixel patches through the 22-core HoG cell
  module, the unit the paper's throughput numbers are denominated in.
  Used by ``benchmarks/bench_serve.py``.

Both are content-deterministic, so they compose with the result cache
and serve bit-identically to direct calls.
"""

import time
from typing import Callable, Optional, Tuple

import numpy as np

from repro.napprox.corelet_impl import NApproxCellRunner
from repro.utils.rng import RngLike, resolve_rng

_PATCH_PIXELS = 100


class NApproxCellModel:
    """Serve-compatible wrapper of the NApprox HoG cell module.

    Requests are flattened 10x10 patches (rows of 100 pixels in
    ``[0, 1]``); results are the 18-bin vote histograms. The module is
    fully deterministic (rate-coded input, no stochastic neurons), so
    equal patches always produce equal histograms and the result cache
    is sound.

    Args:
        window: spike window (data ticks) per patch.
        direction_scale: Q of the direction tables.
        magnitude_threshold: T of the magnitude neurons.
        engine: simulation engine, ``"batch"``, ``"event"``, or
            ``"reference"`` (all bit-identical).
        cores_per_chip: when set, the 22-core module is placed across
            simulated chips of this capacity, so served RunActivity
            ledgers carry intra- vs cross-chip hop splits. Histograms
            are unaffected (placement changes accounting only), so the
            ``model_id`` — and therefore every cache key — stays
            placement-independent.
    """

    cacheable = True

    def __init__(
        self,
        window: int = 32,
        direction_scale: int = 16,
        magnitude_threshold: int = 4,
        engine: str = "batch",
        cores_per_chip: Optional[int] = None,
    ) -> None:
        self.runner = NApproxCellRunner(
            window=window,
            direction_scale=direction_scale,
            magnitude_threshold=magnitude_threshold,
            engine=engine,
            cores_per_chip=cores_per_chip,
        )
        self.model_id = (
            f"napprox-cell-w{window}-q{direction_scale}-t{magnitude_threshold}"
        )

    def __call__(self, matrix: np.ndarray) -> np.ndarray:
        """Histogram a ``(n, 100)`` batch of flattened patches."""
        arr = np.asarray(matrix, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != _PATCH_PIXELS:
            raise ValueError(
                f"expected (n, {_PATCH_PIXELS}) flattened patches, got "
                f"{arr.shape}"
            )
        return self.runner.extract_batch(arr.reshape(-1, 10, 10))


class HardwarePacedModel:
    """Pace a model to the board's real-time tick cadence.

    A deployed TrueNorth chip advances one tick per millisecond of wall
    time regardless of host speed; a simulated batch finishes as fast
    as the CPU allows. This wrapper restores the hardware cadence: each
    batch call sleeps until at least ``min_batch_seconds`` have elapsed
    (e.g. ``window * TICK_SECONDS`` for a spike-window workload), which
    is how the worker-scaling benchmark models N chips serving in
    parallel — the pace dominates host compute, so worker processes
    overlap their board time and scale near-linearly even on one CPU.

    Results, cache keys, and activity ledgers are untouched: the wrapper
    only sleeps after delegating, so served outputs remain bit-identical
    to the unpaced model's.

    Args:
        model: the wrapped scorer (callable or ``decision_function``).
        min_batch_seconds: minimum wall time per batch call.
        clock: time source for the pacing measurement.
        sleep: sleep function (injectable for tests).
    """

    def __init__(
        self,
        model,
        min_batch_seconds: float,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if min_batch_seconds < 0:
            raise ValueError(
                f"min_batch_seconds must be >= 0, got {min_batch_seconds}"
            )
        self.model = model
        self.min_batch_seconds = min_batch_seconds
        self._clock = clock
        self._sleep = sleep
        inner = (
            model.decision_function
            if hasattr(model, "decision_function")
            else model
        )
        self._inner = inner

    @property
    def model_id(self):
        """The wrapped model's identity (pass-through)."""
        return getattr(self.model, "model_id", None)

    @property
    def cacheable(self) -> bool:
        """The wrapped model's cacheability (pass-through)."""
        return bool(getattr(self.model, "cacheable", True))

    def __call__(self, matrix: np.ndarray) -> np.ndarray:
        """Score a batch, then hold the call to the hardware cadence."""
        started = self._clock()
        result = self._inner(matrix)
        remaining = self.min_batch_seconds - (self._clock() - started)
        if remaining > 0:
            self._sleep(remaining)
        return result


def random_patch_rows(
    n: int, rng: RngLike = 0, duplicate_fraction: float = 0.0
) -> np.ndarray:
    """``(n, 100)`` random flattened patches in ``[0, 1]``.

    Args:
        n: number of request rows.
        rng: randomness source.
        duplicate_fraction: fraction of rows that repeat an earlier row
            (models the duplicate traffic the cache absorbs).
    """
    if not 0.0 <= duplicate_fraction <= 1.0:
        raise ValueError(
            f"duplicate_fraction must be in [0, 1], got {duplicate_fraction}"
        )
    generator = resolve_rng(rng)
    rows = generator.random((n, _PATCH_PIXELS))
    n_dup = int(n * duplicate_fraction)
    if n_dup and n > n_dup:
        sources = generator.integers(0, n - n_dup, size=n_dup)
        rows[n - n_dup :] = rows[sources]
    return rows


def demo_classifier_workload(
    n_requests: int,
    n_features: int = 8,
    hidden: int = 16,
    ticks: int = 8,
    engine: str = "batch",
    rng: RngLike = 0,
    duplicate_fraction: float = 0.0,
) -> Tuple[object, np.ndarray]:
    """A small TrueNorth classifier plus a synthetic request stream.

    Returns:
        ``(scorer, rows)`` — a content-coded
        :class:`~repro.detection.pipeline.TrueNorthBinaryScorer` and an
        ``(n_requests, n_features)`` matrix of windows in ``[0, 1]``.
    """
    from repro.detection.pipeline import TrueNorthBinaryScorer
    from repro.eedn.layers import ThresholdActivation, TrinaryDense
    from repro.eedn.network import EednNetwork

    network = EednNetwork(
        [
            TrinaryDense(n_features, hidden, rng=0),
            ThresholdActivation(0.0),
            TrinaryDense(hidden, 2, rng=1),
        ]
    )
    scorer = TrueNorthBinaryScorer(
        network, ticks=ticks, rng=0, engine=engine, coding="content"
    )
    generator = resolve_rng(rng)
    rows = generator.random((n_requests, n_features))
    n_dup = int(n_requests * duplicate_fraction)
    if n_dup and n_requests > n_dup:
        sources = generator.integers(0, n_requests - n_dup, size=n_dup)
        rows[n_requests - n_dup :] = rows[sources]
    return scorer, rows


__all__ = [
    "HardwarePacedModel",
    "NApproxCellModel",
    "demo_classifier_workload",
    "random_patch_rows",
]
