"""Content-addressed LRU result cache.

Repeated pyramid windows (flat sky, road, walls) and duplicate traffic
are common in detection workloads; a window that was already scored by
an identical model never needs to re-enter the simulator. Keys are a
digest of the model identity plus the exact feature bytes, so a hit is
only possible when the simulator would have produced the same result —
provided the model is deterministic per window (see
``TrueNorthBinaryScorer(coding="content")``).
"""

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Optional, Tuple

import numpy as np

_MISS = object()


def content_key(model_id: str, features: np.ndarray) -> bytes:
    """Cache key of one feature row under one model identity.

    Args:
        model_id: stable identity of the scoring model (weights, coding
            entropy, readout — see ``TrueNorthBinaryScorer.model_id``).
        features: the exact feature row the model would score.

    Returns:
        A 16-byte digest; equal keys imply equal scores for a
        deterministic model.
    """
    arr = np.ascontiguousarray(features, dtype=np.float64)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(model_id.encode())
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())
    return digest.digest()


class LruResultCache:
    """Bounded, thread-safe LRU mapping of content keys to results.

    Args:
        capacity: maximum number of cached results (>= 1).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[bytes, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, key: bytes) -> Tuple[bool, Optional[Any]]:
        """``(hit, value)`` for ``key``; a hit refreshes its recency."""
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is _MISS:
                self.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            return True, value

    def put(self, key: bytes, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry if full."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (hit/miss counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Hits / lookups, 0.0 before any lookup.

        Reads ``hits`` and ``misses`` under the cache lock: ``lookup``
        mutates them there, so an unlocked read could tear (see the
        threaded regression test in ``tests/test_serve_cache.py``).
        """
        with self._lock:
            hits = self.hits
            total = hits + self.misses
        return hits / total if total else 0.0


__all__ = ["LruResultCache", "content_key"]
