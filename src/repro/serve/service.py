"""The asynchronous micro-batching inference service.

Architecture (DESIGN.md §9)::

    submit() ── cache? ──> bounded queue ──> MicroBatcher ──> model
        │          │            │                │             │
        │          hit          Full ->          │       (n, f) batch
        │          │         QueueFullError      │             │
        └── Future <┴───────────────────────────────── results ┘

Concurrency model: callers submit from any thread; ``workers`` daemon
threads drain the shared bounded queue through a
:class:`~repro.serve.batcher.MicroBatcher` and resolve the per-request
futures. Backpressure is by rejection — a full queue raises
:class:`~repro.errors.QueueFullError` at submission time instead of
growing without bound — and every request may carry a deadline that is
enforced both before batching (an expired request never occupies a batch
slot) and after scoring (a result that arrives too late resolves to
:class:`~repro.errors.DeadlineExceededError`, though its value still
feeds the cache).
"""

import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    QueueFullError,
    ServiceClosedError,
    TransientScorerError,
)
from repro.obs import MetricsRegistry, observe_span, span, trace_context
from repro.obs import hwcounters
from repro.obs.flight import flight_recorder, new_trace_id
from repro.serve.batcher import BatchPolicy, MicroBatcher, ServeRequest
from repro.serve.cache import LruResultCache, content_key
from repro.serve.resilience import (
    STATE_CODES,
    CircuitBreaker,
    ResilientExecutor,
    RetryPolicy,
)
from repro.serve.stats import ServiceStats

BatchFunction = Callable[[np.ndarray], np.ndarray]


def _resolve_batch_fn(model) -> BatchFunction:
    """The ``(n, f) -> (n, ...)`` callable behind ``model``."""
    if callable(model) and not hasattr(model, "decision_function"):
        return model
    if hasattr(model, "decision_function"):
        return model.decision_function
    raise ConfigurationError(
        "model must be callable or expose decision_function, got "
        f"{type(model).__name__}"
    )


class InferenceService:
    """Coalesces concurrent scoring requests into engine batches.

    Args:
        model: a ``(n, f) -> (n, ...)`` callable, or any scorer exposing
            ``decision_function`` (e.g. ``TrueNorthBinaryScorer``).
        max_batch_size: micro-batch dispatch threshold.
        max_wait_ms: micro-batch coalescing wait.
        queue_capacity: bounded queue depth; submissions beyond it raise
            :class:`QueueFullError`.
        cache_capacity: LRU result-cache entries; 0 disables. The cache
            is also disabled (with a counted ``cache_disabled`` stat)
            when the model advertises ``cacheable = False`` — caching a
            model whose scores depend on call order would change
            results.
        workers: worker threads draining the queue.
        model_id: stable identity for cache keys; defaults to the
            model's ``model_id`` attribute, else a per-instance tag.
        clock: monotonic time source (injectable for tests).
        registry: metrics registry behind :attr:`stats` and the serve
            spans; ``None`` (default) keeps a private per-service
            registry, ``repro.obs.get_registry()`` publishes into the
            process-wide one (the ``--metrics`` CLI path).
        retry_policy: optional
            :class:`~repro.serve.resilience.RetryPolicy`; transient
            scorer faults (:class:`~repro.errors.TransientScorerError`)
            are retried with backoff before a batch is failed. Each
            retry is counted in ``serve_retries_total``.
        circuit_breaker: optional
            :class:`~repro.serve.resilience.CircuitBreaker` gating
            every scorer call; its state is exported on the
            ``serve_breaker_state`` gauge (0 closed / 1 half-open /
            2 open).
        degraded_value: when set, a batch that still fails after retry
            (or hits an open breaker) resolves every request with this
            fallback value instead of an exception — counted in
            ``serve_degraded_total`` and **never** written to the
            result cache. Other exception types still fail the batch.
        flight_dump_path: when set, the process flight recorder is
            dumped to this path automatically whenever a batch fails or
            the circuit breaker opens (and on demand via the
            ``serve --flight-dump`` CLI flag).
    """

    def __init__(
        self,
        model,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        queue_capacity: int = 256,
        cache_capacity: int = 4096,
        workers: int = 1,
        model_id: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
        registry: Optional[MetricsRegistry] = None,
        retry_policy: Optional[RetryPolicy] = None,
        circuit_breaker: Optional[CircuitBreaker] = None,
        degraded_value: Optional[float] = None,
        flight_dump_path: Optional[str] = None,
    ) -> None:
        if queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        if cache_capacity < 0:
            raise ConfigurationError(
                f"cache_capacity must be >= 0, got {cache_capacity}"
            )
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self._batch_fn = _resolve_batch_fn(model)
        self.model = model
        self.model_id = (
            model_id
            if model_id is not None
            else getattr(model, "model_id", None)
            or f"{type(model).__name__}@{id(model):x}"
        )
        self.policy = BatchPolicy(max_batch_size, max_wait_ms)
        self.stats = ServiceStats(registry=registry)
        self._clock = clock
        self._queue: "queue.Queue[ServeRequest]" = queue.Queue(queue_capacity)
        self.stats.bind_queue(self._queue.qsize)

        cacheable = bool(getattr(model, "cacheable", True))
        if cache_capacity > 0 and not cacheable:
            self.stats.count("cache_disabled")
            cache_capacity = 0
        self.cache = LruResultCache(cache_capacity) if cache_capacity else None

        self._degraded_value = degraded_value
        self.flight_dump_path = flight_dump_path
        self.circuit_breaker = circuit_breaker
        if circuit_breaker is not None:
            # One clock per service: a breaker still on the default
            # time source follows the injected clock, so cooldowns and
            # deadlines cannot drift apart under a test clock.
            if circuit_breaker._clock is time.monotonic and clock is not time.monotonic:
                circuit_breaker.bind_clock(clock)
            breaker_gauge = self.stats.registry.gauge(
                "serve_breaker_state",
                help="circuit breaker state (0 closed, 1 half-open, 2 open)",
            )

            def _on_breaker_state(state: str) -> None:
                breaker_gauge.set(STATE_CODES[state])
                if state == "open":
                    self._auto_flight_dump("breaker_open")

            circuit_breaker._on_state_change = _on_breaker_state
            breaker_gauge.set(STATE_CODES[circuit_breaker.state])
        self._executor = ResilientExecutor(
            self._batch_fn,
            retry=retry_policy,
            breaker=circuit_breaker,
            registry=self.stats.registry,
        )

        self._batcher = MicroBatcher(
            self._queue, self.policy, on_expired=self._expire, clock=clock
        )
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(workers)
        ]
        self._stop = threading.Event()
        self._started = False
        self._closed = False

    @property
    def clock(self) -> Callable[[], float]:
        """The service's monotonic time source (single-clock contract).

        Everything that compares against a service deadline — the
        batcher, the breaker cooldown, the load generator — must read
        this clock, never ``time.monotonic`` directly.
        """
        return self._clock

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InferenceService":
        """Start the worker pool (idempotent)."""
        if self._closed:
            raise ServiceClosedError("service already closed")
        if not self._started:
            self._started = True
            for worker in self._workers:
                worker.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop accepting requests and shut the worker pool down.

        Args:
            drain: process everything already queued before exiting
                (default). With ``drain=False`` still-queued requests
                are failed with :class:`ServiceClosedError`.
        """
        if self._closed:
            return
        self._closed = True
        if not drain:
            while True:
                try:
                    request = self._queue.get_nowait()
                except queue.Empty:
                    break
                request.future.set_exception(
                    ServiceClosedError("service closed before the request ran")
                )
                self.stats.count("rejected_closed")
        self._stop.set()
        for worker in self._workers:
            if worker.is_alive():
                worker.join()

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Submission path
    # ------------------------------------------------------------------
    def submit(
        self,
        features: np.ndarray,
        timeout_s: Optional[float] = None,
    ) -> "Future":
        """Queue one feature row for scoring.

        Args:
            features: 1-D feature row.
            timeout_s: optional deadline, measured from now; enforced
                before batching and again after scoring.

        Returns:
            A future resolving to the model's result row (a ``float``
            for scorers, an array for vector models).

        Raises:
            ServiceClosedError: the service is closed (or never
                started).
            QueueFullError: the bounded queue is at capacity.
            ValueError: ``features`` is not 1-D.
        """
        if self._closed or not self._started:
            raise ServiceClosedError(
                "service is closed" if self._closed else "service not started"
            )
        row = np.ascontiguousarray(features, dtype=np.float64)
        if row.ndim != 1:
            raise ValueError(f"features must be 1-D, got shape {row.shape}")
        self.stats.count("submitted")

        now = self._clock()
        request = ServeRequest(
            features=row,
            deadline=None if timeout_s is None else now + timeout_s,
            enqueued_at=now,
            trace_id=new_trace_id(),
        )
        recorder = flight_recorder()
        with trace_context(request.trace_id):
            with span("serve.submit", registry=self.stats.registry):
                if self.cache is not None:
                    request.cache_key = content_key(self.model_id, row)
                    hit, value = self.cache.lookup(request.cache_key)
                    if hit:
                        self.stats.count("cache_hits")
                        self.stats.count("completed")
                        self.stats.record_latency(self._clock() - now)
                        recorder.record("cache_hit", trace_id=request.trace_id)
                        request.future.set_result(value)
                        return request.future
                    self.stats.count("cache_misses")
                    recorder.record("cache_miss", trace_id=request.trace_id)
                try:
                    self._queue.put_nowait(request)
                except queue.Full:
                    self.stats.count("rejected_queue_full")
                    recorder.record(
                        "queue_full",
                        trace_id=request.trace_id,
                        capacity=self._queue.maxsize,
                    )
                    raise QueueFullError(
                        f"request queue is at capacity ({self._queue.maxsize})"
                    ) from None
                recorder.record(
                    "enqueue",
                    trace_id=request.trace_id,
                    deadline_in_s=timeout_s,
                    queue_depth=self._queue.qsize(),
                )
        return request.future

    def score(
        self, features: np.ndarray, timeout_s: Optional[float] = None
    ) -> Union[float, np.ndarray]:
        """Submit one row and block for its result."""
        return self.submit(features, timeout_s=timeout_s).result()

    def score_many(
        self,
        features: np.ndarray,
        timeout_s: Optional[float] = None,
    ) -> np.ndarray:
        """Submit every row of ``(n, f)`` and gather results in order."""
        matrix = np.asarray(features, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {matrix.shape}")
        futures = [self.submit(row, timeout_s=timeout_s) for row in matrix]
        return np.asarray([future.result() for future in futures])

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _expire(self, request: ServeRequest) -> None:
        """Fail a request whose deadline lapsed while it queued."""
        self.stats.count("expired_before_batch")
        flight_recorder().record(
            "deadline_expired", trace_id=request.trace_id, phase="queued"
        )
        request.future.set_exception(
            DeadlineExceededError("deadline expired while queued")
        )

    def _auto_flight_dump(self, reason: str) -> None:
        """Dump the flight recorder when an incident trigger fires."""
        if self.flight_dump_path is None:
            return
        try:
            flight_recorder().dump(self.flight_dump_path, reason=reason)
        except OSError:
            self.stats.count("flight_dump_errors")

    def _worker_loop(self) -> None:
        registry = self.stats.registry
        while True:
            drain_started = time.perf_counter()
            batch = self._batcher.collect(block_s=0.02)
            if batch:
                # Idle polls are not drains: only a non-empty collect is
                # recorded, so the drain span measures coalescing time.
                observe_span(
                    "serve.batcher.drain",
                    time.perf_counter() - drain_started,
                    registry=registry,
                )
                with span("serve.worker.execute", registry=registry):
                    self._run_batch(batch)
            elif self._stop.is_set() and self._queue.empty():
                return

    def _fail_batch(
        self, batch: List[ServeRequest], exc: BaseException, reason: str
    ) -> None:
        """Fail every request, narrate it, and trigger the auto-dump."""
        self.stats.count("failed", len(batch))
        recorder = flight_recorder()
        error = f"{type(exc).__name__}: {exc}"
        for request in batch:
            recorder.record(
                "request_failed", trace_id=request.trace_id, error=error
            )
            request.future.set_exception(exc)
        self._auto_flight_dump(reason)

    def _run_batch(self, batch: List[ServeRequest]) -> None:
        self.stats.record_batch(len(batch))
        self.stats.count("windows_scored", len(batch))
        recorder = flight_recorder()
        trace_ids = [request.trace_id for request in batch]
        recorder.record("batch_form", size=len(batch), trace_ids=trace_ids)
        matrix = np.stack([request.features for request in batch])
        try:
            with span(
                "serve.model.batch",
                registry=self.stats.registry,
                trace_ids=trace_ids,
            ):
                with hwcounters.collect() as activity:
                    results = np.asarray(self._executor(matrix))
        except (CircuitOpenError, TransientScorerError) as exc:
            # Retries exhausted or breaker open: degrade if configured.
            if self._degraded_value is not None:
                self.stats.count("degraded", len(batch))
                recorder.record(
                    "degraded",
                    size=len(batch),
                    trace_ids=trace_ids,
                    error=f"{type(exc).__name__}: {exc}",
                )
                now = self._clock()
                for request in batch:
                    # Degraded values never feed the cache — they are not
                    # the model's answer for this window.
                    if request.expired(now):
                        self.stats.count("expired_after_batch")
                        recorder.record(
                            "deadline_expired",
                            trace_id=request.trace_id,
                            phase="scored",
                        )
                        request.future.set_exception(
                            DeadlineExceededError(
                                "deadline expired during scoring"
                            )
                        )
                        continue
                    request.future.set_result(self._degraded_value)
                return
            self._fail_batch(batch, exc, "request_failed")
            return
        except Exception as exc:  # model failure fails the whole batch
            self._fail_batch(batch, exc, "request_failed")
            return
        if results.shape[0] != len(batch):
            error = ConfigurationError(
                f"model returned {results.shape[0]} rows for a batch of "
                f"{len(batch)}"
            )
            self._fail_batch(batch, error, "request_failed")
            return

        request_energy_nj = self._attribute_energy(activity, len(batch))
        hw_totals = activity.totals() if activity.runs else None
        if hw_totals is not None:
            self.stats.record_hw_totals(hw_totals)
        recorder.record(
            "score",
            size=len(batch),
            trace_ids=trace_ids,
            hw=hw_totals,
            energy_nj=(
                float(request_energy_nj.sum())
                if request_energy_nj is not None
                else None
            ),
        )

        now = self._clock()
        for index, (request, row) in enumerate(zip(batch, results)):
            value = float(row) if np.ndim(row) == 0 else np.array(row)
            if self.cache is not None and request.cache_key is not None:
                self.cache.put(request.cache_key, value)
            if request_energy_nj is not None:
                self.stats.record_energy(float(request_energy_nj[index]))
            if request.expired(now):
                self.stats.count("expired_after_batch")
                recorder.record(
                    "deadline_expired",
                    trace_id=request.trace_id,
                    phase="scored",
                )
                request.future.set_exception(
                    DeadlineExceededError("deadline expired during scoring")
                )
                continue
            self.stats.count("completed")
            self.stats.record_latency(now - request.enqueued_at)
            request.future.set_result(value)

    @staticmethod
    def _attribute_energy(
        collector: "hwcounters.ActivityCollector", batch_size: int
    ) -> Optional[np.ndarray]:
        return attribute_batch_energy(collector, batch_size)


def attribute_batch_energy(
    collector: "hwcounters.ActivityCollector", batch_size: int
) -> Optional[np.ndarray]:
    """Per-request energy (nJ) from a batch's activity ledgers.

    When the model ran one engine lane per request (the TrueNorth
    scorer path, chunked or not), lanes map to requests in order and
    each request is charged its own lane's measured energy. Otherwise
    the model's total measured energy is split evenly; a model that
    never touched an engine yields ``None``.

    Shared by the in-process service and the sharded worker tier so
    both attribute energy identically.
    """
    if not collector.runs:
        return None
    lane_energy = collector.lane_energy_joules() * 1e9
    if lane_energy.size == batch_size:
        return lane_energy
    return np.full(batch_size, float(lane_energy.sum()) / batch_size)


class ServiceBackedScorer:
    """Adapt an :class:`InferenceService` back to the scorer protocol.

    Lets a :class:`~repro.detection.pipeline.SlidingWindowDetector` (or
    anything else speaking ``decision_function``) transparently route
    its window chunks through the service — each row becomes one
    request, so windows from concurrent detectors coalesce into shared
    engine batches.

    Args:
        service: a started service whose model returns scalar scores.
        timeout_s: optional per-window deadline.
    """

    def __init__(
        self, service: InferenceService, timeout_s: Optional[float] = None
    ) -> None:
        self.service = service
        self.timeout_s = timeout_s

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Scores of a ``(n, f)`` matrix, served row by row."""
        matrix = np.asarray(features, dtype=np.float64)
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        if matrix.shape[0] == 0:
            return np.zeros(0)
        return self.service.score_many(matrix, timeout_s=self.timeout_s).astype(
            np.float64
        )


def sequential_baseline(
    model, rows: Sequence[np.ndarray]
) -> List[Union[float, np.ndarray]]:
    """Score ``rows`` one request at a time (the no-batching baseline).

    This is what a naive per-request deployment of the engine does; the
    serving benchmark reports its sustained rate against the service's.
    """
    batch_fn = _resolve_batch_fn(model)
    results = []
    for row in rows:
        out = np.asarray(batch_fn(np.asarray(row, dtype=np.float64)[None, :]))
        results.append(float(out[0]) if np.ndim(out[0]) == 0 else np.array(out[0]))
    return results


__all__ = [
    "BatchFunction",
    "InferenceService",
    "ServiceBackedScorer",
    "attribute_batch_energy",
    "sequential_baseline",
]
