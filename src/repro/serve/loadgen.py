"""Closed-loop load generation against an :class:`InferenceService`.

Shared by ``python -m repro serve``, ``benchmarks/bench_serve.py``, and
the CI serving smoke: ``concurrency`` client threads each submit a chunk
of windows, wait for every result (closed loop), then take the next
chunk. Every row is accounted for exactly once — completed, rejected by
backpressure, expired past its deadline, or failed — so "all requests
complete or are cleanly rejected" is a checkable property.
"""

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import DeadlineExceededError, QueueFullError
from repro.serve.service import InferenceService


@dataclass
class LoadReport:
    """Outcome of one closed-loop run.

    Attributes:
        requests: rows offered to the service.
        completed: rows that produced a result.
        rejected_queue_full: rows shed by backpressure at submission.
        deadline_expired: rows that timed out before or after batching.
        failed: rows that raised anything else (should stay 0).
        seconds: wall-clock duration of the run.
    """

    requests: int
    completed: int = 0
    rejected_queue_full: int = 0
    deadline_expired: int = 0
    failed: int = 0
    seconds: float = 0.0

    @property
    def requests_per_second(self) -> float:
        """Sustained completed-request rate."""
        return self.completed / self.seconds if self.seconds > 0 else 0.0

    @property
    def accounted(self) -> bool:
        """Every offered row completed or was cleanly rejected."""
        outcomes = (
            self.completed
            + self.rejected_queue_full
            + self.deadline_expired
        )
        return self.failed == 0 and outcomes == self.requests

    def as_dict(self) -> Dict:
        """JSON-ready view."""
        return {
            "requests": self.requests,
            "completed": self.completed,
            "rejected_queue_full": self.rejected_queue_full,
            "deadline_expired": self.deadline_expired,
            "failed": self.failed,
            "seconds": self.seconds,
            "requests_per_second": self.requests_per_second,
            "accounted": self.accounted,
        }


@dataclass
class _Tally:
    lock: threading.Lock = field(default_factory=threading.Lock)
    completed: int = 0
    rejected: int = 0
    expired: int = 0
    failed: int = 0


def closed_loop(
    service: InferenceService,
    rows: np.ndarray,
    concurrency: int,
    chunk_size: int = 1,
    timeout_s: Optional[float] = None,
    result_timeout_s: float = 60.0,
    clock: Optional[Callable[[], float]] = None,
) -> LoadReport:
    """Drive ``rows`` through ``service`` with closed-loop clients.

    Args:
        service: a started service.
        rows: ``(n, f)`` request rows, split into per-client chunks.
        concurrency: client threads.
        chunk_size: rows each client submits per round trip (a detector
            scoring ``chunk_size`` windows per classifier call behaves
            exactly like this).
        timeout_s: optional per-request deadline.
        result_timeout_s: safety limit when waiting on one future — a
            hang here counts the row as failed instead of deadlocking
            the load test.
        clock: time source for the report's ``seconds``; defaults to
            the service's own clock so durations and deadlines read one
            source (single-clock contract), falling back to
            ``time.perf_counter`` for services without a clock.

    Returns:
        A :class:`LoadReport`.
    """
    matrix = np.asarray(rows, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"rows must be 2-D, got shape {matrix.shape}")
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")

    work: "queue.SimpleQueue[np.ndarray]" = queue.SimpleQueue()
    for start in range(0, matrix.shape[0], chunk_size):
        work.put(matrix[start : start + chunk_size])
    tally = _Tally()

    def client() -> None:
        while True:
            try:
                chunk = work.get_nowait()
            except queue.Empty:
                return
            futures = []
            for row in chunk:
                try:
                    futures.append(service.submit(row, timeout_s=timeout_s))
                except QueueFullError:
                    with tally.lock:
                        tally.rejected += 1
            for future in futures:
                try:
                    future.result(timeout=result_timeout_s)
                    with tally.lock:
                        tally.completed += 1
                except DeadlineExceededError:
                    with tally.lock:
                        tally.expired += 1
                except Exception:
                    with tally.lock:
                        tally.failed += 1

    if clock is None:
        clock = getattr(service, "clock", None) or time.perf_counter
    threads = [
        threading.Thread(target=client, name=f"loadgen-{i}", daemon=True)
        for i in range(concurrency)
    ]
    started = clock()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = clock() - started

    return LoadReport(
        requests=matrix.shape[0],
        completed=tally.completed,
        rejected_queue_full=tally.rejected,
        deadline_expired=tally.expired,
        failed=tally.failed,
        seconds=seconds,
    )


__all__ = ["LoadReport", "closed_loop"]
