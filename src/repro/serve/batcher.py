"""Micro-batching: drain a bounded request queue into engine batches.

The PR-1 batch engine amortises its per-tick cost across lanes, so
serving throughput is maximised by coalescing concurrent single-window
requests into one ``decision_function`` call. The policy is the classic
two-knob micro-batcher: dispatch as soon as ``max_batch_size`` requests
are waiting, or when the oldest collected request has waited
``max_wait_ms`` — whichever comes first. Under light load a request pays
at most ``max_wait_ms`` of coalescing latency; under heavy load batches
fill instantly and the wait never triggers.
"""

import queue
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BatchPolicy:
    """The two-knob micro-batching policy.

    Attributes:
        max_batch_size: dispatch when this many requests are collected.
        max_wait_ms: dispatch when the first collected request has
            waited this long (0 disables coalescing: every drain takes
            whatever is immediately available).
    """

    max_batch_size: int = 32
    max_wait_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_ms < 0:
            raise ConfigurationError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )


@dataclass
class ServeRequest:
    """One in-flight scoring request.

    Attributes:
        features: the 1-D feature row to score.
        future: resolved with the result (or an error) by the worker.
        deadline: absolute :func:`time.monotonic` deadline, or ``None``.
        cache_key: content key when caching is enabled, else ``None``.
        enqueued_at: submission timestamp (for latency accounting).
        trace_id: flight-recorder trace id assigned at submission.
    """

    features: np.ndarray
    future: Future = field(default_factory=Future)
    deadline: Optional[float] = None
    cache_key: Optional[bytes] = None
    enqueued_at: float = 0.0
    trace_id: str = ""

    def expired(self, now: float) -> bool:
        """Whether the deadline has passed at time ``now``.

        The boundary is inclusive: a request checked exactly at its
        deadline is expired. "Deadlines enforced" means a result is only
        delivered strictly before the deadline — with the old strict
        ``>`` a request arriving at ``now == deadline`` was still
        scored, so ``timeout_s=0`` submissions could complete.
        """
        return self.deadline is not None and now >= self.deadline


class MicroBatcher:
    """Collects batches from a request queue under a :class:`BatchPolicy`.

    The batcher owns only the *collection* logic; executing the batch is
    the worker's job, so several workers can drain the same queue
    concurrently.

    Args:
        source: the bounded request queue.
        policy: batching policy.
        on_expired: called with each request whose deadline lapsed while
            it waited in the queue — such requests are dropped from the
            batch (they never occupy a batch slot).
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        source: "queue.Queue[ServeRequest]",
        policy: BatchPolicy,
        on_expired: Optional[Callable[[ServeRequest], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.source = source
        self.policy = policy
        self.on_expired = on_expired
        self.clock = clock

    def _admit(self, request: ServeRequest, batch: List[ServeRequest]) -> None:
        """Place ``request`` into ``batch`` or expire it on the spot."""
        if request.expired(self.clock()):
            if self.on_expired is not None:
                self.on_expired(request)
        else:
            batch.append(request)

    def collect(self, block_s: float = 0.05) -> List[ServeRequest]:
        """One batch of live requests (possibly empty).

        Blocks up to ``block_s`` for the first request; once one
        arrives, keeps draining until the batch is full or the policy's
        wait budget is spent. Expired requests are handed to
        ``on_expired`` and never occupy a slot.

        Args:
            block_s: how long to wait for a first request before giving
                up (keeps worker shutdown responsive).

        Returns:
            Between 0 and ``max_batch_size`` unexpired requests.
        """
        batch: List[ServeRequest] = []
        try:
            first = self.source.get(timeout=block_s) if block_s > 0 else (
                self.source.get_nowait()
            )
        except queue.Empty:
            return batch
        self._admit(first, batch)

        started = self.clock()
        budget = self.policy.max_wait_ms / 1e3
        while len(batch) < self.policy.max_batch_size:
            remaining = budget - (self.clock() - started)
            try:
                if remaining <= 0:
                    request = self.source.get_nowait()
                else:
                    request = self.source.get(timeout=remaining)
            except queue.Empty:
                break
            self._admit(request, batch)
        return batch


__all__ = ["BatchPolicy", "MicroBatcher", "ServeRequest"]
