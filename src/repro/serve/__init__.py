"""``repro.serve`` — micro-batching inference service.

Turns the PR-1 vectorized batch engine into something that can serve
concurrent detection traffic: an asynchronous service that coalesces
single-window scoring requests into engine batches
(:class:`MicroBatcher`), rejects overload instead of buffering it
(bounded queue + :class:`~repro.errors.QueueFullError`), enforces
per-request deadlines, short-circuits duplicate windows through a
content-addressed LRU cache, and exposes a stats surface for load
tests and operations.

Quick start::

    from repro.serve import InferenceService

    service = InferenceService(scorer, max_batch_size=32, max_wait_ms=2.0)
    with service:
        score = service.score(window_features, timeout_s=0.5)
"""

from repro.serve.batcher import BatchPolicy, MicroBatcher, ServeRequest
from repro.serve.cache import LruResultCache, content_key
from repro.serve.loadgen import LoadReport, closed_loop
from repro.serve.resilience import (
    CircuitBreaker,
    FlakyModel,
    ResilientExecutor,
    RetryPolicy,
)
from repro.serve.service import (
    InferenceService,
    ServiceBackedScorer,
    attribute_batch_energy,
    sequential_baseline,
)
from repro.serve.sharding import HashRing, ShardedInferenceService
from repro.serve.stats import ServiceStats
from repro.serve.workloads import (
    HardwarePacedModel,
    NApproxCellModel,
    demo_classifier_workload,
    random_patch_rows,
)

__all__ = [
    "BatchPolicy",
    "CircuitBreaker",
    "FlakyModel",
    "HardwarePacedModel",
    "HashRing",
    "InferenceService",
    "LoadReport",
    "LruResultCache",
    "MicroBatcher",
    "NApproxCellModel",
    "ResilientExecutor",
    "RetryPolicy",
    "ServeRequest",
    "ServiceBackedScorer",
    "ServiceStats",
    "ShardedInferenceService",
    "attribute_batch_energy",
    "closed_loop",
    "content_key",
    "demo_classifier_workload",
    "random_patch_rows",
    "sequential_baseline",
]
