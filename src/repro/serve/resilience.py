"""Resilience primitives for the serving layer (DESIGN.md §11).

Hardware faults surface to the service as scorer exceptions: a model
backed by a faulted TrueNorth substrate (or any flaky backend) raises
:class:`~repro.errors.TransientScorerError` for failures that are
expected to heal. This module supplies the three standard responses:

- :class:`RetryPolicy` — bounded retry with exponential backoff for
  transient failures;
- :class:`CircuitBreaker` — a per-model CLOSED / OPEN / HALF_OPEN state
  machine that stops hammering a persistently failing scorer and probes
  it again after a cooldown;
- :class:`ResilientExecutor` — composes both around a batch function and
  reports retries / breaker state through ``repro.obs`` metrics.

:class:`FlakyModel` wraps any scorer with deterministic, seedable
transient failures — the test double and demo workload for all of the
above (``python -m repro serve --flaky-rate 0.2 --retries 3``).
"""

import threading
import time
from typing import Callable, Optional, Tuple, Type

import numpy as np

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    TransientScorerError,
)
from repro.obs import MetricsRegistry
from repro.obs.flight import flight_recorder

#: Breaker states, in escalation order.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

#: Numeric encoding of breaker states for the ``serve_breaker_state``
#: gauge (0 = closed, 1 = half-open, 2 = open).
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class RetryPolicy:
    """Bounded retry with exponential backoff for transient failures.

    Args:
        max_attempts: total call attempts (1 = no retry).
        backoff_ms: sleep before the first retry, in milliseconds.
        multiplier: backoff growth factor per subsequent retry.
        retryable: exception types that qualify for retry; anything
            else propagates immediately.

    Raises:
        ConfigurationError: on non-positive attempts/backoff/multiplier.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        backoff_ms: float = 1.0,
        multiplier: float = 2.0,
        retryable: Tuple[Type[BaseException], ...] = (TransientScorerError,),
    ) -> None:
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        if backoff_ms < 0:
            raise ConfigurationError(
                f"backoff_ms must be >= 0, got {backoff_ms}"
            )
        if multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {multiplier}"
            )
        self.max_attempts = max_attempts
        self.backoff_ms = backoff_ms
        self.multiplier = multiplier
        self.retryable = tuple(retryable)

    def backoff_s(self, retry_index: int) -> float:
        """Sleep (seconds) before retry number ``retry_index`` (0-based)."""
        return (self.backoff_ms / 1e3) * (self.multiplier**retry_index)

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` qualifies for another attempt."""
        return isinstance(exc, self.retryable)


class CircuitBreaker:
    """Per-model CLOSED / OPEN / HALF_OPEN failure circuit.

    Thread-safe. Semantics:

    - **CLOSED** (healthy): calls pass; ``failure_threshold``
      *consecutive* failures trip the breaker to OPEN.
    - **OPEN** (cooling down): :meth:`before_call` raises
      :class:`~repro.errors.CircuitOpenError` without attempting the
      call, until ``reset_timeout_s`` has elapsed since the trip — then
      the breaker moves to HALF_OPEN.
    - **HALF_OPEN** (probing): one trial call is let through; success
      closes the circuit and clears the failure count, failure re-opens
      it for another full cooldown.

    :meth:`before_call` returns an admission *token* (the breaker's
    transition generation). Passing the token back to
    :meth:`record_success` / :meth:`record_failure` lets the breaker
    ignore outcomes of calls admitted before its last transition — a
    slow call admitted while CLOSED can no longer close the breaker
    behind a trip, or steal / release the half-open probe slot. Calling
    the record methods without a token applies the outcome
    unconditionally (the pre-token behaviour).

    State-change callbacks and flight-recorder events fire *outside*
    the internal lock, so a callback may safely read ``state`` or call
    back into the breaker without deadlocking.

    Args:
        failure_threshold: consecutive failures that trip the breaker.
        reset_timeout_s: cooldown before a trial call is allowed.
        clock: monotonic time source (injectable for tests).
        on_state_change: optional ``callback(new_state)`` fired on every
            transition (the service binds this to the breaker gauge).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        on_state_change: Optional[Callable[[str], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s < 0:
            raise ConfigurationError(
                f"reset_timeout_s must be >= 0, got {reset_timeout_s}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._on_state_change = on_state_change
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        self._generation = 0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Replace the breaker's time source (service clock injection).

        The service rebinds breakers still on the default
        ``time.monotonic`` to its own clock so every deadline and
        cooldown in one service reads a single source.
        """
        with self._lock:
            self._clock = clock

    @property
    def state(self) -> str:
        """Current state: ``"closed"``, ``"open"``, or ``"half_open"``.

        Reading the state promotes an OPEN breaker whose cooldown has
        elapsed to HALF_OPEN, matching what the next call would see.
        """
        events = []
        try:
            with self._lock:
                self._maybe_half_open(events)
                return self._state
        finally:
            self._fire(events)

    def _transition(self, state: str, events: list) -> None:
        """Move to ``state`` under the lock, deferring notifications.

        Each transition bumps the generation, invalidating tokens of
        calls admitted before it.
        """
        if state != self._state:
            previous = self._state
            self._state = state
            self._generation += 1
            events.append((previous, state, self._failures))

    def _fire(self, events: list) -> None:
        """Deliver deferred transition notifications (lock released)."""
        for previous, state, failures in events:
            flight_recorder().record(
                "breaker_transition",
                from_state=previous,
                to_state=state,
                failures=failures,
            )
            if self._on_state_change is not None:
                self._on_state_change(state)

    def _maybe_half_open(self, events: list) -> None:
        if (
            self._state == OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._transition(HALF_OPEN, events)
            self._probing = False

    def before_call(self) -> int:
        """Gate one call attempt.

        Returns:
            An admission token to pass back to :meth:`record_success` /
            :meth:`record_failure`; stale tokens (admitted before the
            breaker's last transition) make those calls no-ops.

        Raises:
            CircuitOpenError: the breaker is OPEN (cooldown running), or
                HALF_OPEN with its single trial slot already taken.
        """
        events = []
        try:
            with self._lock:
                self._maybe_half_open(events)
                if self._state == OPEN:
                    raise CircuitOpenError(
                        f"circuit open for {self.reset_timeout_s}s after "
                        f"{self._failures} consecutive failures"
                    )
                if self._state == HALF_OPEN:
                    if self._probing:
                        raise CircuitOpenError(
                            "circuit half-open; trial call already in flight"
                        )
                    self._probing = True
                return self._generation
        finally:
            self._fire(events)

    def _is_stale(self, token: Optional[int]) -> bool:
        return token is not None and token != self._generation

    def record_success(self, token: Optional[int] = None) -> None:
        """Report a successful call (closes a half-open circuit).

        Args:
            token: admission token from :meth:`before_call`; a stale
                token makes this a no-op, so a success from before the
                last trip cannot close the breaker without a genuine
                half-open probe.
        """
        events = []
        stale = False
        with self._lock:
            if self._is_stale(token):
                stale = True
            else:
                self._failures = 0
                self._probing = False
                self._transition(CLOSED, events)
        if stale:
            flight_recorder().record("breaker_stale_outcome", outcome="success")
        self._fire(events)

    def record_failure(self, token: Optional[int] = None) -> None:
        """Report a failed call (may trip the breaker).

        Args:
            token: admission token from :meth:`before_call`; a stale
                token makes this a no-op, so a late failure cannot
                release the half-open probe slot and admit a second
                probe.
        """
        events = []
        stale = False
        with self._lock:
            if self._is_stale(token):
                stale = True
            else:
                self._failures += 1
                self._probing = False
                if (
                    self._state == HALF_OPEN
                    or self._failures >= self.failure_threshold
                ):
                    self._opened_at = self._clock()
                    self._transition(OPEN, events)
        if stale:
            flight_recorder().record("breaker_stale_outcome", outcome="failure")
        self._fire(events)


class ResilientExecutor:
    """Retry + circuit-breaker wrapper around a batch function.

    Args:
        fn: the ``(n, f) -> (n, ...)`` batch callable to protect.
        retry: retry policy; ``None`` means a single attempt.
        breaker: circuit breaker; ``None`` disables circuit breaking.
        registry: metrics registry for the ``serve_retries_total``
            counter (``None`` disables metric reporting).
        sleep: sleep function (injectable for tests).
    """

    def __init__(
        self,
        fn: Callable[[np.ndarray], np.ndarray],
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        registry: Optional[MetricsRegistry] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._fn = fn
        self.retry = retry
        self.breaker = breaker
        self._registry = registry
        self._sleep = sleep

    def _count_retry(self, attempt: int, exc: BaseException) -> None:
        if self._registry is not None:
            self._registry.counter(
                "serve_retries_total",
                help="scorer calls retried after a transient fault",
            ).inc()
        flight_recorder().record(
            "retry", attempt=attempt, error=f"{type(exc).__name__}: {exc}"
        )

    def __call__(self, matrix: np.ndarray) -> np.ndarray:
        """Invoke the protected function with retry and circuit gating.

        Raises:
            CircuitOpenError: the breaker refused the call.
            Exception: the last attempt's failure once retries are
                exhausted (or immediately for non-retryable types).
        """
        attempts = self.retry.max_attempts if self.retry is not None else 1
        token = None
        for attempt in range(attempts):
            if self.breaker is not None:
                token = self.breaker.before_call()
            try:
                result = self._fn(matrix)
            except Exception as exc:
                if self.breaker is not None:
                    self.breaker.record_failure(token)
                last_attempt = attempt == attempts - 1
                if (
                    last_attempt
                    or self.retry is None
                    or not self.retry.is_retryable(exc)
                ):
                    raise
                self._count_retry(attempt, exc)
                delay = self.retry.backoff_s(attempt)
                if delay > 0:
                    self._sleep(delay)
                continue
            if self.breaker is not None:
                self.breaker.record_success(token)
            return result
        raise AssertionError("unreachable")  # pragma: no cover


class FlakyModel:
    """A scorer wrapper that injects deterministic transient faults.

    Every batch call consumes one draw from a seeded stream and raises
    :class:`~repro.errors.TransientScorerError` with probability
    ``failure_rate`` instead of scoring; otherwise it delegates to the
    wrapped model. ``model_id``/``cacheable`` pass through, so the
    service caches exactly as it would for the healthy model.

    Args:
        model: the wrapped scorer (callable or ``decision_function``).
        failure_rate: per-call failure probability in ``[0, 1]``.
        rng: seed for the failure stream.
    """

    def __init__(self, model, failure_rate: float, rng: int = 0) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ConfigurationError(
                f"failure_rate must be in [0, 1], got {failure_rate}"
            )
        self.model = model
        self.failure_rate = failure_rate
        self._rng = np.random.default_rng(rng)
        self._lock = threading.Lock()
        self.calls = 0
        self.failures = 0
        inner = model.decision_function if hasattr(model, "decision_function") else model
        self._inner = inner

    @property
    def model_id(self):
        """The wrapped model's identity (pass-through)."""
        return getattr(self.model, "model_id", None)

    @property
    def cacheable(self) -> bool:
        """The wrapped model's cacheability (pass-through)."""
        return bool(getattr(self.model, "cacheable", True))

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Score a batch, failing transiently at the configured rate."""
        with self._lock:
            self.calls += 1
            fail = self._rng.random() < self.failure_rate
            if fail:
                self.failures += 1
        if fail:
            raise TransientScorerError(
                f"injected transient fault (call {self.calls})"
            )
        return self._inner(features)


__all__ = [
    "CLOSED",
    "CircuitBreaker",
    "FlakyModel",
    "HALF_OPEN",
    "OPEN",
    "ResilientExecutor",
    "RetryPolicy",
    "STATE_CODES",
]
