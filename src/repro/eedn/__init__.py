"""Eedn: energy-efficient deep neuromorphic networks (Esser et al. 2016).

The paper trains its classifiers and the Parrot feature extractor with
Eedn, a TrueNorth-specific CNN-like framework whose differences from
conventional CNNs are (paper, Section 2.2):

- **trinary weights**: high-precision hidden (shadow) values are kept
  during training and mapped to {-1, 0, +1} for network operation
  (:func:`repro.eedn.layers.trinarize`);
- **spiking neurons** with a threshold activation function whose
  derivative is approximated for backpropagation (straight-through
  estimator, :class:`repro.eedn.layers.ThresholdActivation`);
- **filter/layer grouping** so every filter fits the 256x256 crossbar of
  a neurosynaptic core (:mod:`repro.eedn.grouping`).

:mod:`repro.eedn.network` assembles layers, :mod:`repro.eedn.train` runs
minibatch SGD with momentum, :mod:`repro.eedn.mapping` estimates the
TrueNorth core count of a trained network (the paper's resource metric)
and can deploy small dense networks onto the
:mod:`repro.truenorth` simulator, and :mod:`repro.eedn.spiking` evaluates
a trained network in spiking operation mode at a chosen input precision
(used for the Figure 6 sweep).
"""

from repro.eedn.layers import (
    ThresholdActivation,
    TrinaryConv2D,
    TrinaryDense,
    trinarize,
)
from repro.eedn.network import EednNetwork
from repro.eedn.train import TrainConfig, TrainResult, train_network
from repro.eedn.losses import hinge_loss, softmax_cross_entropy
from repro.eedn.grouping import group_channels, max_fan_in
from repro.eedn.mapping import core_count, deploy_dense_network
from repro.eedn.spiking import SpikingEvaluator

__all__ = [
    "EednNetwork",
    "SpikingEvaluator",
    "ThresholdActivation",
    "TrainConfig",
    "TrainResult",
    "TrinaryConv2D",
    "TrinaryDense",
    "core_count",
    "deploy_dense_network",
    "group_channels",
    "hinge_loss",
    "max_fan_in",
    "softmax_cross_entropy",
    "train_network",
    "trinarize",
]
