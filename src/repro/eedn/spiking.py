"""Spiking operation mode: evaluate a trained Eedn network on spike codes.

At deployment a TrueNorth-hosted Eedn network receives stochastic spike
trains and emits output spikes every tick; the paper's Figure 6 sweeps
the input representation from 32 spikes down to 1 spike per value. This
module evaluates a trained dense network under exactly those semantics,
in vectorised numpy (the 1:1-faithful but slow path is
:func:`repro.eedn.mapping.deploy_dense_network` + the core simulator).

Per tick, each dense+threshold stage computes
``a_t = (x_t @ W_trinary + round(bias) >= 0)`` on the binary spike vector
``x_t``; the final dense layer's spiking outputs are counted across the
window, giving rate-coded class confidences.
"""

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.coding.stochastic import StochasticEncoder
from repro.eedn.layers import Flatten, ThresholdActivation, TrinaryDense
from repro.eedn.network import EednNetwork
from repro.errors import ConfigurationError
from repro.utils.rng import RngLike, resolve_rng


@dataclass
class SpikingResult:
    """Spike-domain evaluation output.

    Attributes:
        counts: output spike counts, shape ``(batch, n_out)``.
        ticks: window length used.
    """

    counts: np.ndarray
    ticks: int

    @property
    def rates(self) -> np.ndarray:
        """Counts normalised by the window (confidences in [0, 1])."""
        return self.counts / float(self.ticks)

    def predictions(self) -> np.ndarray:
        """Argmax class per example."""
        return np.argmax(self.counts, axis=1)


class SpikingEvaluator:
    """Run a trained dense Eedn network in spiking mode.

    Hidden layers use hard thresholds (they were trained with hard
    spiking activations). The *output* layer optionally uses TrueNorth's
    stochastic threshold mode — fire iff ``z >= eta`` with ``eta`` drawn
    uniformly from ``[-half_range, half_range)`` each tick — which makes
    the output firing rate a piecewise-linear approximation of the
    sigmoid the network was trained with (the slope matches
    ``sigmoid(z / s)`` when ``half_range = 2 s``). This is the standard
    deployment recipe for rate-regression outputs; pass
    ``output_mode="hard"`` for argmax-only classifiers.

    Args:
        network: a dense/threshold stack (``Flatten`` layers allowed, any
            other layer type raises).
        ticks: spike window = the "N-spike representation" of Figure 6.
        rng: randomness for the stochastic input coding.
        output_mode: ``"stochastic"`` (default) or ``"hard"``.
        stochastic_half_range: half-width of the uniform threshold noise
            (8 matches the parrot trainer's sigmoid scale of 4).

    Raises:
        ConfigurationError: on unsupported layer types.
    """

    def __init__(
        self,
        network: EednNetwork,
        ticks: int,
        rng: RngLike = None,
        output_mode: str = "stochastic",
        stochastic_half_range: int = 8,
    ) -> None:
        if ticks < 1:
            raise ValueError(f"ticks must be >= 1, got {ticks}")
        if output_mode not in ("stochastic", "hard"):
            raise ValueError(
                f"output_mode must be 'stochastic' or 'hard', got {output_mode!r}"
            )
        if stochastic_half_range < 1:
            raise ValueError(
                f"stochastic_half_range must be >= 1, got {stochastic_half_range}"
            )
        self.ticks = ticks
        self.output_mode = output_mode
        self.stochastic_half_range = int(stochastic_half_range)
        self._rng = resolve_rng(rng)
        self._encoder = StochasticEncoder(ticks)
        self._stages: List[tuple] = []
        for layer in network.layers:
            if isinstance(layer, TrinaryDense):
                # Per-tick activations are integers (binary inputs times
                # trinary weights), so the float bias deploys EXACTLY as an
                # integer firing cutoff: z + b >= 0  <=>  z >= ceil(-b).
                self._stages.append(
                    (
                        layer.deployed_weights(),
                        np.ceil(-layer.bias).astype(np.int64),
                    )
                )
            elif isinstance(layer, (ThresholdActivation, Flatten)):
                continue
            else:
                raise ConfigurationError(
                    f"SpikingEvaluator supports dense stacks only, found "
                    f"{type(layer).__name__}"
                )
        if not self._stages:
            raise ConfigurationError("network has no dense layers")

    @property
    def n_in(self) -> int:
        """Input feature count."""
        return self._stages[0][0].shape[0]

    @property
    def n_out(self) -> int:
        """Output line count."""
        return self._stages[-1][0].shape[1]

    def evaluate(self, values: np.ndarray) -> SpikingResult:
        """Evaluate a batch of analog inputs through the spiking network.

        Args:
            values: ``(batch, n_in)`` inputs in ``[0, 1]``; stochastic
                spike coding is applied internally.

        Returns:
            A :class:`SpikingResult` with output spike counts.
        """
        x = np.asarray(values, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[1] != self.n_in:
            raise ValueError(f"expected {self.n_in} features, got {x.shape[1]}")
        batch = x.shape[0]
        counts = np.zeros((batch, self.n_out), dtype=np.int64)
        # Encode all examples: raster (ticks, batch, n_in).
        draws = self._rng.random((self.ticks, batch, self.n_in))
        raster = draws < x[None, :, :]
        last = len(self._stages) - 1
        for tick in range(self.ticks):
            activity = raster[tick].astype(np.float64)
            for index, (weights, cutoff) in enumerate(self._stages):
                z = activity @ weights
                threshold = cutoff
                if index == last and self.output_mode == "stochastic":
                    threshold = cutoff + self._rng.integers(
                        -self.stochastic_half_range,
                        self.stochastic_half_range,
                        size=z.shape,
                    )
                activity = (z >= threshold).astype(np.float64)
            counts += activity.astype(np.int64)
        return SpikingResult(counts=counts, ticks=self.ticks)

    def spike_rasters(self, values: np.ndarray) -> np.ndarray:
        """Output spike raster ``(ticks, batch, n_out)`` for inspection."""
        x = np.asarray(values, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        batch = x.shape[0]
        draws = self._rng.random((self.ticks, batch, self.n_in))
        raster_in = draws < x[None, :, :]
        out = np.zeros((self.ticks, batch, self.n_out), dtype=bool)
        last = len(self._stages) - 1
        for tick in range(self.ticks):
            activity = raster_in[tick].astype(np.float64)
            for index, (weights, cutoff) in enumerate(self._stages):
                z = activity @ weights
                threshold = cutoff
                if index == last and self.output_mode == "stochastic":
                    threshold = cutoff + self._rng.integers(
                        -self.stochastic_half_range,
                        self.stochastic_half_range,
                        size=z.shape,
                    )
                activity = (z >= threshold).astype(np.float64)
            out[tick] = activity.astype(bool)
        return out


__all__ = ["SpikingEvaluator", "SpikingResult"]
