"""Eedn layers: trinary-weight linear maps and threshold activations.

Shadow weights are float; the forward pass always uses their trinarised
projection, and gradients flow to the shadow values through a
straight-through estimator — exactly the "high precision hidden value
during training ... mapped to one of the trinary weights (-1, 0, 1)
during network operation" scheme the paper describes.
"""

from typing import Dict, Optional, Tuple

import numpy as np

from repro.utils.rng import RngLike, resolve_rng

TRINARY_FRACTION = 0.7
"""Shadow weights within ``TRINARY_FRACTION * mean|W|`` of zero map to 0."""

STE_WINDOW = 1.0
"""Half-width of the straight-through gradient window around the threshold."""


def trinarize(weights: np.ndarray) -> np.ndarray:
    """Map shadow weights to {-1, 0, +1}.

    The dead zone is ``TRINARY_FRACTION`` times the mean absolute shadow
    weight (per tensor), the standard ternary-connect heuristic: weights
    whose magnitude carries little signal become 0 (no synapse).

    Args:
        weights: float shadow weights, any shape.

    Returns:
        Array of the same shape with values in {-1.0, 0.0, +1.0}.
    """
    arr = np.asarray(weights, dtype=np.float64)
    delta = TRINARY_FRACTION * np.mean(np.abs(arr)) if arr.size else 0.0
    return np.sign(arr) * (np.abs(arr) > delta)


class Layer:
    """Base class: forward / backward with a parameter dictionary."""

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute outputs; cache what backward needs when ``training``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Propagate gradients; accumulate parameter gradients."""
        raise NotImplementedError

    def params(self) -> Dict[str, np.ndarray]:
        """Trainable parameter arrays by name (shared references)."""
        return {}

    def grads(self) -> Dict[str, np.ndarray]:
        """Gradient arrays matching :meth:`params`."""
        return {}


class ThresholdActivation(Layer):
    """Spiking threshold neuron: ``a = 1 if z >= threshold else 0``.

    The derivative of the step is approximated by a box around the
    threshold (straight-through estimator): gradients pass where
    ``|z - threshold| <= ste_window`` and are zero elsewhere.

    Args:
        threshold: firing threshold applied elementwise.
        ste_window: half-width of the gradient pass-band; scale it with
            the expected pre-activation spread (roughly the square root
            of the fan-in) or most units never receive gradient.
    """

    def __init__(self, threshold: float = 0.0, ste_window: float = STE_WINDOW) -> None:
        if ste_window <= 0:
            raise ValueError(f"ste_window must be positive, got {ste_window}")
        self.threshold = float(threshold)
        self.ste_window = float(ste_window)
        self._last_z: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Binary step output; caches pre-activations when ``training``."""
        z = np.asarray(inputs, dtype=np.float64)
        if training:
            self._last_z = z
        return (z >= self.threshold).astype(np.float64)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Straight-through gradient inside the ``ste_window`` band."""
        if self._last_z is None:
            raise RuntimeError("backward called before a training forward pass")
        window = np.abs(self._last_z - self.threshold) <= self.ste_window
        return grad_output * window


class TrinaryDense(Layer):
    """Fully connected layer with trinary deployment weights.

    Args:
        n_in: input features.
        n_out: output features.
        rng: initialisation randomness.
        weight_scale: std-dev of the Gaussian shadow initialisation;
            defaults to ``1/sqrt(n_in)``.
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        rng: RngLike = None,
        weight_scale: Optional[float] = None,
    ) -> None:
        if n_in < 1 or n_out < 1:
            raise ValueError(f"n_in and n_out must be >= 1, got {n_in}, {n_out}")
        generator = resolve_rng(rng)
        scale = weight_scale if weight_scale is not None else 1.0 / np.sqrt(n_in)
        self.n_in = n_in
        self.n_out = n_out
        self.weights = generator.normal(0.0, scale, size=(n_in, n_out))
        self.bias = np.zeros(n_out, dtype=np.float64)
        self._grad_w = np.zeros_like(self.weights)
        self._grad_b = np.zeros_like(self.bias)
        self._last_input: Optional[np.ndarray] = None

    def deployed_weights(self) -> np.ndarray:
        """The trinary weights used at inference time."""
        return trinarize(self.weights)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Affine transform under quantized (trinary) weights."""
        x = np.asarray(inputs, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[1] != self.n_in:
            raise ValueError(f"expected {self.n_in} features, got {x.shape[1]}")
        if training:
            self._last_input = x
        return x @ self.deployed_weights() + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Gradients w.r.t. inputs; accumulates weight/bias grads."""
        if self._last_input is None:
            raise RuntimeError("backward called before a training forward pass")
        grad = np.asarray(grad_output, dtype=np.float64)
        # Straight-through: d(trinarize(w))/dw ~= 1, so shadow weights get
        # the gradient of the trinary weights directly.
        self._grad_w[...] = self._last_input.T @ grad
        self._grad_b[...] = grad.sum(axis=0)
        return grad @ self.deployed_weights().T

    def params(self) -> Dict[str, np.ndarray]:
        """The dense layer's ``weights`` and ``bias`` arrays."""
        return {"weights": self.weights, "bias": self.bias}

    def grads(self) -> Dict[str, np.ndarray]:
        """Gradients matching :meth:`params` after a backward pass."""
        return {"weights": self._grad_w, "bias": self._grad_b}


class TrinaryConv2D(Layer):
    """Grouped 2-D convolution with trinary deployment weights.

    Channel grouping keeps each filter's fan-in within the 256-axon
    crossbar budget: with ``groups = g``, filter fan-in is
    ``(in_channels / g) * ksize**2`` (see :mod:`repro.eedn.grouping`).

    Input/output layout is ``(batch, channels, height, width)``.

    Args:
        in_channels: input channels (divisible by ``groups``).
        out_channels: output channels (divisible by ``groups``).
        ksize: square kernel edge.
        stride: spatial stride.
        padding: symmetric zero padding.
        groups: channel groups.
        rng: initialisation randomness.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        ksize: int = 3,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        rng: RngLike = None,
    ) -> None:
        if in_channels % groups or out_channels % groups:
            raise ValueError(
                f"channels ({in_channels}, {out_channels}) must divide groups {groups}"
            )
        if ksize < 1 or stride < 1 or padding < 0:
            raise ValueError("ksize/stride must be >= 1 and padding >= 0")
        generator = resolve_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.ksize = ksize
        self.stride = stride
        self.padding = padding
        self.groups = groups
        fan_in = (in_channels // groups) * ksize * ksize
        self.weights = generator.normal(
            0.0, 1.0 / np.sqrt(fan_in), size=(out_channels, in_channels // groups, ksize, ksize)
        )
        self.bias = np.zeros(out_channels, dtype=np.float64)
        self._grad_w = np.zeros_like(self.weights)
        self._grad_b = np.zeros_like(self.bias)
        self._cache: Optional[Tuple] = None

    def fan_in(self) -> int:
        """Synapses per output neuron (must fit 256 axons on TrueNorth)."""
        return (self.in_channels // self.groups) * self.ksize**2

    def deployed_weights(self) -> np.ndarray:
        """The trinary weights used at inference time."""
        return trinarize(self.weights)

    def _output_size(self, size: int) -> int:
        return (size + 2 * self.padding - self.ksize) // self.stride + 1

    def _im2col(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        k, s = self.ksize, self.stride
        out_h, out_w = self._output_size(height), self._output_size(width)
        if self.padding:
            x = np.pad(
                x,
                ((0, 0), (0, 0), (self.padding,) * 2, (self.padding,) * 2),
                mode="constant",
            )
        cols = np.empty((batch, channels, k, k, out_h, out_w), dtype=np.float64)
        for dy in range(k):
            y_end = dy + s * out_h
            for dx in range(k):
                x_end = dx + s * out_w
                cols[:, :, dy, dx] = x[:, :, dy:y_end:s, dx:x_end:s]
        return cols

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """NCHW convolution under quantized (trinary) kernels."""
        x = np.asarray(inputs, dtype=np.float64)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (batch, {self.in_channels}, H, W), got {x.shape}"
            )
        batch = x.shape[0]
        out_h = self._output_size(x.shape[2])
        out_w = self._output_size(x.shape[3])
        if out_h < 1 or out_w < 1:
            raise ValueError(f"input {x.shape[2:]} too small for kernel {self.ksize}")
        cols = self._im2col(x)  # (B, C, k, k, oh, ow)
        wt = self.deployed_weights()
        cin_g = self.in_channels // self.groups
        cout_g = self.out_channels // self.groups
        out = np.empty((batch, self.out_channels, out_h, out_w), dtype=np.float64)
        for g in range(self.groups):
            col_g = cols[:, g * cin_g : (g + 1) * cin_g].reshape(
                batch, cin_g * self.ksize**2, out_h * out_w
            )
            w_g = wt[g * cout_g : (g + 1) * cout_g].reshape(cout_g, -1)
            out[:, g * cout_g : (g + 1) * cout_g] = (
                np.einsum("of,bfp->bop", w_g, col_g)
            ).reshape(batch, cout_g, out_h, out_w)
        out += self.bias[None, :, None, None]
        if training:
            self._cache = (x.shape, cols, out_h, out_w)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Gradients w.r.t. inputs; accumulates kernel/bias grads."""
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        x_shape, cols, out_h, out_w = self._cache
        grad = np.asarray(grad_output, dtype=np.float64)
        batch = grad.shape[0]
        wt = self.deployed_weights()
        cin_g = self.in_channels // self.groups
        cout_g = self.out_channels // self.groups
        k, s = self.ksize, self.stride

        grad_cols = np.zeros_like(cols)
        for g in range(self.groups):
            col_g = cols[:, g * cin_g : (g + 1) * cin_g].reshape(
                batch, cin_g * k * k, out_h * out_w
            )
            grad_g = grad[:, g * cout_g : (g + 1) * cout_g].reshape(
                batch, cout_g, out_h * out_w
            )
            w_g = wt[g * cout_g : (g + 1) * cout_g].reshape(cout_g, -1)
            grad_w = np.einsum("bop,bfp->of", grad_g, col_g)
            self._grad_w[g * cout_g : (g + 1) * cout_g] = grad_w.reshape(
                cout_g, cin_g, k, k
            )
            grad_cols[:, g * cin_g : (g + 1) * cin_g] = np.einsum(
                "of,bop->bfp", w_g, grad_g
            ).reshape(batch, cin_g, k, k, out_h, out_w)
        self._grad_b[...] = grad.sum(axis=(0, 2, 3))

        # Scatter column gradients back onto the (padded) input.
        pad_h = x_shape[2] + 2 * self.padding
        pad_w = x_shape[3] + 2 * self.padding
        grad_x = np.zeros((batch, self.in_channels, pad_h, pad_w), dtype=np.float64)
        for dy in range(k):
            y_end = dy + s * out_h
            for dx in range(k):
                x_end = dx + s * out_w
                grad_x[:, :, dy:y_end:s, dx:x_end:s] += grad_cols[:, :, dy, dx]
        if self.padding:
            grad_x = grad_x[
                :, :, self.padding : -self.padding, self.padding : -self.padding
            ]
        return grad_x

    def params(self) -> Dict[str, np.ndarray]:
        """The convolution's ``weights`` and ``bias`` arrays."""
        return {"weights": self.weights, "bias": self.bias}

    def grads(self) -> Dict[str, np.ndarray]:
        """Gradients matching :meth:`params` after a backward pass."""
        return {"weights": self._grad_w, "bias": self._grad_b}


class Flatten(Layer):
    """Reshape ``(batch, ...)`` to ``(batch, features)``."""

    def __init__(self) -> None:
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Flatten trailing dimensions to one feature axis."""
        x = np.asarray(inputs, dtype=np.float64)
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Restore the cached input shape on the gradient."""
        if self._shape is None:
            raise RuntimeError("backward called before a training forward pass")
        return np.asarray(grad_output).reshape(self._shape)


class AveragePool2D(Layer):
    """Non-overlapping average pooling over ``(batch, C, H, W)``."""

    def __init__(self, size: int = 2) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.size = size
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Non-overlapping window-mean downsampling (NCHW)."""
        x = np.asarray(inputs, dtype=np.float64)
        b, c, h, w = x.shape
        s = self.size
        oh, ow = h // s, w // s
        trimmed = x[:, :, : oh * s, : ow * s]
        if training:
            self._shape = x.shape
        return trimmed.reshape(b, c, oh, s, ow, s).mean(axis=(3, 5))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Spread each output gradient evenly over its window."""
        if self._shape is None:
            raise RuntimeError("backward called before a training forward pass")
        b, c, h, w = self._shape
        s = self.size
        grad = np.asarray(grad_output, dtype=np.float64) / (s * s)
        up = np.repeat(np.repeat(grad, s, axis=2), s, axis=3)
        out = np.zeros(self._shape, dtype=np.float64)
        out[:, :, : up.shape[2], : up.shape[3]] = up
        return out


__all__ = [
    "AveragePool2D",
    "Flatten",
    "Layer",
    "STE_WINDOW",
    "TRINARY_FRACTION",
    "ThresholdActivation",
    "TrinaryConv2D",
    "TrinaryDense",
    "trinarize",
]
