"""EednNetwork: a sequential stack of Eedn layers."""

from typing import Iterable, List, Sequence

import numpy as np

from repro.eedn.layers import Layer


class EednNetwork:
    """A feed-forward stack of layers with joint forward/backward.

    Hidden layers are typically pairs of (TrinaryDense | TrinaryConv2D,
    ThresholdActivation); the final layer stays linear so losses see real
    logits (at deployment the output neurons' spike counts play this
    role — see :mod:`repro.eedn.spiking`).

    Args:
        layers: layer instances applied in order.
    """

    def __init__(self, layers: Sequence[Layer]) -> None:
        if not layers:
            raise ValueError("a network needs at least one layer")
        self.layers: List[Layer] = list(layers)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Run all layers; returns the final layer's output."""
        out = np.asarray(inputs, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate from the loss gradient; returns input gradient."""
        grad = np.asarray(grad_output, dtype=np.float64)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Argmax class per example (inference mode)."""
        logits = self.forward(inputs, training=False)
        return np.argmax(logits, axis=1)

    def parameters(self) -> Iterable:
        """Yield ``(layer_index, name, param, grad)`` tuples."""
        for index, layer in enumerate(self.layers):
            params = layer.params()
            grads = layer.grads()
            for name, param in params.items():
                yield index, name, param, grads[name]

    def parameter_count(self) -> int:
        """Total trainable parameter count."""
        return sum(param.size for _, _, param, _ in self.parameters())

    def __repr__(self) -> str:
        names = ", ".join(type(layer).__name__ for layer in self.layers)
        return f"EednNetwork([{names}])"


__all__ = ["EednNetwork"]
