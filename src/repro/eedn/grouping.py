"""Filter/layer grouping for the 256x256 crossbar constraint.

"Eedn partitions layers and the corresponding filters into multiple
groups to ensure the filters are sized such that they can be implemented
using the 256x256 TrueNorth core crossbars" (paper, Section 2.2). A
filter's fan-in — synapses per output neuron — must not exceed a core's
256 axons.
"""

from typing import List

from repro.eedn.layers import TrinaryConv2D, TrinaryDense
from repro.eedn.network import EednNetwork

CROSSBAR_FAN_IN = 256
"""Maximum synapses per neuron on one neurosynaptic core."""


def max_fan_in() -> int:
    """The crossbar fan-in bound (256 axons per core)."""
    return CROSSBAR_FAN_IN


def group_channels(in_channels: int, ksize: int, limit: int = CROSSBAR_FAN_IN) -> int:
    """Smallest group count making a conv filter fit the crossbar.

    Args:
        in_channels: layer input channels.
        ksize: square kernel edge.
        limit: fan-in bound (defaults to 256).

    Returns:
        The smallest divisor ``g`` of ``in_channels`` with
        ``(in_channels / g) * ksize**2 <= limit``.

    Raises:
        ValueError: when even ``g = in_channels`` (one channel per group)
            exceeds the bound, i.e. ``ksize**2 > limit``.
    """
    if in_channels < 1 or ksize < 1:
        raise ValueError("in_channels and ksize must be >= 1")
    for groups in range(1, in_channels + 1):
        if in_channels % groups:
            continue
        if (in_channels // groups) * ksize * ksize <= limit:
            return groups
    raise ValueError(
        f"kernel {ksize}x{ksize} alone exceeds the crossbar fan-in {limit}"
    )


def fan_in_violations(network: EednNetwork, limit: int = CROSSBAR_FAN_IN) -> List[str]:
    """Describe every layer whose per-neuron fan-in exceeds the crossbar.

    Dense layers with large fan-in are not errors — they deploy as trees
    of partial sums (see :func:`repro.eedn.mapping.core_count`) — but the
    report makes the extra resource cost visible.

    Args:
        network: the network to audit.
        limit: fan-in bound.

    Returns:
        Human-readable violation strings, empty when all layers fit.
    """
    problems = []
    for index, layer in enumerate(network.layers):
        if isinstance(layer, TrinaryConv2D) and layer.fan_in() > limit:
            problems.append(
                f"layer {index}: conv fan-in {layer.fan_in()} > {limit}; "
                f"raise groups (currently {layer.groups})"
            )
        elif isinstance(layer, TrinaryDense) and layer.n_in > limit:
            problems.append(
                f"layer {index}: dense fan-in {layer.n_in} > {limit}; "
                "deploys as a partial-sum tree"
            )
    return problems


__all__ = ["CROSSBAR_FAN_IN", "fan_in_violations", "group_channels", "max_fan_in"]
