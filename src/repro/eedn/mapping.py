"""Mapping Eedn networks onto TrueNorth: core counts and deployment.

Core count is the paper's resource currency (2864 cores for its
pedestrian classifier, 1024 for the Parrot extractor of a window, 3888
combined). :func:`core_count` estimates the cores a trained network
occupies under the standard mapping rules:

- a neuron's synapses must fit one core's 256 axons; trinary weights
  need a +1 and a -1 replica axon per input line in the worst case,
  halving the effective fan-in to 128 lines;
- TrueNorth has no weight sharing, so every convolution output location
  instantiates physical neurons;
- a neuron output targets exactly one axon, so inputs consumed by
  several cores require splitter cores (1 neuron per extra copy);
- dense layers wider than the fan-in bound deploy as partial-sum trees.

:func:`deploy_dense_network` goes further for small all-dense networks:
it emits an actual :class:`~repro.truenorth.system.NeurosynapticSystem`
so a trained Eedn network can run on the tick-level simulator.
"""

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.corelets.compiler import connect
from repro.corelets.library.weighted_sum import NeuronMode, WeightedSumCorelet
from repro.eedn.layers import (
    AveragePool2D,
    Flatten,
    ThresholdActivation,
    TrinaryConv2D,
    TrinaryDense,
)
from repro.eedn.network import EednNetwork
from repro.errors import CompilationError
from repro.truenorth.system import NeurosynapticSystem

_AXONS = 256
_NEURONS = 256
_EFFECTIVE_LINES = 128  # +1/-1 replica axons per input line


@dataclass(frozen=True)
class LayerCores:
    """Core usage of one layer.

    Attributes:
        layer_index: position in the network.
        description: human-readable layer summary.
        compute_cores: cores holding the layer's neurons.
        splitter_cores: cores copying inputs to multiple destinations.
    """

    layer_index: int
    description: str
    compute_cores: int
    splitter_cores: int

    @property
    def total(self) -> int:
        """All cores attributable to the layer."""
        return self.compute_cores + self.splitter_cores


def _dense_cores(n_in: int, n_out: int) -> Tuple[int, int]:
    """(compute, splitter) cores for a dense layer."""
    if n_in <= _EFFECTIVE_LINES:
        compute = math.ceil(n_out / _NEURONS)
        copies = compute  # every compute core needs its own input copy
        splitters = 0 if copies <= 1 else math.ceil(n_in * copies / _NEURONS)
        return compute, splitters
    # Partial-sum tree: chunks of 128 lines, each chunk computing partial
    # sums for every output, then accumulator cores adding the partials.
    chunks = math.ceil(n_in / _EFFECTIVE_LINES)
    partial_cores = chunks * math.ceil(n_out / _NEURONS)
    adder_cores = math.ceil(n_out * chunks / _EFFECTIVE_LINES / _NEURONS) + math.ceil(
        n_out / _NEURONS
    )
    copies = math.ceil(n_out / _NEURONS)
    splitters = 0 if copies <= 1 else math.ceil(n_in * copies / _NEURONS)
    return partial_cores + adder_cores, splitters


def _conv_cores(
    layer: TrinaryConv2D, input_hw: Tuple[int, int]
) -> Tuple[int, int, Tuple[int, int]]:
    """(compute, splitter, output_hw) for a conv layer."""
    out_h = (input_hw[0] + 2 * layer.padding - layer.ksize) // layer.stride + 1
    out_w = (input_hw[1] + 2 * layer.padding - layer.ksize) // layer.stride + 1
    if out_h < 1 or out_w < 1:
        raise ValueError(f"input {input_hw} too small for kernel {layer.ksize}")
    fan_in = layer.fan_in()
    if 2 * fan_in > _AXONS:
        raise CompilationError(
            f"conv fan-in {fan_in} needs {2 * fan_in} replica axons > {_AXONS}; "
            "increase groups"
        )
    cout_g = layer.out_channels // layer.groups
    locations_per_core = max(1, min(_AXONS // (2 * fan_in), _NEURONS // cout_g))
    locations = out_h * out_w
    compute = layer.groups * math.ceil(locations / locations_per_core)
    # Each input value feeds up to (ksize / stride)^2 receptive fields and
    # possibly several cores; approximate copies by the overlap factor.
    overlap = max(1, math.ceil(layer.ksize / layer.stride)) ** 2
    total_inputs = layer.in_channels * input_hw[0] * input_hw[1]
    splitters = 0 if overlap <= 1 else math.ceil(total_inputs * overlap / _NEURONS)
    return compute, splitters, (out_h, out_w)


def core_count(
    network: EednNetwork, input_shape: Tuple[int, ...]
) -> Tuple[int, List[LayerCores]]:
    """Estimate the TrueNorth cores a network occupies.

    Args:
        network: the (trained or untrained) network.
        input_shape: per-example input shape — ``(features,)`` for dense
            stacks or ``(channels, height, width)`` for conv stacks.

    Returns:
        ``(total_cores, per_layer_breakdown)``.
    """
    breakdown: List[LayerCores] = []
    if len(input_shape) == 3:
        channels, height, width = input_shape
        hw: Optional[Tuple[int, int]] = (height, width)
    else:
        hw = None

    for index, layer in enumerate(network.layers):
        if isinstance(layer, TrinaryConv2D):
            if hw is None:
                raise ValueError(f"layer {index}: conv after flatten is unsupported")
            compute, split, hw = _conv_cores(layer, hw)
            breakdown.append(
                LayerCores(
                    index,
                    f"conv {layer.in_channels}->{layer.out_channels} "
                    f"k{layer.ksize} g{layer.groups}",
                    compute,
                    split,
                )
            )
        elif isinstance(layer, TrinaryDense):
            compute, split = _dense_cores(layer.n_in, layer.n_out)
            hw = None
            breakdown.append(
                LayerCores(
                    index, f"dense {layer.n_in}->{layer.n_out}", compute, split
                )
            )
        elif isinstance(layer, AveragePool2D) and hw is not None:
            hw = (hw[0] // layer.size, hw[1] // layer.size)
            # Pooling deploys as OR/averaging neurons folded into the next
            # layer's cores under the standard mapping; no extra cores.
        elif isinstance(layer, (Flatten, ThresholdActivation)):
            # Thresholding is the neuron's native activation; flattening
            # is a wiring permutation. Free.
            if isinstance(layer, Flatten) and hw is not None:
                hw = None
        # Unknown layer types are conservatively ignored.
    total = sum(item.total for item in breakdown)
    return total, breakdown


def deploy_dense_network(
    network: EednNetwork, system: Optional[NeurosynapticSystem] = None
) -> "DeployedNetwork":
    """Build a small all-dense Eedn network as real neurosynaptic cores.

    Supported layer patterns: ``TrinaryDense`` optionally followed by
    ``ThresholdActivation`` (hidden layers), with the final dense layer's
    neurons emitted as pulse neurons whose spike counts are the logits.
    Biases are rounded into the firing threshold.

    Args:
        network: the trained network (dense/threshold layers only).
        system: target system; fresh one when omitted.

    Returns:
        A :class:`DeployedNetwork` exposing the input port and the output
        probe of the built system.

    Raises:
        CompilationError: on unsupported layer types or fan-ins beyond a
            single core's axons.
    """
    target = system if system is not None else NeurosynapticSystem("eedn")
    dense_layers: List[TrinaryDense] = []
    for layer in network.layers:
        if isinstance(layer, TrinaryDense):
            dense_layers.append(layer)
        elif isinstance(layer, (ThresholdActivation, Flatten)):
            continue
        else:
            raise CompilationError(
                f"deploy_dense_network supports dense/threshold stacks only, "
                f"found {type(layer).__name__}"
            )
    if not dense_layers:
        raise CompilationError("network has no dense layers")

    built_stages = []
    total_cores = 0
    for index, layer in enumerate(dense_layers):
        weights = layer.deployed_weights().astype(np.int64)
        # Spiking semantics per tick: fire iff sum(w x) >= ceil(-bias) —
        # exact for integer per-tick sums. A PULSE neuron with threshold 1
        # and leak 1 - cutoff encodes this memorylessly: the potential
        # after an update is s + 1 - cutoff, which reaches 1 exactly when
        # s >= cutoff, and any sub-threshold residue is <= 0 and wiped by
        # the floor.
        cutoffs = np.ceil(-layer.bias).astype(np.int64)
        corelet = WeightedSumCorelet(
            weights,
            threshold=1,
            mode=NeuronMode.PULSE,
            leak=[1 - int(c) for c in cutoffs],
            name=f"eedn{index}",
        )
        built = corelet.build(target)
        total_cores += built.core_count
        built_stages.append(built)

    for upstream, downstream in zip(built_stages, built_stages[1:]):
        connect(target, upstream, downstream)

    target.add_input_port("in", [[ref] for ref in built_stages[0].inputs])
    target.add_output_probe("out", list(built_stages[-1].outputs))
    return DeployedNetwork(target, total_cores, len(built_stages))


@dataclass
class DeployedNetwork:
    """A dense Eedn network realised as neurosynaptic cores.

    Attributes:
        system: the built system with ``"in"`` port and ``"out"`` probe.
        core_count: cores consumed.
        stages: number of dense stages deployed.
    """

    system: NeurosynapticSystem
    core_count: int
    stages: int


__all__ = ["DeployedNetwork", "LayerCores", "core_count", "deploy_dense_network"]
