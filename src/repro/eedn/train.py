"""Minibatch SGD-with-momentum training for Eedn networks."""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.eedn.losses import softmax_cross_entropy
from repro.eedn.network import EednNetwork
from repro.utils.rng import RngLike, resolve_rng

LossFn = Callable[[np.ndarray, np.ndarray], Tuple[float, np.ndarray]]


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters for :func:`train_network`.

    Attributes:
        epochs: passes over the training set.
        batch_size: minibatch size.
        learning_rate: initial SGD step size.
        momentum: classical momentum coefficient.
        lr_decay: multiplicative decay applied to the learning rate each
            epoch.
        weight_decay: L2 penalty on shadow weights.
        shuffle: reshuffle examples each epoch.
        logit_scale: temperature dividing the logits before the loss;
            values around the square root of the final fan-in stop the
            integer-scaled spiking logits from saturating the softmax.
        clip_weights: clip shadow weights to [-1, 1] after each update
            (the BinaryConnect convention; keeps the trinary dead-zone
            meaningful).
    """

    epochs: int = 20
    batch_size: int = 32
    learning_rate: float = 0.05
    momentum: float = 0.9
    lr_decay: float = 0.98
    weight_decay: float = 0.0
    shuffle: bool = True
    logit_scale: float = 1.0
    clip_weights: bool = True


@dataclass
class TrainResult:
    """Training history and terminal diagnostics.

    Attributes:
        losses: mean loss per epoch.
        train_accuracy: hard-label accuracy per epoch (only meaningful
            when integer labels were supplied).
        blind: ``True`` when the trained network makes blind decisions —
            (almost) every prediction is the same class, the convergence
            failure the paper reports for the Absorbed approach.
        majority_fraction: fraction of predictions in the most common
            class at the end of training.
    """

    losses: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    blind: bool = False
    majority_fraction: float = 0.0


def train_network(
    network: EednNetwork,
    inputs: np.ndarray,
    targets: np.ndarray,
    config: TrainConfig = TrainConfig(),
    loss_fn: LossFn = softmax_cross_entropy,
    rng: RngLike = None,
    blind_threshold: float = 0.98,
    augment_fn: Optional[
        Callable[[np.ndarray, np.random.Generator], np.ndarray]
    ] = None,
) -> TrainResult:
    """Train ``network`` in place.

    Args:
        network: the network to optimise.
        inputs: training examples, first axis = batch.
        targets: integer labels ``(n,)`` or soft targets ``(n, classes)``.
        config: hyperparameters.
        loss_fn: maps ``(outputs, batch_targets)`` to ``(loss, grad)``.
        rng: shuffling randomness.
        blind_threshold: majority-prediction fraction above which the
            result is flagged blind.
        augment_fn: optional per-batch input transform
            ``(batch, rng) -> batch`` applied before the forward pass —
            e.g. Bernoulli binarisation so the network trains on the
            single-tick statistics it will see in spiking deployment.

    Returns:
        A :class:`TrainResult`; the network itself holds the weights.
    """
    x = np.asarray(inputs, dtype=np.float64)
    t = np.asarray(targets)
    if x.shape[0] != t.shape[0]:
        raise ValueError(f"got {x.shape[0]} inputs but {t.shape[0]} targets")
    if x.shape[0] == 0:
        raise ValueError("training set is empty")
    generator = resolve_rng(rng)

    velocity: Dict[Tuple[int, str], np.ndarray] = {}
    result = TrainResult()
    hard_labels = t if t.ndim == 1 else np.argmax(t, axis=1)
    learning_rate = config.learning_rate

    for _ in range(config.epochs):
        order = (
            generator.permutation(x.shape[0])
            if config.shuffle
            else np.arange(x.shape[0])
        )
        epoch_loss = 0.0
        batches = 0
        for start in range(0, x.shape[0], config.batch_size):
            batch_idx = order[start : start + config.batch_size]
            batch_x = x[batch_idx]
            if augment_fn is not None:
                batch_x = augment_fn(batch_x, generator)
            outputs = network.forward(batch_x, training=True)
            loss, grad = loss_fn(outputs / config.logit_scale, t[batch_idx])
            network.backward(grad / config.logit_scale)
            epoch_loss += loss
            batches += 1
            for layer_index, name, param, grad_arr in network.parameters():
                key = (layer_index, name)
                if key not in velocity:
                    velocity[key] = np.zeros_like(param)
                update = grad_arr
                if config.weight_decay and name == "weights":
                    update = update + config.weight_decay * param
                velocity[key] = config.momentum * velocity[key] - learning_rate * update
                param += velocity[key]
                if config.clip_weights and name == "weights":
                    np.clip(param, -1.0, 1.0, out=param)
        result.losses.append(epoch_loss / max(batches, 1))
        predictions = network.predict(x)
        result.train_accuracy.append(float((predictions == hard_labels).mean()))
        learning_rate *= config.lr_decay

    final_predictions = network.predict(x)
    counts = np.bincount(final_predictions, minlength=2)
    result.majority_fraction = float(counts.max() / final_predictions.size)
    result.blind = result.majority_fraction >= blind_threshold
    return result


__all__ = ["TrainConfig", "TrainResult", "train_network"]
