"""Losses for Eedn training."""

from typing import Tuple

import numpy as np


def softmax_cross_entropy(
    logits: np.ndarray, targets: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean softmax cross-entropy with soft or hard targets.

    Args:
        logits: ``(batch, classes)`` raw scores.
        targets: either integer class labels ``(batch,)`` or a soft target
            distribution ``(batch, classes)`` (rows need not be one-hot —
            the Parrot trainer uses normalised HoG histograms as targets).

    Returns:
        ``(loss, grad)`` where ``grad`` is d loss / d logits, shape
        ``(batch, classes)``.
    """
    z = np.asarray(logits, dtype=np.float64)
    if z.ndim != 2:
        raise ValueError(f"logits must be (batch, classes), got {z.shape}")
    batch, classes = z.shape
    t = np.asarray(targets)
    if t.ndim == 1:
        if t.shape[0] != batch:
            raise ValueError(f"need {batch} labels, got {t.shape}")
        one_hot = np.zeros((batch, classes), dtype=np.float64)
        one_hot[np.arange(batch), t.astype(np.int64)] = 1.0
        t = one_hot
    elif t.shape != z.shape:
        raise ValueError(f"soft targets must match logits shape {z.shape}, got {t.shape}")

    shifted = z - z.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    loss = float(-(t * log_probs).sum() / batch)
    grad = (np.exp(log_probs) - t) / batch
    return loss, grad


def hinge_loss(scores: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean binary hinge loss for +-1 labels on a single score column.

    Args:
        scores: ``(batch,)`` or ``(batch, 1)`` real-valued margins.
        labels: ``(batch,)`` labels in {-1, +1}.

    Returns:
        ``(loss, grad)`` with ``grad`` shaped like ``scores``.
    """
    s = np.asarray(scores, dtype=np.float64)
    squeeze = s.ndim == 2
    flat = s.reshape(-1)
    y = np.asarray(labels, dtype=np.float64).reshape(-1)
    if flat.shape != y.shape:
        raise ValueError(f"scores {flat.shape} and labels {y.shape} must match")
    if not np.all(np.isin(y, (-1.0, 1.0))):
        raise ValueError("labels must be in {-1, +1}")
    margins = 1.0 - y * flat
    active = margins > 0
    loss = float(margins[active].sum() / flat.size) if active.any() else 0.0
    grad = np.where(active, -y, 0.0) / flat.size
    return loss, grad.reshape(s.shape) if squeeze else grad


__all__ = ["hinge_loss", "softmax_cross_entropy"]
