"""Hardware-counter telemetry for the neurosynaptic engines.

The paper's claims are resource claims — spikes moved, synaptic events
charged, milliwatts burned — so both simulation engines populate one
shared ledger per run (DESIGN.md §12): a :class:`RunActivity` with
per-lane spike / synaptic-event / router-hop / fault-loss counts,
per-core rollups, and a per-tick spike series. The counters are defined
so the two engines agree **bit for bit** on identical seeds:

- *spikes*: neuron firings after stuck-at output clamps, i.e. exactly
  ``total_spikes``;
- *synaptic events*: for every delivered axon activation, the number of
  nonzero entries in that axon's effective weight row (crossbar x LUT,
  after weight-flip faults) — the events a physical crossbar read would
  charge;
- *membrane updates*: every neuron integrates once per tick, so this is
  the derived ``cores x 256 x ticks`` per lane;
- *router hops*: spike deliveries deposited into the mailbox — emitted
  route events minus fault-dropped plus fault-echoed deliveries;
- *active core ticks*: (core, tick) pairs with at least one firing.

Runs land in the process registry as ``hw_*_total`` counters and in any
:func:`collect` scope open on the recording thread, which is how the
serving layer attributes energy to individual requests: wrap the model
call in ``collect()``, concatenate the per-lane columns, and feed them
through :func:`repro.truenorth.energy.activity_energy_joules`.

Telemetry can be globally disabled with :func:`configure`; a disabled
engine skips the per-tick accumulation entirely, which is the baseline
the ≤5 % obs-overhead budget in ``benchmarks/bench_serve.py`` is
measured against.
"""

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.metrics import get_registry

NEURONS_PER_CORE = 256
"""Neurons integrated per core per tick (mirrors
``repro.truenorth.types.CORE_NEURONS``; kept literal here so the obs
layer never imports the engine packages it instruments)."""

HW_COUNTER_HELP: Dict[str, str] = {
    "hw_spikes_total": "neuron firings counted by the hw-counter ledger",
    "hw_synaptic_events_total": (
        "synaptic events: nonzero weight-row entries of delivered axons"
    ),
    "hw_membrane_updates_total": (
        "membrane integrations (cores x 256 neurons x ticks x lanes)"
    ),
    "hw_router_hops_total": "inter-core spike deliveries (router hops)",
    "hw_cross_chip_hops_total": (
        "router hops whose route crosses a chip boundary"
    ),
    "hw_intra_chip_hops_total": (
        "router hops delivered within a single chip"
    ),
    "hw_dropped_spikes_total": "router deliveries lost to injected faults",
    "hw_duplicated_spikes_total": "router deliveries echoed by injected faults",
    "hw_active_core_ticks_total": "core-ticks with at least one neuron firing",
}
"""Registry counter names bumped by :func:`record_run`, with help text."""

_LANE_FIELDS = (
    "spikes",
    "synaptic_events",
    "router_hops",
    "cross_chip_hops",
    "dropped_spikes",
    "duplicated_spikes",
    "active_core_ticks",
)


@dataclass
class RunActivity:
    """The hardware-counter ledger of one engine run.

    Every per-lane array has the lane (batch) index as its leading
    axis, so ``activity.spikes[i]`` is lane ``i``'s firing count and
    slicing any field by lane is well defined.

    Attributes:
        engine: ``"reference"``, ``"batch"``, or ``"event"`` (which
            engine produced it).
        ticks: ticks simulated.
        batch: lanes simulated.
        n_cores: cores in the system.
        core_ids: global core ids, compiled core order, shape ``(n_cores,)``.
        spikes: per-lane neuron firings, shape ``(batch,)``.
        synaptic_events: per-lane synaptic events, shape ``(batch,)``.
        router_hops: per-lane mailbox deliveries, shape ``(batch,)``.
        dropped_spikes: per-lane fault-dropped deliveries, ``(batch,)``.
        duplicated_spikes: per-lane fault-echoed deliveries, ``(batch,)``.
        active_core_ticks: per-lane active (core, tick) pairs, ``(batch,)``.
        core_spikes: firings per lane per core, ``(batch, n_cores)``.
        core_synaptic_events: events per lane per core, ``(batch, n_cores)``.
        spikes_per_tick: firings per lane per tick, ``(batch, ticks)``.
        cross_chip_hops: per-lane router hops crossing a chip boundary
            under the system's applied placement, ``(batch,)``; ``None``
            (single-chip runs, pre-placement ledgers) normalises to
            zeros.
    """

    engine: str
    ticks: int
    batch: int
    n_cores: int
    core_ids: np.ndarray
    spikes: np.ndarray
    synaptic_events: np.ndarray
    router_hops: np.ndarray
    dropped_spikes: np.ndarray
    duplicated_spikes: np.ndarray
    active_core_ticks: np.ndarray
    core_spikes: np.ndarray
    core_synaptic_events: np.ndarray
    spikes_per_tick: np.ndarray
    cross_chip_hops: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.cross_chip_hops is None:
            self.cross_chip_hops = np.zeros(self.batch, dtype=np.int64)

    @property
    def membrane_updates(self) -> np.ndarray:
        """Per-lane membrane integrations (derived, engine-independent)."""
        return np.full(
            self.batch,
            self.ticks * self.n_cores * NEURONS_PER_CORE,
            dtype=np.int64,
        )

    @property
    def intra_chip_hops(self) -> np.ndarray:
        """Per-lane on-chip router hops (derived: hops minus cross-chip).

        Derivation guarantees the intra/cross split always sums to
        ``router_hops``, faults included, in every engine.
        """
        return self.router_hops - self.cross_chip_hops

    def lane(self, index: int) -> "RunActivity":
        """The single-lane ledger of lane ``index`` (copied slices)."""
        if not 0 <= index < self.batch:
            raise IndexError(f"lane must be in [0, {self.batch}), got {index}")
        sel = slice(index, index + 1)
        return RunActivity(
            engine=self.engine,
            ticks=self.ticks,
            batch=1,
            n_cores=self.n_cores,
            core_ids=self.core_ids,
            spikes=self.spikes[sel].copy(),
            synaptic_events=self.synaptic_events[sel].copy(),
            router_hops=self.router_hops[sel].copy(),
            dropped_spikes=self.dropped_spikes[sel].copy(),
            duplicated_spikes=self.duplicated_spikes[sel].copy(),
            active_core_ticks=self.active_core_ticks[sel].copy(),
            core_spikes=self.core_spikes[sel].copy(),
            core_synaptic_events=self.core_synaptic_events[sel].copy(),
            spikes_per_tick=self.spikes_per_tick[sel].copy(),
            cross_chip_hops=self.cross_chip_hops[sel].copy(),
        )

    @classmethod
    def stack(cls, activities: Sequence["RunActivity"]) -> "RunActivity":
        """Concatenate per-lane ledgers of one logical batch run.

        Used by the reference engine's ``run_batch`` fallback, which
        simulates lanes sequentially: stacking its single-lane ledgers
        yields the exact ledger the batch engine produces in one run.

        Raises:
            ValueError: on an empty sequence or mismatched runs
                (different ticks, core sets, or tick counts).
        """
        if not activities:
            raise ValueError("need at least one activity to stack")
        first = activities[0]
        for other in activities[1:]:
            if (
                other.ticks != first.ticks
                or other.n_cores != first.n_cores
                or not np.array_equal(other.core_ids, first.core_ids)
            ):
                raise ValueError("can only stack activities of identical runs")
        cat = np.concatenate
        return cls(
            engine=first.engine,
            ticks=first.ticks,
            batch=sum(a.batch for a in activities),
            n_cores=first.n_cores,
            core_ids=first.core_ids,
            spikes=cat([a.spikes for a in activities]),
            synaptic_events=cat([a.synaptic_events for a in activities]),
            router_hops=cat([a.router_hops for a in activities]),
            dropped_spikes=cat([a.dropped_spikes for a in activities]),
            duplicated_spikes=cat([a.duplicated_spikes for a in activities]),
            active_core_ticks=cat([a.active_core_ticks for a in activities]),
            core_spikes=cat([a.core_spikes for a in activities]),
            core_synaptic_events=cat(
                [a.core_synaptic_events for a in activities]
            ),
            spikes_per_tick=cat([a.spikes_per_tick for a in activities]),
            cross_chip_hops=cat([a.cross_chip_hops for a in activities]),
        )

    def totals(self) -> Dict[str, int]:
        """Whole-run counter totals (lane sums), JSON-ready."""
        out = {name: int(getattr(self, name).sum()) for name in _LANE_FIELDS}
        out["membrane_updates"] = int(self.membrane_updates.sum())
        out["intra_chip_hops"] = int(self.intra_chip_hops.sum())
        out["lane_ticks"] = self.ticks * self.batch
        return out

    def lane_energy_joules(self) -> np.ndarray:
        """Per-lane energy from the exact counters, shape ``(batch,)``.

        Each lane is one request occupying every core for ``ticks``
        ticks, so it is charged the full static floor plus its own
        dynamic spike/synapse activity (see
        :func:`repro.truenorth.energy.activity_energy_joules`).
        """
        from repro.truenorth.energy import activity_energy_joules

        return activity_energy_joules(
            self.spikes, self.synaptic_events, self.ticks, self.n_cores
        )

    def lane_power_watts(self) -> np.ndarray:
        """Per-lane sustained power over the run's wall-tick duration."""
        from repro.truenorth.power import TICK_SECONDS

        if self.ticks <= 0:
            raise ValueError("the run must cover at least one tick")
        return self.lane_energy_joules() / (self.ticks * TICK_SECONDS)

    def top_cores(self, n: int = 10) -> List[Dict[str, int]]:
        """The ``n`` hottest cores by spikes (lane sums), descending.

        Returns:
            ``[{"core": id, "spikes": s, "synaptic_events": e}, ...]``;
            synaptic events break ties, core id keeps the order stable.
        """
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        spikes = self.core_spikes.sum(axis=0)
        events = self.core_synaptic_events.sum(axis=0)
        order = sorted(
            range(self.n_cores),
            key=lambda i: (-int(spikes[i]), -int(events[i]), int(self.core_ids[i])),
        )
        return [
            {
                "core": int(self.core_ids[i]),
                "spikes": int(spikes[i]),
                "synaptic_events": int(events[i]),
            }
            for i in order[:n]
        ]


class ActivityCollector:
    """Accumulates the :class:`RunActivity` ledgers of a :func:`collect` scope.

    The ``runs`` list holds ledgers in recording order. Lane-indexed
    helpers concatenate the per-lane columns across runs, so a batch
    engine run of ``B`` lanes and ``B`` sequential reference runs
    produce identical series — that alignment is what per-request
    attribution in the serving layer relies on.
    """

    def __init__(self) -> None:
        self.runs: List[RunActivity] = []

    def record(self, activity: RunActivity) -> None:
        """Append one run's ledger."""
        self.runs.append(activity)

    @property
    def lanes(self) -> int:
        """Total lanes recorded across all runs."""
        return sum(a.batch for a in self.runs)

    def lane_values(self, name: str) -> np.ndarray:
        """Per-lane column ``name`` concatenated across runs."""
        if name not in _LANE_FIELDS and name not in (
            "membrane_updates",
            "intra_chip_hops",
        ):
            raise ValueError(f"unknown lane field {name!r}")
        if not self.runs:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate([getattr(a, name) for a in self.runs])

    def lane_energy_joules(self) -> np.ndarray:
        """Per-lane energy concatenated across runs."""
        if not self.runs:
            return np.zeros(0, dtype=np.float64)
        return np.concatenate([a.lane_energy_joules() for a in self.runs])

    def totals(self) -> Dict[str, int]:
        """Counter totals summed over every recorded run."""
        out = {name: 0 for name in _LANE_FIELDS}
        out["membrane_updates"] = 0
        out["intra_chip_hops"] = 0
        out["lane_ticks"] = 0
        for activity in self.runs:
            for name, value in activity.totals().items():
                out[name] += value
        return out

    def core_totals(self) -> Dict[int, Dict[str, int]]:
        """Per-core spike/event totals aggregated by global core id."""
        out: Dict[int, Dict[str, int]] = {}
        for activity in self.runs:
            spikes = activity.core_spikes.sum(axis=0)
            events = activity.core_synaptic_events.sum(axis=0)
            for i, core_id in enumerate(activity.core_ids):
                entry = out.setdefault(
                    int(core_id), {"spikes": 0, "synaptic_events": 0}
                )
                entry["spikes"] += int(spikes[i])
                entry["synaptic_events"] += int(events[i])
        return out


_local = threading.local()
_enabled = True


def configure(enabled: bool) -> None:
    """Globally enable or disable hardware-counter accumulation."""
    global _enabled
    _enabled = bool(enabled)


def enabled() -> bool:
    """Whether the engines should accumulate hardware counters."""
    return _enabled


def _collector_stack() -> List[ActivityCollector]:
    stack = getattr(_local, "collectors", None)
    if stack is None:
        stack = _local.collectors = []
    return stack


@contextmanager
def collect() -> Iterator[ActivityCollector]:
    """Collect every run recorded on this thread inside the block.

    Scopes nest: an inner ``collect()`` sees only its own runs, while
    the enclosing scope sees both (each recorded run is delivered to
    every collector open on the recording thread).
    """
    stack = _collector_stack()
    collector = ActivityCollector()
    stack.append(collector)
    try:
        yield collector
    finally:
        stack.remove(collector)


def record_run(activity: RunActivity) -> None:
    """Publish one run's ledger (called by both engines post-run).

    Bumps the ``hw_*_total`` registry counters and hands the ledger to
    every :func:`collect` scope open on this thread. A no-op while
    telemetry is disabled.
    """
    if not _enabled:
        return
    totals = activity.totals()
    registry = get_registry()
    for name, key in (
        ("hw_spikes_total", "spikes"),
        ("hw_synaptic_events_total", "synaptic_events"),
        ("hw_membrane_updates_total", "membrane_updates"),
        ("hw_router_hops_total", "router_hops"),
        ("hw_cross_chip_hops_total", "cross_chip_hops"),
        ("hw_intra_chip_hops_total", "intra_chip_hops"),
        ("hw_dropped_spikes_total", "dropped_spikes"),
        ("hw_duplicated_spikes_total", "duplicated_spikes"),
        ("hw_active_core_ticks_total", "active_core_ticks"),
    ):
        registry.counter(name, help=HW_COUNTER_HELP[name]).inc(totals[key])
    for collector in _collector_stack():
        collector.record(activity)


__all__ = [
    "HW_COUNTER_HELP",
    "NEURONS_PER_CORE",
    "ActivityCollector",
    "RunActivity",
    "collect",
    "configure",
    "enabled",
    "record_run",
]
