"""Fork-safe trace and span id minting.

Every request gets a ``trace_id`` at submission and every span gets a
``span_id`` at entry. Ids are random (uuid4-derived), which is fine in
one process — but the sharded serving tier forks worker processes that
mint their own ids, and two processes drawing from the same 16-hex-char
space have no *structural* guarantee against collision (and a collision
would silently merge two unrelated traces during assembly).

The fix is a per-process namespace: the parent mints bare
``uuid4().hex[:16]`` ids, while each forked shard worker calls
:func:`configure_namespace` with a per-shard prefix (``"s0"``, ``"s1"``,
...) before minting anything. Namespaced ids look like
``s0-3f9a1c2b4d5e`` — the ``-`` separator cannot appear in a bare hex
id, so parent-minted and worker-minted ids are disjoint *by
construction*, and two shards' ids are disjoint from each other by the
prefix. ``tests/test_obs_ids.py`` pins this across a real fork.
"""

import threading
import uuid
from typing import Optional

_lock = threading.Lock()
_namespace: Optional[str] = None

#: Hex digits kept from the uuid when a namespace prefix is applied.
NAMESPACED_HEX_DIGITS = 12


def configure_namespace(namespace: Optional[str]) -> None:
    """Set this process's id namespace (``None`` = bare 16-hex ids).

    Forked shard workers call this with a per-shard prefix before
    minting any id; the parent process never sets one. The namespace
    must not contain ``-`` (it is the prefix/entropy separator) and must
    be exposition-label-safe.

    Raises:
        ValueError: on a namespace containing ``-`` or whitespace.
    """
    global _namespace
    if namespace is not None:
        if "-" in namespace or namespace.strip() != namespace or not namespace:
            raise ValueError(
                f"id namespace must be non-empty, without '-' or "
                f"surrounding whitespace, got {namespace!r}"
            )
    with _lock:
        _namespace = namespace


def id_namespace() -> Optional[str]:
    """The process's current id namespace (``None`` in the parent)."""
    with _lock:
        return _namespace


def _mint() -> str:
    with _lock:
        namespace = _namespace
    if namespace is None:
        return uuid.uuid4().hex[:16]
    return f"{namespace}-{uuid.uuid4().hex[:NAMESPACED_HEX_DIGITS]}"


def new_trace_id() -> str:
    """A fresh request trace id (namespaced when configured).

    Bare ids are 16 hex chars; namespaced ids are
    ``{namespace}-{12 hex chars}`` — the two shapes cannot collide.
    """
    return _mint()


def new_span_id() -> str:
    """A fresh span id, from the same namespaced pool as trace ids."""
    return _mint()


__all__ = [
    "NAMESPACED_HEX_DIGITS",
    "configure_namespace",
    "id_namespace",
    "new_span_id",
    "new_trace_id",
]
