"""Nestable wall-clock span tracing with a bounded ring-buffer log.

A span brackets one phase of work — a simulator run, one pyramid
level, one served batch::

    from repro.obs import span

    with span("pyramid.level", level=3):
        ...

Spans nest per thread: the record carries the slash-joined path of
enclosing span names (``detect.scan/pyramid.level``) and its depth, so
a trace dump reads like a call tree. Every completed span lands in two
places:

- a per-name duration histogram ``span_<name>_seconds`` in the target
  :class:`~repro.obs.metrics.MetricsRegistry` (the process-wide default
  unless one is passed), which is what ``snapshot()`` and the
  Prometheus exposition report as "per-span timings";
- the process-wide :class:`TraceLog` ring buffer of the most recent
  :class:`SpanRecord` entries, for ``python -m repro trace <cmd>``.

Spans also participate in distributed tracing: each span is minted a
``span_id`` (fork-safe, see :mod:`repro.obs.ids`) and records the
``span_id`` of its enclosing span as ``parent_id``, and a
:func:`trace_context` block stamps every span inside it with the
request's ``trace_id``. Ids cross the shard-worker process boundary
explicitly (the parent ships its ids in the work message, the worker
passes them to :func:`span` / :func:`observe_span`), which is how
:mod:`repro.obs.traces` reassembles one tree per request from records
minted in different processes.

Tracing can be globally disabled with :func:`configure`; a disabled
``span`` costs one attribute read and no timestamps.
"""

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.ids import new_span_id
from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    sanitize_metric_name,
)

SPAN_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
"""Duration bucket bounds (seconds) for span histograms."""


@dataclass(frozen=True)
class SpanRecord:
    """One completed span.

    Attributes:
        name: the span's own name (``"pyramid.level"``).
        path: slash-joined names of the enclosing spans plus this one.
        duration_s: wall-clock duration in seconds.
        depth: number of enclosing spans on this thread (0 = root).
        thread: name of the thread that ran the span.
        attrs: keyword attributes passed at the call site.
        trace_id: owning request's trace id ("" outside any
            :func:`trace_context`).
        span_id: this span's own id ("" for externally timed spans
            that did not mint one).
        parent_id: the enclosing span's id ("" for roots).
        start_ts: wall-clock start (``time.time()``), 0.0 when the span
            was timed externally via :func:`observe_span`.
        pid: id of the process that ran the span (how assembled traces
            distinguish parent-side from shard-side work).
    """

    name: str
    path: str
    duration_s: float
    depth: int
    thread: str
    attrs: Dict = field(default_factory=dict)
    trace_id: str = ""
    span_id: str = ""
    parent_id: str = ""
    start_ts: float = 0.0
    pid: int = 0


class SpanHandle:
    """What :func:`span` yields: the live span's identity.

    Exposes the minted ``span_id`` (and the effective ``trace_id``) so
    the body can hand them to child work in another thread or process —
    the sharded serve tier ships ``handle.span_id`` to workers so
    worker-side spans can name it as their ``parent_id``.
    """

    __slots__ = ("name", "span_id", "trace_id", "parent_id")

    def __init__(self, name: str, span_id: str, trace_id: str, parent_id: str) -> None:
        self.name = name
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id


class TraceLog:
    """Bounded, thread-safe ring buffer of recent :class:`SpanRecord`\\ s.

    Every appended record is stamped with a monotonically increasing
    sequence number (0, 1, 2, ... in arrival order, assigned under the
    lock), so a reader can tell exactly what fell off the far end: the
    retained records always carry the contiguous range
    ``[dropped, total)`` — ``dropped`` is the watermark below which
    records were evicted, and is exact by construction.

    Args:
        maxlen: entries kept; older spans fall off the far end, so a
            long-running service holds a constant-size trace tail.
    """

    def __init__(self, maxlen: int = 1024) -> None:
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self.maxlen = maxlen
        self._lock = threading.Lock()
        self._entries: List[Tuple[int, SpanRecord]] = []
        self._next_seq = 0
        self._dropped = 0

    def append(self, record: SpanRecord) -> int:
        """Add a finished span, evicting the oldest past ``maxlen``.

        Returns:
            the sequence number assigned to ``record``.
        """
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            self._entries.append((seq, record))
            if len(self._entries) > self.maxlen:
                del self._entries[0]
                self._dropped += 1
            return seq

    def entries(self) -> List[SpanRecord]:
        """The retained records, oldest first (a copy)."""
        with self._lock:
            return [record for _, record in self._entries]

    def records(self) -> List[Tuple[int, SpanRecord]]:
        """Retained ``(seq, record)`` pairs, oldest first (a copy)."""
        with self._lock:
            return list(self._entries)

    @property
    def total(self) -> int:
        """Spans ever appended (== the next sequence number)."""
        with self._lock:
            return self._next_seq

    @property
    def dropped(self) -> int:
        """Spans evicted from the far end of the ring so far.

        Equals the lowest retained sequence number (the drop
        watermark) whenever any records are retained.
        """
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        """Drop every buffered span and reset counters and sequencing."""
        with self._lock:
            self._entries.clear()
            self._next_seq = 0
            self._dropped = 0


_trace_log = TraceLog(1024)
_local = threading.local()
_enabled = True


def trace_log() -> TraceLog:
    """The process-wide span ring buffer."""
    return _trace_log


def configure(enabled: bool) -> None:
    """Globally enable or disable span recording."""
    global _enabled
    _enabled = bool(enabled)


def enabled() -> bool:
    """Whether span recording is currently on."""
    return _enabled


def _id_stack() -> List[str]:
    ids: Optional[List[str]] = getattr(_local, "ids", None)
    if ids is None:
        ids = _local.ids = []
    return ids


def current_trace_id() -> str:
    """The thread's active request trace id ("" outside any context)."""
    return getattr(_local, "trace_id", "")


def current_span_id() -> str:
    """The innermost active span's id on this thread ("" outside spans)."""
    ids = getattr(_local, "ids", None)
    return ids[-1] if ids else ""


@contextmanager
def trace_context(trace_id: str) -> Iterator[str]:
    """Stamp every span opened in this block with ``trace_id``.

    Nestable; the previous trace id is restored on exit. Used by the
    serve dispatch loop (per-batch, with the batch's request trace ids
    as span attrs) and the video pipeline (per-frame).
    """
    previous = getattr(_local, "trace_id", "")
    _local.trace_id = trace_id
    try:
        yield trace_id
    finally:
        _local.trace_id = previous


def reset_thread_state() -> None:
    """Forget this thread's span nesting and trace context.

    Forked shard workers call this right after fork: the surviving
    thread inherits the parent's span stack and trace context, which
    would otherwise prefix every worker span path with whatever the
    parent happened to be doing at fork time.
    """
    _local.stack = []
    _local.ids = []
    _local.trace_id = ""


def span_metric_name(name: str) -> str:
    """Registry histogram name for span ``name``."""
    return f"span_{sanitize_metric_name(name)}_seconds"


def observe_span(
    name: str,
    seconds: float,
    registry: Optional[MetricsRegistry] = None,
    path: Optional[str] = None,
    depth: int = 0,
    trace_id: str = "",
    span_id: str = "",
    parent_id: str = "",
    start_ts: float = 0.0,
    **attrs,
) -> None:
    """Record one externally timed span (the low-level hook).

    Use this where a context manager does not fit — e.g. timing a
    blocking queue drain but only recording non-empty drains.
    """
    if not _enabled:
        return
    (registry if registry is not None else get_registry()).histogram(
        span_metric_name(name),
        help=f"wall-clock seconds of span {name}",
        buckets=SPAN_BUCKETS,
    ).observe(seconds)
    _trace_log.append(
        SpanRecord(
            name=name,
            path=path or name,
            duration_s=seconds,
            depth=depth,
            thread=threading.current_thread().name,
            attrs=attrs,
            trace_id=trace_id or current_trace_id(),
            span_id=span_id,
            parent_id=parent_id,
            start_ts=start_ts,
            pid=os.getpid(),
        )
    )


@contextmanager
def span(
    name: str,
    registry: Optional[MetricsRegistry] = None,
    parent_id: Optional[str] = None,
    **attrs,
) -> Iterator[Optional[SpanHandle]]:
    """Time a block of work as a nestable named span.

    Yields a :class:`SpanHandle` carrying the minted ``span_id`` (or
    ``None`` while tracing is disabled). ``parent_id`` overrides the
    thread-local nesting parent — shard workers pass the parent
    process's dispatch span id here to stitch the cross-process tree.
    """
    if not _enabled:
        yield None
        return
    stack: Optional[List[str]] = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    ids = _id_stack()
    span_id = new_span_id()
    effective_parent = parent_id if parent_id is not None else (
        ids[-1] if ids else ""
    )
    stack.append(name)
    ids.append(span_id)
    path = "/".join(stack)
    depth = len(stack) - 1
    handle = SpanHandle(name, span_id, current_trace_id(), effective_parent)
    start_ts = time.time()
    started = time.perf_counter()
    try:
        yield handle
    finally:
        duration = time.perf_counter() - started
        stack.pop()
        ids.pop()
        observe_span(
            name,
            duration,
            registry=registry,
            path=path,
            depth=depth,
            trace_id=handle.trace_id or current_trace_id(),
            span_id=span_id,
            parent_id=effective_parent,
            start_ts=start_ts,
            **attrs,
        )


def summarize_spans(registry: Optional[MetricsRegistry] = None) -> Dict[str, Dict]:
    """Per-span aggregate timings from ``registry`` (JSON-ready).

    Returns:
        ``{span_histogram_name: {count, sum, mean, p50, p99, max}}`` for
        every ``span_*_seconds`` histogram in the registry.
    """
    reg = registry if registry is not None else get_registry()
    out: Dict[str, Dict] = {}
    for name, data in reg.snapshot()["histograms"].items():
        if name.startswith("span_") and name.endswith("_seconds"):
            out[name] = {
                key: data[key]
                for key in ("count", "sum", "mean", "p50", "p99", "max")
            }
    return out


__all__ = [
    "SPAN_BUCKETS",
    "SpanHandle",
    "SpanRecord",
    "TraceLog",
    "configure",
    "current_span_id",
    "current_trace_id",
    "enabled",
    "observe_span",
    "reset_thread_state",
    "span",
    "span_metric_name",
    "summarize_spans",
    "trace_context",
    "trace_log",
]
