"""Thread-safe metric primitives and the process-wide registry.

Every subsystem that counts something — simulator ticks, spikes
delivered, pyramid windows scored, serve batches — registers its metric
here instead of keeping an ad-hoc attribute, so one `snapshot()` (JSON)
or `render_prometheus()` (text exposition) covers the whole process.
Three primitive kinds cover everything the paper's quantitative claims
need:

- :class:`CounterMetric` — monotonically increasing event counts
  (``sim_ticks_total``, ``detect_windows_scored_total``);
- :class:`GaugeMetric` — set-to-current values, optionally backed by a
  live callback (``serve_queue_depth`` bound to ``queue.qsize``);
- :class:`HistogramMetric` — value distributions with fixed cumulative
  buckets for exposition, a bounded reservoir for percentiles, and an
  optional exact value-count table for small-cardinality integers
  (batch sizes).

Updates take one short lock per metric; the hot paths bump counters
once per *run*, *batch*, or *level* (never per tick per core), which is
how the no-observer overhead stays inside the serving benchmark's 5%
budget (DESIGN.md §10).
"""

import math
import re
import threading
from bisect import bisect_left
from collections import Counter, deque
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")

DROPPED_SERIES_COUNTER = "repro_obs_dropped_series_total"
"""Counter bumped instead of registering a series past the cardinality cap."""

DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
"""Latency-shaped default bucket bounds in seconds (upper-inclusive)."""


def sanitize_metric_name(name: str) -> str:
    """``name`` with every exposition-illegal character mapped to ``_``."""
    cleaned = _SANITIZE_RE.sub("_", name)
    if not cleaned or not _NAME_RE.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: str) -> str:
    """``value`` escaped per the exposition format.

    Backslash, double quote, and newline become ``\\\\``, ``\\"`` and
    ``\\n`` respectively, so any string — including one spanning lines —
    stays a single, parseable sample line.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def unescape_label_value(value: str) -> str:
    """The inverse of :func:`escape_label_value`.

    Unknown escape sequences are preserved verbatim (backslash and all),
    matching the Prometheus text-format reference parser.
    """
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "\\":
                out.append("\\")
                i += 2
                continue
            if nxt == '"':
                out.append('"')
                i += 2
                continue
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def normalize_labels(labels) -> Tuple[Tuple[str, str], ...]:
    """``labels`` as a sorted, validated ``((name, value), ...)`` tuple.

    Raises:
        ValueError: on an exposition-illegal label name.
    """
    if not labels:
        return ()
    items = []
    for key in sorted(labels):
        if not _LABEL_NAME_RE.match(key):
            raise ValueError(
                f"label name {key!r} is not exposition-legal "
                "([a-zA-Z_][a-zA-Z0-9_]*)"
            )
        items.append((key, str(labels[key])))
    return tuple(items)


def render_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    """``{k="v",...}`` with escaped values, or ``""`` for no labels."""
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in labels
    )
    return "{" + inner + "}"


def parse_sample_name(sample: str) -> Tuple[str, Dict[str, str]]:
    """Split an exposition sample id into ``(base_name, labels)``.

    The inverse of ``name + render_labels(labels)``: label values are
    unescaped, so this round-trips everything
    :meth:`MetricsRegistry.render_prometheus` can emit.

    Raises:
        ValueError: on malformed label syntax.
    """
    brace = sample.find("{")
    if brace == -1:
        return sample, {}
    if not sample.endswith("}"):
        raise ValueError(f"malformed sample name: {sample!r}")
    base = sample[:brace]
    body = sample[brace + 1 : -1]
    labels: Dict[str, str] = {}
    i, n = 0, len(body)
    while i < n:
        eq = body.find("=", i)
        if eq == -1 or body[eq + 1 : eq + 2] != '"':
            raise ValueError(f"malformed labels in sample: {sample!r}")
        key = body[i:eq]
        j = eq + 2
        buf: List[str] = []
        terminated = False
        while j < n:
            ch = body[j]
            if ch == "\\" and j + 1 < n:
                nxt = body[j + 1]
                buf.append({"\\": "\\", '"': '"', "n": "\n"}.get(nxt, "\\" + nxt))
                j += 2
                continue
            if ch == '"':
                terminated = True
                break
            buf.append(ch)
            j += 1
        if not terminated:
            raise ValueError(f"unterminated label value in sample: {sample!r}")
        labels[key] = "".join(buf)
        i = j + 1
        if i < n:
            if body[i] != ",":
                raise ValueError(f"malformed labels in sample: {sample!r}")
            i += 1
    return base, labels


class CounterMetric:
    """A monotonically increasing count (optionally a labeled series)."""

    __slots__ = ("name", "help", "labels", "_lock", "_value")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0

    @property
    def sample_name(self) -> str:
        """The exposition sample id (name plus rendered labels)."""
        return self.name + render_labels(self.labels)

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (>= 0) to the counter."""
        if n < 0:
            raise ValueError(f"counter increments must be >= 0, got {n}")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        """The current monotonically accumulated count."""
        with self._lock:
            return self._value


class GaugeMetric:
    """A set-to-current value, optionally computed by a live callback."""

    __slots__ = ("name", "help", "labels", "_lock", "_value", "_fn")

    def __init__(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
        labels: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn = fn

    @property
    def sample_name(self) -> str:
        """The exposition sample id (name plus rendered labels)."""
        return self.name + render_labels(self.labels)

    def set(self, value: float) -> None:
        """Set the gauge to ``value`` (replaces any bound callback's role)."""
        with self._lock:
            self._value = float(value)

    def bind(self, fn: Callable[[], float]) -> None:
        """Back the gauge with a callback read at snapshot time."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        """The current reading (live callback when bound, else last set)."""
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        try:
            return float(fn())
        except Exception:
            return float("nan")


class HistogramMetric:
    """A value distribution: buckets + reservoir + optional value counts.

    Args:
        name: metric name (exposition-legal).
        help: one-line description.
        buckets: cumulative upper bounds (``+Inf`` is implicit).
        reservoir: most-recent observations kept for percentile
            estimates (bounded, so a long-running service never grows).
        track_values: also keep an exact ``value -> count`` table —
            only sensible for small-cardinality integers such as batch
            sizes.
    """

    __slots__ = (
        "name", "help", "labels", "_lock", "_bounds", "_bucket_counts",
        "_count", "_sum", "_min", "_max", "_reservoir", "_values",
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        reservoir: int = 2048,
        track_values: bool = False,
        labels: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        if reservoir < 1:
            raise ValueError(f"reservoir must be >= 1, got {reservoir}")
        bounds = tuple(sorted(float(b) for b in buckets))
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket bounds in {buckets}")
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()
        self._bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._reservoir = deque(maxlen=reservoir)
        self._values = Counter() if track_values else None

    def observe(self, value: float) -> None:
        """Record one observation."""
        v = float(value)
        index = bisect_left(self._bounds, v)
        with self._lock:
            self._bucket_counts[index] += 1
            self._count += 1
            self._sum += v
            if v < self._min:
                self._min = v
            if v > self._max:
                self._max = v
            self._reservoir.append(v)
            if self._values is not None:
                self._values[value] += 1

    @property
    def count(self) -> int:
        """Total observations recorded since creation."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of every observed value since creation."""
        with self._lock:
            return self._sum

    @property
    def sample_name(self) -> str:
        """The exposition sample id (name plus rendered labels)."""
        return self.name + render_labels(self.labels)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the reservoir (0.0 when empty).

        ``q`` is clamped into ``[0, 100]`` — out-of-range requests
        return the reservoir minimum/maximum instead of raising or
        producing NaN, so dashboards asking for e.g. ``q=99.99`` typos
        like ``q=9999`` stay finite.

        Raises:
            ValueError: when ``q`` is NaN (there is no sane clamp).
        """
        q = float(q)
        if math.isnan(q):
            raise ValueError("percentile q must not be NaN")
        q = min(100.0, max(0.0, q))
        with self._lock:
            if not self._reservoir:
                return 0.0
            data = np.asarray(self._reservoir, dtype=np.float64)
        return float(np.percentile(data, q))

    def value_counts(self) -> Dict[float, int]:
        """The exact value table (empty unless ``track_values``)."""
        with self._lock:
            return dict(self._values) if self._values is not None else {}

    def snapshot(self) -> Dict:
        """JSON-ready summary of the distribution."""
        with self._lock:
            count = self._count
            total = self._sum
            minimum = self._min
            maximum = self._max
            data = (
                np.asarray(self._reservoir, dtype=np.float64)
                if self._reservoir
                else None
            )
            buckets = {
                str(bound): cumulative
                for bound, cumulative in zip(
                    list(self._bounds) + ["+Inf"],
                    np.cumsum(self._bucket_counts).tolist(),
                )
            }
        out = {
            "count": count,
            "sum": total,
            "min": minimum if count else 0.0,
            "max": maximum if count else 0.0,
            "mean": (total / count) if count else 0.0,
            "buckets": buckets,
        }
        if data is not None:
            out["p50"] = float(np.percentile(data, 50))
            out["p99"] = float(np.percentile(data, 99))
        else:
            out["p50"] = 0.0
            out["p99"] = 0.0
        return out

    def export_state(self) -> Dict:
        """The raw distribution state as a picklable dict.

        Carries per-bucket (non-cumulative) counts, the running
        count/sum/min/max, the percentile reservoir, and the exact
        value table when tracked — everything :meth:`merge_state`
        needs to fold this histogram into another one with identical
        bounds. Shard workers ship these across the fork boundary.
        """
        with self._lock:
            return {
                "bounds": list(self._bounds),
                "bucket_counts": list(self._bucket_counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "reservoir": list(self._reservoir),
                "reservoir_maxlen": self._reservoir.maxlen,
                "values": dict(self._values) if self._values is not None else None,
            }

    def merge_state(self, state: Dict) -> None:
        """Fold an exported (or diffed) histogram state into this one.

        Raises:
            ValueError: when ``state`` was exported from a histogram
                with different bucket bounds — merging those would
                silently misbucket, so it is refused.
        """
        bounds = tuple(float(b) for b in state["bounds"])
        if bounds != self._bounds:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds "
                f"{bounds} != {self._bounds}"
            )
        with self._lock:
            for index, count in enumerate(state["bucket_counts"]):
                self._bucket_counts[index] += count
            self._count += state["count"]
            self._sum += state["sum"]
            if state["count"]:
                if state["min"] < self._min:
                    self._min = state["min"]
                if state["max"] > self._max:
                    self._max = state["max"]
            self._reservoir.extend(state["reservoir"])
            values = state.get("values")
            if values is not None and self._values is not None:
                for value, count in values.items():
                    self._values[value] += count

    def _exposition_rows(self) -> List[Tuple[str, float]]:
        suffix = render_labels(self.labels)

        def bucket(le: str) -> str:
            return f"{self.name}_bucket" + render_labels(
                self.labels + (("le", le),)
            )

        with self._lock:
            cumulative = np.cumsum(self._bucket_counts).tolist()
            rows = [
                (bucket(f"{bound:g}"), cum)
                for bound, cum in zip(self._bounds, cumulative[:-1])
            ]
            rows.append((bucket("+Inf"), cumulative[-1]))
            rows.append((f"{self.name}_sum{suffix}", self._sum))
            rows.append((f"{self.name}_count{suffix}", self._count))
        return rows


class MetricsRegistry:
    """A named collection of metrics with one-stop snapshot/exposition.

    Metrics are created lazily by :meth:`counter` / :meth:`gauge` /
    :meth:`histogram` (get-or-create, type-checked), so instrumented
    code never needs registration boilerplate and two call sites naming
    the same metric share it. Each call may carry a ``labels`` mapping;
    every distinct label set is an independent series under the shared
    base name (one TYPE line, many samples). A cardinality guard caps
    the distinct label sets per metric at ``max_label_sets``: past the
    cap, new series are *not* registered — the returned metric is a
    detached instance whose updates go nowhere, and the
    ``repro_obs_dropped_series_total`` counter is bumped instead of the
    registry growing without bound (a runaway label such as a request id
    cannot take the process down).

    Args:
        max_label_sets: distinct label sets allowed per metric name.
    """

    def __init__(self, max_label_sets: int = 1000) -> None:
        if max_label_sets < 1:
            raise ValueError(
                f"max_label_sets must be >= 1, got {max_label_sets}"
            )
        self.max_label_sets = max_label_sets
        self._lock = threading.Lock()
        self._metrics: "Dict[str, object]" = {}
        self._kinds: Dict[str, type] = {}
        self._series_count: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, kind, factory, labels=None):
        if not _NAME_RE.match(name):
            raise ValueError(
                f"metric name {name!r} is not exposition-legal "
                "([a-zA-Z_:][a-zA-Z0-9_:]*)"
            )
        label_items = normalize_labels(labels)
        key = name + render_labels(label_items)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is not None:
                if not isinstance(metric, kind):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(metric).__name__}, not {kind.__name__}"
                    )
                return metric
            existing_kind = self._kinds.get(name)
            if existing_kind is not None and existing_kind is not kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing_kind.__name__}, not {kind.__name__}"
                )
            if (
                label_items
                and self._series_count.get(name, 0) >= self.max_label_sets
            ):
                self._dropped_series_locked().inc()
                return factory(label_items)  # detached: never registered
            metric = factory(label_items)
            self._metrics[key] = metric
            self._kinds[name] = kind
            self._series_count[name] = self._series_count.get(name, 0) + 1
            return metric

    def _dropped_series_locked(self) -> CounterMetric:
        """The cardinality-guard counter (caller holds ``self._lock``)."""
        dropped = self._metrics.get(DROPPED_SERIES_COUNTER)
        if dropped is None:
            dropped = CounterMetric(
                DROPPED_SERIES_COUNTER,
                help="label sets refused by the per-metric cardinality cap",
            )
            self._metrics[DROPPED_SERIES_COUNTER] = dropped
            self._kinds[DROPPED_SERIES_COUNTER] = CounterMetric
            self._series_count[DROPPED_SERIES_COUNTER] = 1
        return dropped

    def counter(self, name: str, help: str = "", labels=None) -> CounterMetric:
        """Get or create the counter ``name`` (series per label set)."""
        return self._get_or_create(
            name,
            CounterMetric,
            lambda items: CounterMetric(name, help, labels=items),
            labels,
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
        labels=None,
    ) -> GaugeMetric:
        """Get or create the gauge ``name`` (binding ``fn`` if given)."""
        gauge = self._get_or_create(
            name,
            GaugeMetric,
            lambda items: GaugeMetric(name, help, fn=fn, labels=items),
            labels,
        )
        if fn is not None:
            gauge.bind(fn)
        return gauge

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        reservoir: int = 2048,
        track_values: bool = False,
        labels=None,
    ) -> HistogramMetric:
        """Get or create the histogram ``name`` (series per label set)."""
        return self._get_or_create(
            name,
            HistogramMetric,
            lambda items: HistogramMetric(
                name,
                help,
                buckets=buckets,
                reservoir=reservoir,
                track_values=track_values,
                labels=items,
            ),
            labels,
        )

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """All registered sample ids (labeled series included), sorted."""
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str, labels=None):
        """The metric behind ``name`` (and ``labels``), or ``None``."""
        key = name + render_labels(normalize_labels(labels))
        with self._lock:
            return self._metrics.get(key)

    def _items(self) -> List[Tuple[str, object]]:
        with self._lock:
            return sorted(self._metrics.items())

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        """``{name: value}`` of every counter starting with ``prefix``."""
        return {
            name: metric.value
            for name, metric in self._items()
            if isinstance(metric, CounterMetric) and name.startswith(prefix)
        }

    def snapshot(self) -> Dict:
        """One JSON-ready view of every registered metric."""
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict] = {}
        for name, metric in self._items():
            if isinstance(metric, CounterMetric):
                counters[name] = metric.value
            elif isinstance(metric, GaugeMetric):
                gauges[name] = metric.value
            elif isinstance(metric, HistogramMetric):
                histograms[name] = metric.snapshot()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def export_state(self) -> Dict:
        """Every registered series as one picklable document.

        Each series record carries ``kind``, ``name``, ``labels`` (as a
        list of ``[name, value]`` pairs), ``help``, and its raw payload:
        the counter/gauge ``value`` or the histogram's
        :meth:`HistogramMetric.export_state` under ``state``. This is
        the wire format shard workers ship to the parent (after
        :func:`diff_states` against the previous export) and the input
        to :meth:`merge_state`.
        """
        series: List[Dict] = []
        for _, metric in self._items():
            record: Dict = {
                "name": metric.name,
                "labels": [list(pair) for pair in metric.labels],
                "help": metric.help,
            }
            if isinstance(metric, CounterMetric):
                record["kind"] = "counter"
                record["value"] = metric.value
            elif isinstance(metric, GaugeMetric):
                record["kind"] = "gauge"
                record["value"] = metric.value
            elif isinstance(metric, HistogramMetric):
                record["kind"] = "histogram"
                record["state"] = metric.export_state()
            else:  # pragma: no cover - no other kinds exist
                continue
            series.append(record)
        return {"series": series}

    def merge_state(self, state: Dict, extra_labels=None) -> int:
        """Fold an exported state (usually a delta) into this registry.

        Counters are incremented by the shipped value, gauges set to it,
        histograms merged bucket-by-bucket (bounds must match). When
        ``extra_labels`` is given (e.g. ``{"shard": "0"}``) every merged
        series lands under its original labels *plus* those — which is
        how worker-side ``serve_hw_*`` and ``span_*`` series appear in
        the parent exposition with a ``shard`` label. Merging goes
        through the normal get-or-create path, so the per-metric
        cardinality guard applies to merged series exactly as it does
        to locally created ones.

        Returns:
            the number of series records merged.
        """
        extra = dict(extra_labels) if extra_labels else {}
        merged = 0
        for record in state["series"]:
            labels = {name: value for name, value in record["labels"]}
            labels.update(extra)
            label_arg = labels or None
            kind = record["kind"]
            help_text = record.get("help", "")
            if kind == "counter":
                self.counter(record["name"], help=help_text, labels=label_arg).inc(
                    record["value"]
                )
            elif kind == "gauge":
                self.gauge(record["name"], help=help_text, labels=label_arg).set(
                    record["value"]
                )
            elif kind == "histogram":
                hist_state = record["state"]
                self.histogram(
                    record["name"],
                    help=help_text,
                    buckets=hist_state["bounds"],
                    reservoir=hist_state["reservoir_maxlen"],
                    track_values=hist_state.get("values") is not None,
                    labels=label_arg,
                ).merge_state(hist_state)
            else:
                raise ValueError(f"unknown series kind {kind!r}")
            merged += 1
        return merged

    def render_prometheus(self) -> str:
        """Prometheus-style text exposition of every metric.

        Series sharing a base name are grouped under one ``# TYPE`` line;
        label values are escaped per the exposition format
        (:func:`escape_label_value`), so :func:`parse_prometheus` plus
        :func:`parse_sample_name` round-trip every emitted sample.
        """
        type_names = {
            CounterMetric: "counter",
            GaugeMetric: "gauge",
            HistogramMetric: "histogram",
        }
        with self._lock:
            metrics = sorted(
                self._metrics.values(), key=lambda m: (m.name, m.labels)
            )
        lines: List[str] = []
        last_name = None
        for metric in metrics:
            if metric.name != last_name:
                last_name = metric.name
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(
                    f"# TYPE {metric.name} {type_names[type(metric)]}"
                )
            if isinstance(metric, HistogramMetric):
                for row_name, value in metric._exposition_rows():
                    lines.append(f"{row_name} {_format_value(value)}")
            elif isinstance(metric, CounterMetric):
                lines.append(f"{metric.sample_name} {metric.value}")
            else:
                lines.append(
                    f"{metric.sample_name} {_format_value(metric.value)}"
                )
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every registered metric (test isolation)."""
        with self._lock:
            self._metrics.clear()
            self._kinds.clear()
            self._series_count.clear()


def _format_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


_default_registry = MetricsRegistry()
_registry_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    with _registry_lock:
        return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _default_registry
    if not isinstance(registry, MetricsRegistry):
        raise TypeError(
            f"registry must be a MetricsRegistry, got {type(registry).__name__}"
        )
    with _registry_lock:
        previous = _default_registry
        _default_registry = registry
        return previous


def _series_key(record: Dict) -> Tuple:
    return (
        record["kind"],
        record["name"],
        tuple(tuple(pair) for pair in record["labels"]),
    )


def diff_states(new: Dict, old: Dict) -> Dict:
    """The delta that takes exported state ``old`` to ``new``.

    Counters and histogram counts/sums/buckets subtract; series whose
    delta is zero are omitted entirely, so repeated shipping of an idle
    registry costs nothing. Gauges are not cumulative — a changed gauge
    ships its *new absolute* value, an unchanged one is omitted. The
    delta reservoir is the tail of the new reservoir (the most recent
    ``count_delta`` observations), which is exact until the ring wraps
    and a best-effort recent sample after that.

    The result is itself a valid :meth:`MetricsRegistry.merge_state`
    input: merging every delta in order reproduces merging the final
    state once (histogram min/max ship as running values and fold
    idempotently).
    """
    old_index = {_series_key(record): record for record in old["series"]}
    series: List[Dict] = []
    for record in new["series"]:
        previous = old_index.get(_series_key(record))
        kind = record["kind"]
        if kind == "counter":
            delta = record["value"] - (previous["value"] if previous else 0)
            if delta:
                series.append({**record, "value": delta})
        elif kind == "gauge":
            if previous is None or previous["value"] != record["value"]:
                series.append(dict(record))
        elif kind == "histogram":
            state = record["state"]
            prev_state = previous["state"] if previous else None
            prev_count = prev_state["count"] if prev_state else 0
            count_delta = state["count"] - prev_count
            if not count_delta:
                continue
            if prev_state is None:
                series.append(dict(record))
                continue
            reservoir = state["reservoir"]
            delta_state = {
                "bounds": list(state["bounds"]),
                "bucket_counts": [
                    now - before
                    for now, before in zip(
                        state["bucket_counts"], prev_state["bucket_counts"]
                    )
                ],
                "count": count_delta,
                "sum": state["sum"] - prev_state["sum"],
                "min": state["min"],
                "max": state["max"],
                "reservoir": reservoir[max(0, len(reservoir) - count_delta):],
                "reservoir_maxlen": state["reservoir_maxlen"],
                "values": (
                    {
                        value: count - prev_state["values"].get(value, 0)
                        for value, count in state["values"].items()
                        if count - prev_state["values"].get(value, 0)
                    }
                    if state.get("values") is not None
                    else None
                ),
            }
            series.append({**record, "state": delta_state})
        else:
            raise ValueError(f"unknown series kind {kind!r}")
    return {"series": series}


METRIC_BASE_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")
"""Convention for base metric names: lowercase snake_case, no colons."""

COUNTER_SUFFIXES: Tuple[str, ...] = ("_total",)
"""Counters are monotone accumulations and must say so."""

HISTOGRAM_SUFFIXES: Tuple[str, ...] = (
    "_seconds", "_nj", "_joules", "_bytes", "_size", "_ratio",
)
"""Histograms carry their unit (or dimension, for ``_size``)."""

GAUGE_SUFFIXES: Tuple[str, ...] = (
    "_depth", "_state", "_shards", "_seconds", "_ratio", "_rate",
    "_watts", "_joules", "_fraction", "_bytes",
)
"""Gauges end in a unit or the dimension noun they measure."""


def naming_violations(registry: MetricsRegistry) -> List[str]:
    """Convention violations among ``registry``'s base metric names.

    Checks every registered base name against
    :data:`METRIC_BASE_NAME_RE` and the per-kind unit-suffix lists, and
    every label name against the exposition-internal convention (no
    uppercase). Returns human-readable ``"name: problem"`` strings —
    empty means the registry is clean. ``tests/test_obs_naming.py``
    runs this over a fully exercised registry so new series cannot
    drift from the existing exposition style.
    """
    suffixes = {
        CounterMetric: COUNTER_SUFFIXES,
        HistogramMetric: HISTOGRAM_SUFFIXES,
        GaugeMetric: GAUGE_SUFFIXES,
    }
    problems: List[str] = []
    seen_names = set()
    with registry._lock:
        items = sorted(registry._metrics.items())
    for _, metric in items:
        for label_name, _ in metric.labels:
            if not re.match(r"^[a-z][a-z0-9_]*$", label_name):
                problems.append(
                    f"{metric.sample_name}: label {label_name!r} is not "
                    "lowercase snake_case"
                )
        if metric.name in seen_names:
            continue
        seen_names.add(metric.name)
        if not METRIC_BASE_NAME_RE.match(metric.name):
            problems.append(
                f"{metric.name}: not lowercase snake_case "
                f"({METRIC_BASE_NAME_RE.pattern})"
            )
            continue
        allowed = suffixes[type(metric)]
        if not metric.name.endswith(allowed):
            kind = type(metric).__name__.replace("Metric", "").lower()
            problems.append(
                f"{metric.name}: {kind} must end in one of {allowed}"
            )
    return problems


def parse_prometheus(text: str) -> Dict[str, float]:
    """``{sample_name: value}`` parsed back from an exposition text.

    The inverse of :meth:`MetricsRegistry.render_prometheus` for the
    subset this module emits; used by the CI ``obs-smoke`` scraper and
    the exposition round-trip tests.

    Raises:
        ValueError: on a malformed sample line or non-numeric value.
    """
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            name, raw = line.rsplit(" ", 1)
        except ValueError:
            raise ValueError(f"malformed exposition line: {line!r}") from None
        if raw == "+Inf":
            value = math.inf
        elif raw == "-Inf":
            value = -math.inf
        elif raw == "NaN":
            value = math.nan
        else:
            try:
                value = float(raw)
            except ValueError:
                raise ValueError(
                    f"non-numeric value {raw!r} for sample {name!r}"
                ) from None
        samples[name] = value
    return samples


__all__: Iterable[str] = [
    "COUNTER_SUFFIXES",
    "DEFAULT_BUCKETS",
    "DROPPED_SERIES_COUNTER",
    "GAUGE_SUFFIXES",
    "HISTOGRAM_SUFFIXES",
    "METRIC_BASE_NAME_RE",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "diff_states",
    "escape_label_value",
    "get_registry",
    "naming_violations",
    "normalize_labels",
    "parse_prometheus",
    "parse_sample_name",
    "render_labels",
    "sanitize_metric_name",
    "set_registry",
    "unescape_label_value",
]
