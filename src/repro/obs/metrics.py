"""Thread-safe metric primitives and the process-wide registry.

Every subsystem that counts something — simulator ticks, spikes
delivered, pyramid windows scored, serve batches — registers its metric
here instead of keeping an ad-hoc attribute, so one `snapshot()` (JSON)
or `render_prometheus()` (text exposition) covers the whole process.
Three primitive kinds cover everything the paper's quantitative claims
need:

- :class:`CounterMetric` — monotonically increasing event counts
  (``sim_ticks_total``, ``detect_windows_scored_total``);
- :class:`GaugeMetric` — set-to-current values, optionally backed by a
  live callback (``serve_queue_depth`` bound to ``queue.qsize``);
- :class:`HistogramMetric` — value distributions with fixed cumulative
  buckets for exposition, a bounded reservoir for percentiles, and an
  optional exact value-count table for small-cardinality integers
  (batch sizes).

Updates take one short lock per metric; the hot paths bump counters
once per *run*, *batch*, or *level* (never per tick per core), which is
how the no-observer overhead stays inside the serving benchmark's 5%
budget (DESIGN.md §10).
"""

import math
import re
import threading
from bisect import bisect_left
from collections import Counter, deque
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")

DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
"""Latency-shaped default bucket bounds in seconds (upper-inclusive)."""


def sanitize_metric_name(name: str) -> str:
    """``name`` with every exposition-illegal character mapped to ``_``."""
    cleaned = _SANITIZE_RE.sub("_", name)
    if not cleaned or not _NAME_RE.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


class CounterMetric:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (>= 0) to the counter."""
        if n < 0:
            raise ValueError(f"counter increments must be >= 0, got {n}")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        """The current monotonically accumulated count."""
        with self._lock:
            return self._value


class GaugeMetric:
    """A set-to-current value, optionally computed by a live callback."""

    __slots__ = ("name", "help", "_lock", "_value", "_fn")

    def __init__(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        """Set the gauge to ``value`` (replaces any bound callback's role)."""
        with self._lock:
            self._value = float(value)

    def bind(self, fn: Callable[[], float]) -> None:
        """Back the gauge with a callback read at snapshot time."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        """The current reading (live callback when bound, else last set)."""
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        try:
            return float(fn())
        except Exception:
            return float("nan")


class HistogramMetric:
    """A value distribution: buckets + reservoir + optional value counts.

    Args:
        name: metric name (exposition-legal).
        help: one-line description.
        buckets: cumulative upper bounds (``+Inf`` is implicit).
        reservoir: most-recent observations kept for percentile
            estimates (bounded, so a long-running service never grows).
        track_values: also keep an exact ``value -> count`` table —
            only sensible for small-cardinality integers such as batch
            sizes.
    """

    __slots__ = (
        "name", "help", "_lock", "_bounds", "_bucket_counts", "_count",
        "_sum", "_min", "_max", "_reservoir", "_values",
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        reservoir: int = 2048,
        track_values: bool = False,
    ) -> None:
        if reservoir < 1:
            raise ValueError(f"reservoir must be >= 1, got {reservoir}")
        bounds = tuple(sorted(float(b) for b in buckets))
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket bounds in {buckets}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._reservoir = deque(maxlen=reservoir)
        self._values = Counter() if track_values else None

    def observe(self, value: float) -> None:
        """Record one observation."""
        v = float(value)
        index = bisect_left(self._bounds, v)
        with self._lock:
            self._bucket_counts[index] += 1
            self._count += 1
            self._sum += v
            if v < self._min:
                self._min = v
            if v > self._max:
                self._max = v
            self._reservoir.append(v)
            if self._values is not None:
                self._values[value] += 1

    @property
    def count(self) -> int:
        """Total observations recorded since creation."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of every observed value since creation."""
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the reservoir (0.0 when empty)."""
        with self._lock:
            if not self._reservoir:
                return 0.0
            data = np.asarray(self._reservoir, dtype=np.float64)
        return float(np.percentile(data, q))

    def value_counts(self) -> Dict[float, int]:
        """The exact value table (empty unless ``track_values``)."""
        with self._lock:
            return dict(self._values) if self._values is not None else {}

    def snapshot(self) -> Dict:
        """JSON-ready summary of the distribution."""
        with self._lock:
            count = self._count
            total = self._sum
            minimum = self._min
            maximum = self._max
            data = (
                np.asarray(self._reservoir, dtype=np.float64)
                if self._reservoir
                else None
            )
            buckets = {
                str(bound): cumulative
                for bound, cumulative in zip(
                    list(self._bounds) + ["+Inf"],
                    np.cumsum(self._bucket_counts).tolist(),
                )
            }
        out = {
            "count": count,
            "sum": total,
            "min": minimum if count else 0.0,
            "max": maximum if count else 0.0,
            "mean": (total / count) if count else 0.0,
            "buckets": buckets,
        }
        if data is not None:
            out["p50"] = float(np.percentile(data, 50))
            out["p99"] = float(np.percentile(data, 99))
        else:
            out["p50"] = 0.0
            out["p99"] = 0.0
        return out

    def _exposition_rows(self) -> List[Tuple[str, float]]:
        with self._lock:
            cumulative = np.cumsum(self._bucket_counts).tolist()
            rows = [
                (f'{self.name}_bucket{{le="{bound:g}"}}', cum)
                for bound, cum in zip(self._bounds, cumulative[:-1])
            ]
            rows.append((f'{self.name}_bucket{{le="+Inf"}}', cumulative[-1]))
            rows.append((f"{self.name}_sum", self._sum))
            rows.append((f"{self.name}_count", self._count))
        return rows


class MetricsRegistry:
    """A named collection of metrics with one-stop snapshot/exposition.

    Metrics are created lazily by :meth:`counter` / :meth:`gauge` /
    :meth:`histogram` (get-or-create, type-checked), so instrumented
    code never needs registration boilerplate and two call sites naming
    the same metric share it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "Dict[str, object]" = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, kind, factory):
        if not _NAME_RE.match(name):
            raise ValueError(
                f"metric name {name!r} is not exposition-legal "
                "([a-zA-Z_:][a-zA-Z0-9_:]*)"
            )
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> CounterMetric:
        """Get or create the counter ``name``."""
        return self._get_or_create(
            name, CounterMetric, lambda: CounterMetric(name, help)
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> GaugeMetric:
        """Get or create the gauge ``name`` (binding ``fn`` if given)."""
        gauge = self._get_or_create(
            name, GaugeMetric, lambda: GaugeMetric(name, help, fn=fn)
        )
        if fn is not None:
            gauge.bind(fn)
        return gauge

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        reservoir: int = 2048,
        track_values: bool = False,
    ) -> HistogramMetric:
        """Get or create the histogram ``name``."""
        return self._get_or_create(
            name,
            HistogramMetric,
            lambda: HistogramMetric(
                name,
                help,
                buckets=buckets,
                reservoir=reservoir,
                track_values=track_values,
            ),
        )

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str):
        """The metric object behind ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def _items(self) -> List[Tuple[str, object]]:
        with self._lock:
            return sorted(self._metrics.items())

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        """``{name: value}`` of every counter starting with ``prefix``."""
        return {
            name: metric.value
            for name, metric in self._items()
            if isinstance(metric, CounterMetric) and name.startswith(prefix)
        }

    def snapshot(self) -> Dict:
        """One JSON-ready view of every registered metric."""
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict] = {}
        for name, metric in self._items():
            if isinstance(metric, CounterMetric):
                counters[name] = metric.value
            elif isinstance(metric, GaugeMetric):
                gauges[name] = metric.value
            elif isinstance(metric, HistogramMetric):
                histograms[name] = metric.snapshot()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def render_prometheus(self) -> str:
        """Prometheus-style text exposition of every metric."""
        lines: List[str] = []
        for name, metric in self._items():
            if isinstance(metric, CounterMetric):
                if metric.help:
                    lines.append(f"# HELP {name} {metric.help}")
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {metric.value}")
            elif isinstance(metric, GaugeMetric):
                if metric.help:
                    lines.append(f"# HELP {name} {metric.help}")
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_format_value(metric.value)}")
            elif isinstance(metric, HistogramMetric):
                if metric.help:
                    lines.append(f"# HELP {name} {metric.help}")
                lines.append(f"# TYPE {name} histogram")
                for row_name, value in metric._exposition_rows():
                    lines.append(f"{row_name} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every registered metric (test isolation)."""
        with self._lock:
            self._metrics.clear()


def _format_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


_default_registry = MetricsRegistry()
_registry_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    with _registry_lock:
        return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _default_registry
    if not isinstance(registry, MetricsRegistry):
        raise TypeError(
            f"registry must be a MetricsRegistry, got {type(registry).__name__}"
        )
    with _registry_lock:
        previous = _default_registry
        _default_registry = registry
        return previous


def parse_prometheus(text: str) -> Dict[str, float]:
    """``{sample_name: value}`` parsed back from an exposition text.

    The inverse of :meth:`MetricsRegistry.render_prometheus` for the
    subset this module emits; used by the CI ``obs-smoke`` scraper and
    the exposition round-trip tests.

    Raises:
        ValueError: on a malformed sample line or non-numeric value.
    """
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            name, raw = line.rsplit(" ", 1)
        except ValueError:
            raise ValueError(f"malformed exposition line: {line!r}") from None
        if raw == "+Inf":
            value = math.inf
        elif raw == "-Inf":
            value = -math.inf
        elif raw == "NaN":
            value = math.nan
        else:
            try:
                value = float(raw)
            except ValueError:
                raise ValueError(
                    f"non-numeric value {raw!r} for sample {name!r}"
                ) from None
        samples[name] = value
    return samples


__all__: Iterable[str] = [
    "DEFAULT_BUCKETS",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "get_registry",
    "parse_prometheus",
    "sanitize_metric_name",
    "set_registry",
]
