"""Declarative latency and energy SLOs over the metrics registry.

The paper's deployment claims are latency- *and* energy-denominated
(real-time pedestrian detection inside a TrueNorth-class power
envelope), so objectives here come in both currencies: "99% of
requests complete within 250 ms" and "95% of requests cost at most
10 mJ of simulated energy". An :class:`SLObjective` names a histogram
already being recorded (``serve_latency_seconds``,
``serve_request_energy_nj``), a per-request threshold, and a
compliance target; :func:`evaluate_objectives` reads the histogram's
cumulative buckets and reports, per objective:

- **compliance** — the fraction of requests at or under the threshold,
  measured conservatively from the greatest bucket bound that does not
  exceed the threshold (bucketed data can only under-count compliance,
  never over-count it);
- **error budget** — ``1 - target``, the tolerated bad fraction;
- **burn rate** — ``bad_fraction / error_budget``: 1.0 means the run
  consumed its budget exactly, above 1.0 the objective is burning
  budget faster than tolerated (the standard SRE burn-rate alarm
  signal, scaled to the evaluated run rather than a wall-clock
  window).

:func:`publish_results` exports the verdicts back into the registry
(``slo_requests_total`` / ``slo_bad_requests_total`` counters and the
``slo_burn_rate`` gauge, labeled by objective), and
``python -m repro slo <cmd>`` evaluates objectives against a real
serve or video run and emits the burn-rate report JSON that the CI
``slo-smoke`` job validates via :func:`validate_report`.
"""

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import (
    HistogramMetric,
    MetricsRegistry,
    get_registry,
)

REPORT_SCHEMA = "repro.slo/v1"
"""Schema tag stamped on every report (checked by the CI smoke)."""

_SIGNALS = ("latency", "energy")

#: Multiplier from an objective's threshold unit to each known metric's
#: native unit. Latency metrics record seconds and thresholds are given
#: in seconds (1.0); energy metrics record nanojoules while thresholds
#: are given in joules (1e9).
UNIT_SCALE = {"latency": 1.0, "energy": 1e9}


@dataclass(frozen=True)
class SLObjective:
    """One declarative service-level objective.

    Attributes:
        name: stable identifier (label value on the exported series).
        signal: ``"latency"`` or ``"energy"`` — decides the threshold
            unit (seconds vs joules) and its conversion to the metric's
            native unit.
        metric: base name of the histogram to evaluate
            (``serve_latency_seconds``, ``serve_request_energy_nj``).
        threshold: per-request ceiling in the signal's unit (seconds
            for latency, joules for energy).
        target: compliance target in ``(0, 1)`` — e.g. 0.99 means at
            most 1% of requests may exceed the threshold.
        description: one line for reports and dashboards.
    """

    name: str
    signal: str
    metric: str
    threshold: float
    target: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.signal not in _SIGNALS:
            raise ValueError(
                f"signal must be one of {_SIGNALS}, got {self.signal!r}"
            )
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"target must be in (0, 1), got {self.target}"
            )
        if not self.threshold > 0:
            raise ValueError(
                f"threshold must be > 0, got {self.threshold}"
            )

    @property
    def error_budget(self) -> float:
        """The tolerated bad-request fraction (``1 - target``)."""
        return 1.0 - self.target

    def to_json(self) -> Dict:
        """The objective as a JSON-ready dict."""
        return {
            "name": self.name,
            "signal": self.signal,
            "metric": self.metric,
            "threshold": self.threshold,
            "target": self.target,
            "description": self.description,
        }


@dataclass(frozen=True)
class SLOResult:
    """One objective's verdict over an evaluated run.

    Attributes:
        objective: the evaluated :class:`SLObjective`.
        total: requests observed by the metric.
        good: requests at or under the threshold (conservative, from
            the greatest bucket bound not exceeding the threshold).
        effective_bound: the bucket bound actually used, in the
            metric's native unit (NaN when the histogram has no bound
            at or under the threshold — then ``good`` is 0).
        compliance: ``good / total`` (1.0 when nothing was observed —
            an idle service violates nothing).
        burn_rate: bad fraction over the error budget; > 1.0 means the
            objective is out of budget for this run.
        met: whether compliance reached the target.
    """

    objective: SLObjective
    total: int
    good: int
    effective_bound: float
    compliance: float
    burn_rate: float
    met: bool

    @property
    def bad(self) -> int:
        """Requests over the threshold."""
        return self.total - self.good

    @property
    def budget_remaining(self) -> float:
        """Error budget left after this run (negative = overspent)."""
        return 1.0 - self.burn_rate

    def to_json(self) -> Dict:
        """The verdict as a JSON-ready dict (the report row shape)."""
        return {
            "objective": self.objective.to_json(),
            "total": self.total,
            "good": self.good,
            "bad": self.bad,
            "effective_bound": self.effective_bound,
            "compliance": self.compliance,
            "error_budget": self.objective.error_budget,
            "burn_rate": self.burn_rate,
            "budget_remaining": self.budget_remaining,
            "met": self.met,
        }


def default_objectives() -> Tuple[SLObjective, ...]:
    """The stock objectives ``python -m repro slo`` evaluates.

    One latency objective and one joules-per-request objective over
    the histograms every serve run records; thresholds are sized for
    the demo workloads (override with ``--objectives PATH``).
    """
    return (
        SLObjective(
            name="serve_latency_fast",
            signal="latency",
            metric="serve_latency_seconds",
            threshold=0.25,
            target=0.99,
            description="99% of requests complete within 250 ms",
        ),
        SLObjective(
            name="serve_energy_per_request",
            signal="energy",
            metric="serve_request_energy_nj",
            threshold=0.01,
            target=0.95,
            description="95% of requests cost at most 10 mJ simulated",
        ),
    )


def load_objectives(path: str) -> Tuple[SLObjective, ...]:
    """Objectives from a JSON file (a list of objective dicts).

    Raises:
        ValueError: on a malformed document or objective.
    """
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, list) or not document:
        raise ValueError(
            f"{path}: objectives file must be a non-empty JSON list"
        )
    objectives = []
    for entry in document:
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: objective entries must be objects")
        try:
            objectives.append(
                SLObjective(
                    name=entry["name"],
                    signal=entry["signal"],
                    metric=entry["metric"],
                    threshold=float(entry["threshold"]),
                    target=float(entry["target"]),
                    description=entry.get("description", ""),
                )
            )
        except KeyError as exc:
            raise ValueError(
                f"{path}: objective missing required key {exc}"
            ) from None
    return tuple(objectives)


def _histogram_buckets(
    registry: MetricsRegistry, metric: str
) -> Optional[Dict[str, int]]:
    """Cumulative ``{bound: count}`` for base name ``metric``.

    Prefers the unlabeled series (the parent-side request view); when
    only labeled series exist (e.g. purely shard-labeled after a
    merge), their per-bucket counts are summed.
    """
    with registry._lock:
        series = [
            m
            for m in registry._metrics.values()
            if isinstance(m, HistogramMetric) and m.name == metric
        ]
    unlabeled = [m for m in series if not m.labels]
    if unlabeled:
        series = unlabeled
    if not series:
        return None
    combined: Dict[str, int] = {}
    for metric_obj in series:
        for bound, cumulative in metric_obj.snapshot()["buckets"].items():
            combined[bound] = combined.get(bound, 0) + int(cumulative)
    return combined


def evaluate_objectives(
    registry: Optional[MetricsRegistry] = None,
    objectives: Optional[Sequence[SLObjective]] = None,
) -> List[SLOResult]:
    """Evaluate ``objectives`` against the histograms in ``registry``.

    An objective whose metric histogram is absent evaluates over zero
    requests (compliance 1.0, burn rate 0.0) — an idle or untouched
    signal has spent no budget.
    """
    reg = registry if registry is not None else get_registry()
    results: List[SLOResult] = []
    for objective in objectives if objectives is not None else default_objectives():
        native_threshold = objective.threshold * UNIT_SCALE[objective.signal]
        buckets = _histogram_buckets(reg, objective.metric)
        total = 0
        good = 0
        effective_bound = math.nan
        if buckets:
            total = max(buckets.values())
            candidates = [
                (float(bound), count)
                for bound, count in buckets.items()
                if bound != "+Inf" and float(bound) <= native_threshold
            ]
            if candidates:
                effective_bound, good = max(candidates)
        compliance = (good / total) if total else 1.0
        bad_fraction = 1.0 - compliance
        burn_rate = bad_fraction / objective.error_budget
        results.append(
            SLOResult(
                objective=objective,
                total=total,
                good=good,
                effective_bound=effective_bound,
                compliance=compliance,
                burn_rate=burn_rate,
                met=compliance >= objective.target,
            )
        )
    return results


def publish_results(
    results: Sequence[SLOResult],
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Export verdicts as registry series (labeled per objective).

    Bumps ``slo_requests_total`` / ``slo_bad_requests_total`` and sets
    the ``slo_burn_rate`` gauge for each objective, so an exposition
    scrape carries the burn-rate signal alongside the raw histograms.
    """
    reg = registry if registry is not None else get_registry()
    for result in results:
        labels = {"slo": result.objective.name}
        reg.counter(
            "slo_requests_total",
            help="requests evaluated against each objective",
            labels=labels,
        ).inc(result.total)
        reg.counter(
            "slo_bad_requests_total",
            help="requests over each objective's threshold",
            labels=labels,
        ).inc(result.bad)
        reg.gauge(
            "slo_burn_rate",
            help="error-budget burn rate per objective (1.0 = on budget)",
            labels=labels,
        ).set(result.burn_rate)


def report_json(results: Sequence[SLOResult]) -> Dict:
    """The full run report (the ``python -m repro slo`` output shape)."""
    return {
        "schema": REPORT_SCHEMA,
        "objectives": [result.to_json() for result in results],
        "met_all": all(result.met for result in results),
    }


def validate_report(document: Dict) -> None:
    """Raise ``ValueError`` unless ``document`` is a well-formed report.

    The CI ``slo-smoke`` job runs this over the emitted JSON; tests
    share it so the schema cannot drift silently.
    """
    if document.get("schema") != REPORT_SCHEMA:
        raise ValueError(
            f"schema must be {REPORT_SCHEMA!r}, got {document.get('schema')!r}"
        )
    rows = document.get("objectives")
    if not isinstance(rows, list) or not rows:
        raise ValueError("objectives must be a non-empty list")
    if not isinstance(document.get("met_all"), bool):
        raise ValueError("met_all must be a boolean")
    for index, row in enumerate(rows):
        where = f"objectives[{index}]"
        objective = row.get("objective")
        if not isinstance(objective, dict):
            raise ValueError(f"{where}: objective must be an object")
        for key in ("name", "signal", "metric"):
            if not isinstance(objective.get(key), str) or not objective[key]:
                raise ValueError(
                    f"{where}: objective.{key} must be a non-empty string"
                )
        if objective["signal"] not in _SIGNALS:
            raise ValueError(
                f"{where}: objective.signal must be one of {_SIGNALS}"
            )
        for key in ("threshold", "target"):
            if not isinstance(objective.get(key), (int, float)):
                raise ValueError(f"{where}: objective.{key} must be numeric")
        for key in ("total", "good", "bad"):
            value = row.get(key)
            if not isinstance(value, int) or value < 0:
                raise ValueError(
                    f"{where}: {key} must be a non-negative integer"
                )
        if row["good"] + row["bad"] != row["total"]:
            raise ValueError(f"{where}: good + bad must equal total")
        for key in ("compliance", "error_budget", "burn_rate", "budget_remaining"):
            value = row.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"{where}: {key} must be numeric")
        if not 0.0 <= row["compliance"] <= 1.0:
            raise ValueError(f"{where}: compliance must be in [0, 1]")
        if row["burn_rate"] < 0:
            raise ValueError(f"{where}: burn_rate must be >= 0")
        if not isinstance(row.get("met"), bool):
            raise ValueError(f"{where}: met must be a boolean")


def format_report(results: Sequence[SLOResult]) -> str:
    """A human-readable table of the verdicts."""
    lines = ["== SLO verdicts =="]
    for result in results:
        objective = result.objective
        unit = "s" if objective.signal == "latency" else "J"
        status = "MET" if result.met else "VIOLATED"
        lines.append(
            f"{objective.name:28s} [{status:8s}] "
            f"compliance {result.compliance:7.3%} "
            f"(target {objective.target:.1%}, "
            f"<= {objective.threshold:g}{unit}) "
            f"burn rate {result.burn_rate:6.2f} "
            f"over {result.total} requests"
        )
    return "\n".join(lines)


__all__ = [
    "REPORT_SCHEMA",
    "UNIT_SCALE",
    "SLOResult",
    "SLObjective",
    "default_objectives",
    "evaluate_objectives",
    "format_report",
    "load_objectives",
    "publish_results",
    "report_json",
    "validate_report",
]
