"""``repro.obs`` — the process-wide observability layer.

One lightweight, thread-safe subsystem behind every number this repo
reports (DESIGN.md §10, §16): counters/gauges/histograms in a
:class:`MetricsRegistry`, nestable :func:`span` wall-clock tracing with
a bounded ring-buffer :class:`TraceLog`, fork-safe trace/span ids
(:mod:`repro.obs.ids`), cross-process trace assembly and Chrome
trace-event export (:mod:`repro.obs.traces`), declarative latency and
energy SLOs (:mod:`repro.obs.slo`), a JSON ``snapshot()`` and a
Prometheus-style text exposition. The simulator, batch engine,
detection pipeline, and serving stack all instrument through this
package; ``repro.serve.ServiceStats`` is a thin facade over a registry.

Quick start::

    from repro.obs import get_registry, span

    with span("pyramid.level", level=0):
        ...
    get_registry().counter("detect_windows_scored_total").inc(n)
    print(get_registry().render_prometheus())
"""

from repro.obs import flight, hwcounters, ids, slo, traces
from repro.obs.flight import FlightEvent, FlightRecorder, flight_recorder, new_trace_id
from repro.obs.hwcounters import ActivityCollector, RunActivity, record_run
from repro.obs.ids import configure_namespace, id_namespace, new_span_id
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    DROPPED_SERIES_COUNTER,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    diff_states,
    escape_label_value,
    get_registry,
    naming_violations,
    normalize_labels,
    parse_prometheus,
    parse_sample_name,
    render_labels,
    sanitize_metric_name,
    set_registry,
    unescape_label_value,
)
from repro.obs.slo import SLObjective, SLOResult, default_objectives, evaluate_objectives
from repro.obs.traces import RequestTrace, assemble_traces, to_chrome_trace
from repro.obs.tracing import (
    SPAN_BUCKETS,
    SpanHandle,
    SpanRecord,
    TraceLog,
    configure,
    current_span_id,
    current_trace_id,
    enabled,
    observe_span,
    span,
    span_metric_name,
    summarize_spans,
    trace_context,
    trace_log,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DROPPED_SERIES_COUNTER",
    "SPAN_BUCKETS",
    "ActivityCollector",
    "CounterMetric",
    "FlightEvent",
    "FlightRecorder",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "RequestTrace",
    "RunActivity",
    "SLOResult",
    "SLObjective",
    "SpanHandle",
    "SpanRecord",
    "TraceLog",
    "assemble_traces",
    "configure",
    "configure_namespace",
    "current_span_id",
    "current_trace_id",
    "default_objectives",
    "diff_states",
    "enabled",
    "escape_label_value",
    "evaluate_objectives",
    "flight",
    "flight_recorder",
    "get_registry",
    "hwcounters",
    "id_namespace",
    "ids",
    "naming_violations",
    "new_span_id",
    "new_trace_id",
    "normalize_labels",
    "observe_span",
    "parse_prometheus",
    "parse_sample_name",
    "record_run",
    "render_labels",
    "sanitize_metric_name",
    "set_registry",
    "slo",
    "span",
    "span_metric_name",
    "summarize_spans",
    "to_chrome_trace",
    "trace_context",
    "trace_log",
    "traces",
]
