"""``repro.obs`` — the process-wide observability layer.

One lightweight, thread-safe subsystem behind every number this repo
reports (DESIGN.md §10): counters/gauges/histograms in a
:class:`MetricsRegistry`, nestable :func:`span` wall-clock tracing with
a bounded ring-buffer :class:`TraceLog`, a JSON ``snapshot()`` and a
Prometheus-style text exposition. The simulator, batch engine,
detection pipeline, and serving stack all instrument through this
package; ``repro.serve.ServiceStats`` is a thin facade over a registry.

Quick start::

    from repro.obs import get_registry, span

    with span("pyramid.level", level=0):
        ...
    get_registry().counter("detect_windows_scored_total").inc(n)
    print(get_registry().render_prometheus())
"""

from repro.obs import flight, hwcounters
from repro.obs.flight import FlightEvent, FlightRecorder, flight_recorder, new_trace_id
from repro.obs.hwcounters import ActivityCollector, RunActivity, record_run
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    DROPPED_SERIES_COUNTER,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    escape_label_value,
    get_registry,
    normalize_labels,
    parse_prometheus,
    parse_sample_name,
    render_labels,
    sanitize_metric_name,
    set_registry,
    unescape_label_value,
)
from repro.obs.tracing import (
    SPAN_BUCKETS,
    SpanRecord,
    TraceLog,
    configure,
    enabled,
    observe_span,
    span,
    span_metric_name,
    summarize_spans,
    trace_log,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DROPPED_SERIES_COUNTER",
    "SPAN_BUCKETS",
    "ActivityCollector",
    "CounterMetric",
    "FlightEvent",
    "FlightRecorder",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "RunActivity",
    "SpanRecord",
    "TraceLog",
    "configure",
    "enabled",
    "escape_label_value",
    "flight",
    "flight_recorder",
    "get_registry",
    "hwcounters",
    "new_trace_id",
    "normalize_labels",
    "observe_span",
    "parse_prometheus",
    "parse_sample_name",
    "record_run",
    "render_labels",
    "sanitize_metric_name",
    "set_registry",
    "span",
    "span_metric_name",
    "summarize_spans",
    "trace_log",
]
