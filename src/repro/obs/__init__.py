"""``repro.obs`` — the process-wide observability layer.

One lightweight, thread-safe subsystem behind every number this repo
reports (DESIGN.md §10): counters/gauges/histograms in a
:class:`MetricsRegistry`, nestable :func:`span` wall-clock tracing with
a bounded ring-buffer :class:`TraceLog`, a JSON ``snapshot()`` and a
Prometheus-style text exposition. The simulator, batch engine,
detection pipeline, and serving stack all instrument through this
package; ``repro.serve.ServiceStats`` is a thin facade over a registry.

Quick start::

    from repro.obs import get_registry, span

    with span("pyramid.level", level=0):
        ...
    get_registry().counter("detect_windows_scored_total").inc(n)
    print(get_registry().render_prometheus())
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    get_registry,
    parse_prometheus,
    sanitize_metric_name,
    set_registry,
)
from repro.obs.tracing import (
    SPAN_BUCKETS,
    SpanRecord,
    TraceLog,
    configure,
    enabled,
    observe_span,
    span,
    span_metric_name,
    summarize_spans,
    trace_log,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "SPAN_BUCKETS",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "SpanRecord",
    "TraceLog",
    "configure",
    "enabled",
    "get_registry",
    "observe_span",
    "parse_prometheus",
    "sanitize_metric_name",
    "set_registry",
    "span",
    "span_metric_name",
    "summarize_spans",
    "trace_log",
]
