"""The flight recorder: a bounded structured log of serve lifecycle events.

Metrics aggregate; the flight recorder *narrates*. Every notable moment
in a request's life — enqueue, cache hit/miss, queue-full rejection,
batch formation, scoring (joined to the hardware-counter snapshot),
retries, circuit-breaker transitions, deadline expiries, failures — is
appended as a :class:`FlightEvent` to a fixed-size ring buffer with
monotonic sequence numbers and an exact drop counter, so the last few
thousand events before an incident are always reconstructible.

Events carry a ``trace_id`` (one per request, assigned at submission)
and an optional ``span_id`` (the enclosing span path when recorded
inside one), which is how a dump joins back to span timings and request
futures. The buffer dumps to a single JSON document via :meth:`dump` —
on demand through ``python -m repro serve --flight-dump PATH`` and
automatically when a request fails or the breaker opens (DESIGN.md §12).

Recording can be globally disabled with :func:`configure`; a disabled
:meth:`FlightRecorder.record` costs one attribute read.
"""

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.ids import new_trace_id

# Canonical event kinds emitted by the serving layer. The recorder
# accepts any string, so subsystems may add their own; these are the
# ones DESIGN.md §12 documents and tests rely on.
EVENT_KINDS: Tuple[str, ...] = (
    "enqueue",
    "cache_hit",
    "cache_miss",
    "queue_full",
    "expired_queued",
    "batch_form",
    "score",
    "retry",
    "breaker_transition",
    "deadline_expired",
    "request_failed",
    "degraded",
    "dump",
)


@dataclass(frozen=True)
class FlightEvent:
    """One recorded lifecycle event.

    Attributes:
        seq: monotonic sequence number (0, 1, 2, ... per recorder).
        ts: wall-clock timestamp (``time.time()``).
        kind: event kind (see :data:`EVENT_KINDS`).
        trace_id: the owning request's trace id (may be empty for
            events that span requests, e.g. breaker transitions).
        span_id: slash-joined span path active at record time, or "".
        thread: name of the recording thread.
        attrs: free-form JSON-serialisable payload.
    """

    seq: int
    ts: float
    kind: str
    trace_id: str = ""
    span_id: str = ""
    thread: str = ""
    attrs: Dict = field(default_factory=dict)

    def to_json(self) -> Dict:
        """The event as a JSON-ready dict."""
        return {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "thread": self.thread,
            "attrs": self.attrs,
        }


class FlightRecorder:
    """Bounded, thread-safe ring buffer of :class:`FlightEvent`\\ s.

    Sequence numbers are assigned under the lock, so the retained
    events always cover the contiguous range ``[dropped, total)`` —
    identical semantics to :class:`repro.obs.tracing.TraceLog`.

    Args:
        maxlen: events kept; older events fall off the far end and are
            counted in :attr:`dropped`.
    """

    def __init__(self, maxlen: int = 4096) -> None:
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self.maxlen = maxlen
        self._lock = threading.Lock()
        self._events: List[FlightEvent] = []
        self._next_seq = 0
        self._dropped = 0

    def record(
        self,
        kind: str,
        trace_id: str = "",
        span_id: str = "",
        **attrs,
    ) -> Optional[FlightEvent]:
        """Append one event; returns it (or ``None`` while disabled)."""
        if not _enabled:
            return None
        thread = threading.current_thread().name
        ts = time.time()
        with self._lock:
            event = FlightEvent(
                seq=self._next_seq,
                ts=ts,
                kind=kind,
                trace_id=trace_id,
                span_id=span_id,
                thread=thread,
                attrs=attrs,
            )
            self._next_seq += 1
            self._events.append(event)
            if len(self._events) > self.maxlen:
                del self._events[0]
                self._dropped += 1
        return event

    def events(self) -> List[FlightEvent]:
        """The retained events, oldest first (a copy)."""
        with self._lock:
            return list(self._events)

    @property
    def total(self) -> int:
        """Events ever recorded (== the next sequence number)."""
        with self._lock:
            return self._next_seq

    @property
    def dropped(self) -> int:
        """Events evicted from the far end so far (the drop watermark)."""
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        """Drop every buffered event and reset counters and sequencing."""
        with self._lock:
            self._events.clear()
            self._next_seq = 0
            self._dropped = 0

    def to_json(self) -> Dict:
        """The whole buffer as one JSON-ready document."""
        with self._lock:
            events = list(self._events)
            dropped = self._dropped
            total = self._next_seq
        return {
            "dropped": dropped,
            "total": total,
            "retained": len(events),
            "events": [event.to_json() for event in events],
        }

    def dump(self, path: str, reason: str = "on_demand") -> int:
        """Write the buffer to ``path`` as a JSON document.

        The dump itself is recorded as a ``dump`` event *after* the
        snapshot is taken, so a dump never contains itself.

        Args:
            path: destination file (overwritten).
            reason: why the dump happened (``"on_demand"``,
                ``"request_failed"``, ``"breaker_open"``, ...).

        Returns:
            The number of events written.
        """
        document = self.to_json()
        document["reason"] = reason
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        self.record("dump", reason=reason, path=str(path))
        return document["retained"]


_flight = FlightRecorder(4096)
_enabled = True


def flight_recorder() -> FlightRecorder:
    """The process-wide flight recorder."""
    return _flight


def configure(enabled: bool) -> None:
    """Globally enable or disable flight-event recording."""
    global _enabled
    _enabled = bool(enabled)


def enabled() -> bool:
    """Whether flight-event recording is currently on."""
    return _enabled


def current_span_path() -> str:
    """The recording thread's active span path ("" outside any span)."""
    from repro.obs import tracing

    stack = getattr(tracing._local, "stack", None)
    return "/".join(stack) if stack else ""


__all__ = [
    "EVENT_KINDS",
    "FlightEvent",
    "FlightRecorder",
    "configure",
    "current_span_path",
    "enabled",
    "flight_recorder",
    "new_trace_id",
]
