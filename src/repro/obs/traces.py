"""Per-request trace assembly and Chrome trace-event export.

Spans (:class:`~repro.obs.tracing.SpanRecord`) and flight events
(:class:`~repro.obs.flight.FlightEvent`) are recorded flat, in arrival
order, possibly in different processes — shard workers ship their span
records back to the parent, which appends them to the process trace
log. This module stitches those flat streams back into one
:class:`RequestTrace` per ``trace_id``:

- a record whose own ``trace_id`` matches is claimed directly
  (per-request events: enqueue, cache hit, deadline expiry);
- a record carrying a ``trace_ids`` attr list is claimed by *every*
  trace in the list (batch-scoped spans and events: ``batch_form``,
  ``score``, ``serve.shard.execute``, the worker-side scoring span) —
  micro-batching means one span legitimately belongs to many requests.

Inside a trace the spans form a tree over ``span_id``/``parent_id``
(edges may cross process boundaries: the worker scoring span's parent
is the parent process's dispatch span), which :func:`to_chrome_trace`
exports as Chrome trace-event JSON — load it in ``chrome://tracing``
or Perfetto to see every request's life across the fleet on one
timeline. ``python -m repro trace <cmd> --export PATH`` writes it.

:func:`frame_stage_breakdown` is the video-pipeline view: per-stage
(extract / pool / serve / nms) latency summaries per pyramid level,
read from the labeled ``video_stage_seconds`` histograms.
"""

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.flight import FlightEvent, flight_recorder
from repro.obs.metrics import HistogramMetric, MetricsRegistry, get_registry
from repro.obs.tracing import SpanRecord, trace_log

VIDEO_STAGE_METRIC = "video_stage_seconds"
"""Labeled histogram (``stage``, ``level``) behind the frame breakdown."""


@dataclass
class RequestTrace:
    """Everything recorded about one traced request.

    Attributes:
        trace_id: the request's id, minted at submission.
        spans: spans claimed by this trace, in arrival order.
        events: flight events claimed by this trace, in arrival order.
    """

    trace_id: str
    spans: List[SpanRecord] = field(default_factory=list)
    events: List[FlightEvent] = field(default_factory=list)

    @property
    def pids(self) -> Tuple[int, ...]:
        """Distinct process ids the trace's spans ran in, sorted."""
        return tuple(sorted({record.pid for record in self.spans}))

    def children_of(self, span_id: str) -> List[SpanRecord]:
        """Spans naming ``span_id`` as their parent."""
        return [
            record
            for record in self.spans
            if span_id and record.parent_id == span_id
        ]

    def roots(self) -> List[SpanRecord]:
        """Spans whose parent is absent from this trace (tree roots)."""
        known = {record.span_id for record in self.spans if record.span_id}
        return [
            record
            for record in self.spans
            if not record.parent_id or record.parent_id not in known
        ]

    def span_tree(self) -> List[Dict]:
        """The span forest as nested JSON-ready dicts.

        Each node carries the span's identity and timing plus its
        ``children`` — the shape ``python -m repro trace`` prints and
        tests assert the cross-process parent/child edge on.
        """

        def node(record: SpanRecord) -> Dict:
            return {
                "name": record.name,
                "span_id": record.span_id,
                "parent_id": record.parent_id,
                "pid": record.pid,
                "duration_s": record.duration_s,
                "children": [
                    node(child) for child in self.children_of(record.span_id)
                ],
            }

        return [node(record) for record in self.roots()]


def _claimants(trace_id: str, attrs: Dict) -> List[str]:
    owners: List[str] = []
    if trace_id:
        owners.append(trace_id)
    for claimed in attrs.get("trace_ids") or ():
        if claimed and claimed not in owners:
            owners.append(claimed)
    return owners


def assemble_traces(
    spans: Optional[Sequence[SpanRecord]] = None,
    events: Optional[Sequence[FlightEvent]] = None,
) -> List[RequestTrace]:
    """Group flat span/event streams into one trace per request.

    Args:
        spans: span records to stitch; defaults to the process trace
            log's retained entries (worker-shipped spans included).
        events: flight events to stitch; defaults to the process
            flight recorder's retained events.

    Returns:
        Traces ordered by first appearance. Records carrying neither a
        ``trace_id`` nor a ``trace_ids`` attr belong to no request and
        are left out.
    """
    if spans is None:
        spans = trace_log().entries()
    if events is None:
        events = flight_recorder().events()
    traces: Dict[str, RequestTrace] = {}
    for record in spans:
        for owner in _claimants(record.trace_id, record.attrs):
            traces.setdefault(owner, RequestTrace(owner)).spans.append(record)
    for event in events:
        for owner in _claimants(event.trace_id, event.attrs):
            traces.setdefault(owner, RequestTrace(owner)).events.append(event)
    return list(traces.values())


def to_chrome_trace(traces: Iterable[RequestTrace]) -> Dict:
    """``traces`` as a Chrome trace-event JSON document.

    Spans become complete (``ph: "X"``) events with microsecond
    ``ts``/``dur``; flight events become instant (``ph: "i"``) events;
    process/thread metadata events name each pid and map thread names
    onto stable integer tids. Batch-scoped spans shared by several
    traces are emitted once. Load the result in ``chrome://tracing``
    or https://ui.perfetto.dev.
    """
    out: List[Dict] = []
    tids: Dict[Tuple[int, str], int] = {}
    named_pids: Dict[int, str] = {}

    def tid_for(pid: int, thread: str) -> int:
        key = (pid, thread)
        if key not in tids:
            tids[key] = len(tids) + 1
            out.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tids[key],
                    "args": {"name": thread},
                }
            )
        return tids[key]

    def name_pid(pid: int, parent_pid: int) -> None:
        if pid in named_pids:
            return
        role = "serve parent" if pid == parent_pid else "shard worker"
        named_pids[pid] = role
        out.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{role} (pid {pid})"},
            }
        )

    parent_pid = os.getpid()
    seen_spans = set()
    seen_events = set()
    for trace in traces:
        for record in trace.spans:
            key = record.span_id or id(record)
            if key in seen_spans:
                continue
            seen_spans.add(key)
            pid = record.pid or parent_pid
            name_pid(pid, parent_pid)
            args = {
                "trace_id": record.trace_id,
                "span_id": record.span_id,
                "parent_id": record.parent_id,
                "path": record.path,
                "depth": record.depth,
            }
            args.update(record.attrs)
            out.append(
                {
                    "ph": "X",
                    "name": record.name,
                    "cat": record.path.split("/", 1)[0],
                    "pid": pid,
                    "tid": tid_for(pid, record.thread),
                    "ts": record.start_ts * 1e6,
                    "dur": record.duration_s * 1e6,
                    "args": args,
                }
            )
        for event in trace.events:
            if event.seq in seen_events:
                continue
            seen_events.add(event.seq)
            name_pid(parent_pid, parent_pid)
            out.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": event.kind,
                    "cat": "flight",
                    "pid": parent_pid,
                    "tid": tid_for(parent_pid, event.thread),
                    "ts": event.ts * 1e6,
                    "args": {"trace_id": event.trace_id, **event.attrs},
                }
            )
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def validate_chrome_trace(document: Dict) -> None:
    """Raise ``ValueError`` unless ``document`` is a valid export.

    Checks the containered trace-event format: a ``traceEvents`` list
    whose entries carry a known phase, integer ``pid``/``tid``, and
    numeric non-negative ``ts`` (plus ``dur`` for complete events).
    Shared by the export tests and the CI smoke.
    """
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if event.get("ph") not in ("X", "i", "M", "B", "E", "C"):
            raise ValueError(f"{where}: unknown phase {event.get('ph')!r}")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"{where}: name must be a string")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"{where}: {key} must be an integer")
        if event["ph"] == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"{where}: ts must be a non-negative number")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"{where}: dur must be a non-negative number"
                )


def export_chrome_trace(
    path: str, traces: Optional[Iterable[RequestTrace]] = None
) -> int:
    """Assemble (if needed), validate, and write Chrome trace JSON.

    Args:
        path: destination file (overwritten).
        traces: traces to export; ``None`` assembles from the process
            trace log and flight recorder.

    Returns:
        The number of trace events written.
    """
    if traces is None:
        traces = assemble_traces()
    document = to_chrome_trace(traces)
    validate_chrome_trace(document)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return len(document["traceEvents"])


def frame_stage_breakdown(
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, Dict[str, Dict]]:
    """Per-stage, per-pyramid-level latency summaries for video frames.

    Reads every ``video_stage_seconds{stage=..., level=...}`` histogram
    series the pipeline recorded and returns
    ``{stage: {level: {count, sum, mean, p50, p99, max}}}`` — the
    extract / pool / serve / nms split per pyramid level that
    ``python -m repro trace video ...`` prints.
    """
    reg = registry if registry is not None else get_registry()
    out: Dict[str, Dict[str, Dict]] = {}
    with reg._lock:
        series = [
            metric
            for metric in reg._metrics.values()
            if isinstance(metric, HistogramMetric)
            and metric.name == VIDEO_STAGE_METRIC
        ]
    for metric in series:
        labels = dict(metric.labels)
        stage = labels.get("stage", "?")
        level = labels.get("level", "?")
        data = metric.snapshot()
        out.setdefault(stage, {})[level] = {
            key: data[key]
            for key in ("count", "sum", "mean", "p50", "p99", "max")
        }
    return out


__all__ = [
    "VIDEO_STAGE_METRIC",
    "RequestTrace",
    "assemble_traces",
    "export_chrome_trace",
    "frame_stage_breakdown",
    "to_chrome_trace",
    "validate_chrome_trace",
]
