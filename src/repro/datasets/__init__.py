"""Synthetic pedestrian data standing in for the INRIA Person dataset.

The paper trains and evaluates on INRIA Person (2,416 positive person
images and 12,180 negatives for training). That data cannot ship here, so
:mod:`repro.datasets.synthetic_person` procedurally renders scenes with
the gradient statistics the experiments exercise: articulated person
silhouettes (head / shoulders / torso / legs, either polarity of
contrast) over textured backgrounds with pole- and blob-shaped clutter —
the classic sources of HoG false positives.

Every generator takes a seed, so train/test splits are reproducible. See
DESIGN.md for the substitution rationale: the experiments compare feature
*extractors* on a fixed detection task, and any dataset where oriented
gradients separate people from clutter exercises identical code paths.
"""

from repro.datasets.synthetic_person import (
    Annotation,
    DatasetConfig,
    Scene,
    SyntheticPersonDataset,
    person_silhouette,
    window_aligned_box,
)

__all__ = [
    "Annotation",
    "DatasetConfig",
    "Scene",
    "SyntheticPersonDataset",
    "person_silhouette",
    "window_aligned_box",
]
