"""Procedural pedestrian scenes with exact ground truth."""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.rng import RngLike, resolve_rng

WINDOW_HEIGHT = 128
WINDOW_WIDTH = 64
"""The detection window is 64x128 pixels, as in the paper."""

_PERSON_WINDOW_FILL = 0.75
"""Fraction of the window height a normalised training person occupies."""


@dataclass(frozen=True)
class Annotation:
    """A ground-truth person box in pixel coordinates.

    Attributes:
        x: left edge.
        y: top edge.
        width: box width.
        height: box height.
    """

    x: float
    y: float
    width: float
    height: float

    def as_array(self) -> np.ndarray:
        """``[x, y, width, height]`` as floats."""
        return np.array([self.x, self.y, self.width, self.height], dtype=np.float64)


@dataclass
class Scene:
    """An image plus its person annotations.

    Attributes:
        image: grayscale float image in ``[0, 1]``.
        annotations: ground-truth boxes (empty for negative scenes).
    """

    image: np.ndarray
    annotations: List[Annotation] = field(default_factory=list)


@dataclass(frozen=True)
class DatasetConfig:
    """Knobs of the synthetic generator.

    Attributes:
        person_contrast: minimum |person - background| intensity gap.
        noise_sigma: additive Gaussian pixel noise.
        clutter_poles: mean number of vertical pole distractors per scene.
        clutter_blobs: mean number of soft blob distractors per scene.
        blur_radius: box-blur radius applied to rendered scenes.
    """

    person_contrast: float = 0.3
    noise_sigma: float = 0.03
    clutter_poles: float = 2.0
    clutter_blobs: float = 3.0
    blur_radius: int = 1


def _box_blur(image: np.ndarray, radius: int) -> np.ndarray:
    """Separable box blur; radius 0 is the identity."""
    if radius <= 0:
        return image
    kernel = np.ones(2 * radius + 1) / (2 * radius + 1)
    padded = np.pad(image, radius, mode="edge")
    blurred = np.apply_along_axis(
        lambda row: np.convolve(row, kernel, mode="valid"), 1, padded
    )
    blurred = np.apply_along_axis(
        lambda col: np.convolve(col, kernel, mode="valid"), 0, blurred
    )
    return blurred


def _person_mask(height: int, rng: np.random.Generator) -> np.ndarray:
    """A soft [0, 1] silhouette of an upright person, ``height`` px tall.

    Anatomy is parametric with per-sample jitter: circular head, trapezoid
    torso tapering from shoulders to waist, two legs with a walking
    stance, and thin arms. Width is ~0.42 of the height.
    """
    width = max(8, int(round(0.42 * height)))
    ys, xs = np.mgrid[0:height, 0:width].astype(np.float64)
    ys /= height
    xs = (xs - width / 2.0) / height  # centered, in person-height units
    mask = np.zeros((height, width), dtype=np.float64)

    lean = rng.uniform(-0.02, 0.02)
    xs = xs - lean * (ys - 0.5)

    # Head.
    head_r = rng.uniform(0.065, 0.085)
    head_y = 0.02 + head_r
    mask = np.maximum(mask, ((xs**2 + (ys - head_y) ** 2) < head_r**2).astype(float))

    # Torso: shoulders to waist.
    shoulder_y = head_y + head_r + rng.uniform(0.0, 0.02)
    waist_y = rng.uniform(0.50, 0.56)
    shoulder_w = rng.uniform(0.13, 0.17)
    waist_w = rng.uniform(0.085, 0.11)
    span = np.clip((ys - shoulder_y) / max(waist_y - shoulder_y, 1e-6), 0.0, 1.0)
    torso_half = shoulder_w * (1 - span) + waist_w * span
    torso = (ys >= shoulder_y) & (ys <= waist_y) & (np.abs(xs) <= torso_half)
    mask = np.maximum(mask, torso.astype(float))

    # Legs: from the waist to the feet, with a stance angle.
    stance = rng.uniform(0.01, 0.07)
    leg_w = rng.uniform(0.035, 0.05)
    for side in (-1.0, 1.0):
        progress = np.clip((ys - waist_y) / max(1.0 - waist_y, 1e-6), 0.0, 1.0)
        center = side * (0.045 + stance * progress)
        leg = (ys > waist_y) & (ys <= 0.99) & (np.abs(xs - center) <= leg_w)
        mask = np.maximum(mask, leg.astype(float))

    # Arms: thin limbs from the shoulders, slightly away from the torso.
    arm_w = rng.uniform(0.02, 0.03)
    arm_end = rng.uniform(0.45, 0.55)
    swing = rng.uniform(0.0, 0.05)
    for side in (-1.0, 1.0):
        progress = np.clip(
            (ys - shoulder_y) / max(arm_end - shoulder_y, 1e-6), 0.0, 1.0
        )
        center = side * (shoulder_w + arm_w + swing * progress)
        arm = (ys >= shoulder_y) & (ys <= arm_end) & (np.abs(xs - center) <= arm_w)
        mask = np.maximum(mask, arm.astype(float))

    return mask


def person_silhouette(height: int, rng: RngLike = 0) -> np.ndarray:
    """A soft [0, 1] upright-person silhouette, ``height`` px tall.

    Public wrapper of the parametric mask the dataset pastes into its
    scenes; the video synthesiser (``repro.video.synthesis``) draws one
    mask per person and translates it between frames so a person keeps
    the same appearance as they move.

    Args:
        height: silhouette height in pixels (width is ~0.42 * height).
        rng: randomness for the anatomical jitter.
    """
    return _person_mask(height, resolve_rng(rng))


def window_aligned_box(top: int, left: int, mask_shape: Tuple[int, int]) -> Annotation:
    """The INRIA-style ground-truth box of a pasted silhouette.

    Annotations are window-aligned: the box a perfect 64x128 detector
    would output, i.e. the silhouette inflated to the training-crop
    proportions (person ~75% of window height, 1:2 aspect) and centered
    on the person. Shared by :class:`SyntheticPersonDataset` and the
    video-sequence synthesiser so both produce identical ground truth
    for identically-placed persons.

    Args:
        top: silhouette top edge in image pixels.
        left: silhouette left edge.
        mask_shape: ``(height, width)`` of the silhouette mask.
    """
    mh, mw = mask_shape
    box_h = mh / _PERSON_WINDOW_FILL
    box_w = box_h * (WINDOW_WIDTH / WINDOW_HEIGHT)
    center_x = left + mw / 2.0
    center_y = top + mh / 2.0
    return Annotation(
        x=float(center_x - box_w / 2.0),
        y=float(center_y - box_h / 2.0),
        width=float(box_w),
        height=float(box_h),
    )


def _textured_background(
    shape: Tuple[int, int], config: DatasetConfig, rng: np.random.Generator
) -> np.ndarray:
    """Low-frequency texture plus clutter distractors."""
    height, width = shape
    base = rng.uniform(0.25, 0.75)
    image = np.full(shape, base, dtype=np.float64)

    # Smooth illumination gradient.
    angle = rng.uniform(0.0, 2 * np.pi)
    ys, xs = np.mgrid[0:height, 0:width].astype(np.float64)
    ramp = (np.cos(angle) * xs / max(width, 1) - np.sin(angle) * ys / max(height, 1))
    image += rng.uniform(0.0, 0.25) * ramp

    # Soft blobs (bushes, shadows).
    for _ in range(rng.poisson(config.clutter_blobs)):
        cy = rng.uniform(0, height)
        cx = rng.uniform(0, width)
        radius = rng.uniform(0.05, 0.25) * max(height, width)
        amplitude = rng.uniform(-0.25, 0.25)
        image += amplitude * np.exp(-(((ys - cy) ** 2 + (xs - cx) ** 2) / radius**2))

    # Vertical poles (lamp posts, trunks) - classic HoG false positives.
    for _ in range(rng.poisson(config.clutter_poles)):
        x0 = rng.integers(0, max(width - 3, 1))
        pole_w = int(rng.integers(2, 6))
        y0 = rng.integers(0, max(height // 3, 1))
        y1 = rng.integers(min(y0 + height // 3, height - 1), height)
        amplitude = rng.uniform(-0.35, 0.35)
        image[y0:y1, x0 : min(x0 + pole_w, width)] += amplitude

    image += rng.normal(0.0, 0.04, size=shape)
    return np.clip(image, 0.0, 1.0)


class SyntheticPersonDataset:
    """Reproducible generator of INRIA-like training and test material.

    Args:
        config: rendering knobs.
        rng: master seed/generator; every method draws from it, so call
            order matters for exact reproduction — construct one dataset
            per experiment with a fixed seed.
    """

    def __init__(
        self, config: DatasetConfig = DatasetConfig(), rng: RngLike = 0
    ) -> None:
        self.config = config
        self._rng = resolve_rng(rng)

    # ------------------------------------------------------------------
    def positive_window(self) -> np.ndarray:
        """One 128x64 window with a centered person (~96 px tall)."""
        scene = self._render_window_scene()
        return scene.image

    def positive_windows(self, count: int) -> np.ndarray:
        """``(count, 128, 64)`` stacked positive windows."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return np.stack([self.positive_window() for _ in range(count)]) if count else (
            np.zeros((0, WINDOW_HEIGHT, WINDOW_WIDTH))
        )

    def negative_image(self, shape: Tuple[int, int] = (240, 320)) -> np.ndarray:
        """A person-free textured scene."""
        return _box_blur(
            _textured_background(shape, self.config, self._rng),
            self.config.blur_radius,
        )

    def negative_images(
        self, count: int, shape: Tuple[int, int] = (240, 320)
    ) -> List[np.ndarray]:
        """``count`` person-free scenes."""
        return [self.negative_image(shape) for _ in range(count)]

    def negative_windows(self, count: int) -> np.ndarray:
        """``(count, 128, 64)`` windows cropped from negative scenes."""
        windows = []
        while len(windows) < count:
            image = self.negative_image((WINDOW_HEIGHT * 2, WINDOW_WIDTH * 4))
            for _ in range(4):
                if len(windows) >= count:
                    break
                y = int(self._rng.integers(0, image.shape[0] - WINDOW_HEIGHT + 1))
                x = int(self._rng.integers(0, image.shape[1] - WINDOW_WIDTH + 1))
                windows.append(
                    image[y : y + WINDOW_HEIGHT, x : x + WINDOW_WIDTH].copy()
                )
        return np.stack(windows) if windows else np.zeros(
            (0, WINDOW_HEIGHT, WINDOW_WIDTH)
        )

    def test_scene(
        self,
        shape: Tuple[int, int] = (240, 320),
        max_people: int = 2,
    ) -> Scene:
        """A scene with 0..max_people persons and exact annotations."""
        if max_people < 0:
            raise ValueError(f"max_people must be >= 0, got {max_people}")
        rng = self._rng
        image = _textured_background(shape, self.config, rng)
        annotations: List[Annotation] = []
        n_people = int(rng.integers(0, max_people + 1))
        for _ in range(n_people):
            # Keep the window-aligned annotation (person / 0.75) inside
            # the detector's pyramid reach: at least one window (>= 128 px
            # after inflation) and at most ~90% of the scene height.
            smallest = int(_PERSON_WINDOW_FILL * WINDOW_HEIGHT * 0.95)
            largest = max(smallest + 1, int(0.68 * shape[0]))
            person_h = int(rng.uniform(smallest, largest))
            annotation = self._paste_person(image, person_h, rng, annotations)
            if annotation is not None:
                annotations.append(annotation)
        image = _box_blur(image, self.config.blur_radius)
        image = np.clip(
            image + rng.normal(0.0, self.config.noise_sigma, size=shape), 0.0, 1.0
        )
        return Scene(image=image, annotations=annotations)

    def test_scenes(
        self,
        count: int,
        shape: Tuple[int, int] = (240, 320),
        max_people: int = 2,
    ) -> List[Scene]:
        """``count`` annotated test scenes."""
        return [self.test_scene(shape, max_people) for _ in range(count)]

    # ------------------------------------------------------------------
    def _render_window_scene(self) -> Scene:
        """A normalised positive window, INRIA-crop style."""
        rng = self._rng
        image = _textured_background(
            (WINDOW_HEIGHT, WINDOW_WIDTH), self.config, rng
        )
        person_h = int(rng.uniform(0.70, 0.80) * WINDOW_HEIGHT)
        annotation = self._paste_person(image, person_h, rng, [], centered=True)
        image = _box_blur(image, self.config.blur_radius)
        image = np.clip(
            image + rng.normal(0.0, self.config.noise_sigma, size=image.shape),
            0.0,
            1.0,
        )
        annotations = [annotation] if annotation is not None else []
        return Scene(image=image, annotations=annotations)

    def _paste_person(
        self,
        image: np.ndarray,
        person_h: int,
        rng: np.random.Generator,
        existing: List[Annotation],
        centered: bool = False,
    ) -> Optional[Annotation]:
        """Blend a person silhouette into ``image``; returns its box."""
        mask = _person_mask(person_h, rng)
        mh, mw = mask.shape
        height, width = image.shape
        if mh >= height or mw >= width:
            return None
        if centered:
            top = (height - mh) // 2
            left = (width - mw) // 2
        else:
            placed = False
            for _ in range(8):  # rejection-sample a spot away from others
                top = int(rng.integers(0, height - mh))
                left = int(rng.integers(0, width - mw))
                candidate = (left, top, mw, mh)
                if all(
                    _overlap(candidate, (a.x, a.y, a.width, a.height)) < 0.3
                    for a in existing
                ):
                    placed = True
                    break
            if not placed:
                return None

        region = image[top : top + mh, left : left + mw]
        background_level = float(region.mean())
        polarity = 1.0 if rng.random() < 0.5 else -1.0
        person_level = np.clip(
            background_level
            + polarity * (self.config.person_contrast + rng.uniform(0.0, 0.25)),
            0.02,
            0.98,
        )
        texture = rng.normal(0.0, 0.02, size=mask.shape)
        region[...] = region * (1.0 - mask) + (person_level + texture) * mask

        return window_aligned_box(top, left, mask.shape)


def _overlap(a: Tuple[float, float, float, float], b: Tuple[float, float, float, float]) -> float:
    """Intersection-over-union of two (x, y, w, h) boxes."""
    ax, ay, aw, ah = a
    bx, by, bw, bh = b
    ix = max(0.0, min(ax + aw, bx + bw) - max(ax, bx))
    iy = max(0.0, min(ay + ah, by + bh) - max(ay, by))
    intersection = ix * iy
    union = aw * ah + bw * bh - intersection
    return intersection / union if union > 0 else 0.0


__all__ = [
    "Annotation",
    "DatasetConfig",
    "Scene",
    "SyntheticPersonDataset",
    "WINDOW_HEIGHT",
    "WINDOW_WIDTH",
    "person_silhouette",
    "window_aligned_box",
]
