"""Monolithic pixels-to-decision Eedn networks and their failure modes."""

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.eedn.layers import ThresholdActivation, TrinaryDense
from repro.eedn.mapping import core_count
from repro.eedn.network import EednNetwork
from repro.eedn.train import TrainConfig, TrainResult, train_network
from repro.utils.rng import RngLike, resolve_rng

INPUT_PIXELS = 128 * 64
"""A raw 64x128 window flattened (the monolithic network's input)."""


def build_absorbed_network(
    hidden: Tuple[int, ...] = (1024, 256),
    rng: RngLike = None,
) -> EednNetwork:
    """The monolithic raw-pixels classifier.

    The default widths give a core footprint in the same regime as the
    paper's combined 3,888-core budget under the standard mapping (the
    8192-line input alone forces a large partial-sum tree).

    Args:
        hidden: hidden-layer widths.
        rng: initialisation randomness.

    Returns:
        An untrained network ``8192 -> hidden... -> 2``.
    """
    generator = resolve_rng(rng)
    layers: List = []
    previous = INPUT_PIXELS
    for width in hidden:
        layers.append(TrinaryDense(previous, width, rng=generator))
        layers.append(ThresholdActivation(0.0, ste_window=4.0))
        previous = width
    layers.append(TrinaryDense(previous, 2, rng=generator))
    return EednNetwork(layers)


@dataclass
class AbsorbedOutcome:
    """Result of one absorbed-training experiment.

    Attributes:
        train_result: the raw training history (including the blind
            flag computed on the training set).
        test_accuracy: accuracy on held-out windows.
        test_majority_fraction: fraction of test predictions in the most
            common class — near 1.0 means blind decisions.
        blind: the paper's failure mode — (almost) every test prediction
            is the same class.
        useful: learned something: not blind AND meaningfully above
            chance on the test set.
        cores: estimated TrueNorth cores of the network.
        n_train: training windows used.
    """

    train_result: TrainResult
    test_accuracy: float
    test_majority_fraction: float
    blind: bool
    useful: bool
    cores: int
    n_train: int


def run_absorbed_experiment(
    train_windows: np.ndarray,
    train_labels: np.ndarray,
    test_windows: np.ndarray,
    test_labels: np.ndarray,
    network: Optional[EednNetwork] = None,
    config: Optional[TrainConfig] = None,
    rng: RngLike = 0,
    blind_threshold: float = 0.9,
) -> AbsorbedOutcome:
    """Train a monolithic network on raw windows and diagnose the result.

    Args:
        train_windows: ``(n, 128, 64)`` or ``(n, 8192)`` raw pixels.
        train_labels: ``(n,)`` 0/1 labels.
        test_windows: held-out windows.
        test_labels: held-out labels.
        network: the monolithic network (default
            :func:`build_absorbed_network`).
        config: training hyperparameters (defaults mirror the HoG
            classifier training, per the paper's iso-setup comparison).
        rng: randomness.
        blind_threshold: majority fraction above which predictions count
            as blind.

    Returns:
        An :class:`AbsorbedOutcome`.
    """
    generator = resolve_rng(rng)
    x_train = np.asarray(train_windows, dtype=np.float64).reshape(
        len(train_windows), -1
    )
    x_test = np.asarray(test_windows, dtype=np.float64).reshape(len(test_windows), -1)
    y_train = np.asarray(train_labels, dtype=np.int64)
    y_test = np.asarray(test_labels, dtype=np.int64)
    if network is None:
        network = build_absorbed_network(rng=generator)
    if config is None:
        config = TrainConfig(epochs=15, learning_rate=0.01, logit_scale=8.0)

    result = train_network(
        network, x_train, y_train, config, rng=generator, blind_threshold=blind_threshold
    )
    predictions = network.predict(x_test)
    accuracy = float((predictions == y_test).mean())
    majority = float(np.bincount(predictions, minlength=2).max() / len(predictions))
    blind = majority >= blind_threshold
    cores, _ = core_count(network, (x_train.shape[1],))
    return AbsorbedOutcome(
        train_result=result,
        test_accuracy=accuracy,
        test_majority_fraction=majority,
        blind=blind,
        useful=(not blind) and accuracy >= 0.65,
        cores=cores,
        n_train=len(x_train),
    )


def training_size_sweep(
    windows: np.ndarray,
    labels: np.ndarray,
    test_windows: np.ndarray,
    test_labels: np.ndarray,
    sizes: Tuple[int, ...] = (100, 300, 1000),
    rng: RngLike = 0,
) -> List[AbsorbedOutcome]:
    """The paper's diagnosis, quantified: blind/chance behaviour at small
    training sets, improving as data grows.

    Args:
        windows: pool of labelled training windows (both classes).
        labels: matching 0/1 labels.
        test_windows: held-out windows.
        test_labels: held-out labels.
        sizes: training subset sizes to sweep.
        rng: randomness (subset sampling, init, shuffling).

    Returns:
        One :class:`AbsorbedOutcome` per size, in order.
    """
    generator = resolve_rng(rng)
    pool = np.asarray(windows, dtype=np.float64).reshape(len(windows), -1)
    y = np.asarray(labels, dtype=np.int64)
    outcomes = []
    for size in sizes:
        if size > len(pool):
            raise ValueError(f"requested {size} windows but pool has {len(pool)}")
        subset = generator.choice(len(pool), size=size, replace=False)
        outcomes.append(
            run_absorbed_experiment(
                pool[subset],
                y[subset],
                test_windows,
                test_labels,
                rng=generator,
            )
        )
    return outcomes


__all__ = [
    "AbsorbedOutcome",
    "INPUT_PIXELS",
    "build_absorbed_network",
    "run_absorbed_experiment",
    "training_size_sweep",
]
