"""The Absorbed approach: feature extraction folded into classification.

The paper's final comparison point is "a raw-image to classification
system that doesn't impose particular feature extraction semantics",
given the combined resource budget of extractor + classifier (3,888
cores) and the same training set (Section 3.3). Its reported outcome:
"the resultant network always makes blind decisions (all-positive or
all-negative), meaning that this combination of network configuration and
training set do not converge to a useful learned response" —
over-fitting suspected because the training set is insufficient for the
network size needed to process 64x128-pixel inputs (Section 5.1).

:mod:`repro.absorbed.monolithic` builds the monolithic pixels-to-decision
Eedn network and runs the convergence experiment, including the
training-set-size sweep behind that diagnosis.
"""

from repro.absorbed.monolithic import (
    AbsorbedOutcome,
    build_absorbed_network,
    run_absorbed_experiment,
    training_size_sweep,
)

__all__ = [
    "AbsorbedOutcome",
    "build_absorbed_network",
    "run_absorbed_experiment",
    "training_size_sweep",
]
