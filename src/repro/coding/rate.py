"""Deterministic rate coding: spikes spread evenly across the window."""

import numpy as np

from repro.coding.base import SpikeEncoder
from repro.utils.rng import RngLike


class RateEncoder(SpikeEncoder):
    """Encode each value as ``round(value * ticks)`` evenly spaced spikes.

    Even spacing (a Bresenham-style accumulator) keeps instantaneous rates
    close to the target value throughout the window, which matters when
    downstream neurons integrate over sub-windows.
    """

    def encode(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """See :meth:`SpikeEncoder.encode`; ``rng`` is ignored."""
        arr = self._validate(values)
        counts = np.round(arr * self.ticks).astype(np.int64)
        raster = np.zeros((self.ticks, arr.size), dtype=bool)
        ticks = np.arange(self.ticks)
        for column, count in enumerate(counts):
            if count <= 0:
                continue
            # Place spike k at floor(k * ticks / count): even spacing, first
            # spike at tick 0, never two spikes on the same tick.
            positions = (np.arange(count) * self.ticks) // count
            raster[positions, column] = True
        del ticks
        return raster


__all__ = ["RateEncoder"]
