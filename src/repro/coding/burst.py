"""Burst coding: all of a value's spikes arrive at the start of the window."""

import numpy as np

from repro.coding.base import SpikeEncoder
from repro.utils.rng import RngLike


class BurstEncoder(SpikeEncoder):
    """Encode each value as a prefix burst of ``round(value * ticks)`` spikes.

    Burst coding minimises the latency until the full value has been
    delivered, at the cost of a bursty instantaneous rate. It decodes
    identically to rate coding (count / window).
    """

    def encode(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """See :meth:`SpikeEncoder.encode`; ``rng`` is ignored."""
        arr = self._validate(values)
        counts = np.round(arr * self.ticks).astype(np.int64)
        tick_index = np.arange(self.ticks)[:, None]
        return tick_index < counts[None, :]


__all__ = ["BurstEncoder"]
