"""Spike-coding schemes for presenting scalar data to TrueNorth.

The paper's designs exchange values as spike counts inside a fixed window
of ticks: the NApprox HoG uses a 64-spike (6-bit) representation, and the
Parrot HoG explores stochastic codings from 32 spikes down to a single
spike per value (Figure 6, Table 2).

Three families are provided:

- :class:`RateEncoder` — deterministic, evenly spaced spikes; lowest
  decode variance for a given window;
- :class:`StochasticEncoder` — independent Bernoulli spikes with firing
  probability proportional to the value, matching the paper's
  "stochastic coding representation";
- :class:`BurstEncoder` — all spikes up front, useful for latency-
  sensitive pipelines.

All encoders share the window-based interface: ``encode`` maps values in
``[0, 1]`` to a boolean raster of shape ``(ticks, n_values)`` and
``decode`` maps rasters back to value estimates.
"""

from repro.coding.base import SpikeEncoder, precision_bits, spikes_for_bits
from repro.coding.rate import RateEncoder
from repro.coding.stochastic import StochasticEncoder
from repro.coding.burst import BurstEncoder
from repro.coding.quantize import dequantize_counts, quantize_to_counts, quantize_uniform
from repro.coding.analysis import (
    CodingNoiseReport,
    measure_decode_noise,
    rate_decode_bound,
    stochastic_decode_std,
)

__all__ = [
    "BurstEncoder",
    "CodingNoiseReport",
    "RateEncoder",
    "SpikeEncoder",
    "StochasticEncoder",
    "dequantize_counts",
    "measure_decode_noise",
    "precision_bits",
    "quantize_to_counts",
    "quantize_uniform",
    "rate_decode_bound",
    "spikes_for_bits",
    "stochastic_decode_std",
]
