"""Quantisation helpers shared by the fixed-point and spiking pipelines."""

import numpy as np


def quantize_uniform(values: np.ndarray, levels: int) -> np.ndarray:
    """Quantise values in ``[0, 1]`` onto ``levels`` evenly spaced levels.

    Args:
        values: array of values in ``[0, 1]``.
        levels: number of representable levels (>= 2); level spacing is
            ``1 / (levels - 1)``.

    Returns:
        Array of the same shape, with every entry snapped to a level.
    """
    if levels < 2:
        raise ValueError(f"levels must be >= 2, got {levels}")
    arr = np.clip(np.asarray(values, dtype=np.float64), 0.0, 1.0)
    return np.round(arr * (levels - 1)) / (levels - 1)


def quantize_to_counts(values: np.ndarray, window: int) -> np.ndarray:
    """Map values in ``[0, 1]`` to integer spike counts in ``[0, window]``."""
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    arr = np.clip(np.asarray(values, dtype=np.float64), 0.0, 1.0)
    return np.round(arr * window).astype(np.int64)


def dequantize_counts(counts: np.ndarray, window: int) -> np.ndarray:
    """Invert :func:`quantize_to_counts` (count / window)."""
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    arr = np.asarray(counts, dtype=np.float64)
    if arr.size and (arr.min() < 0 or arr.max() > window):
        raise ValueError(f"counts must lie in [0, {window}]")
    return arr / float(window)


def to_fixed_point(values: np.ndarray, fractional_bits: int) -> np.ndarray:
    """Convert floats to signed fixed point with ``fractional_bits`` bits."""
    if fractional_bits < 0:
        raise ValueError(f"fractional_bits must be >= 0, got {fractional_bits}")
    scale = float(1 << fractional_bits)
    return np.round(np.asarray(values, dtype=np.float64) * scale).astype(np.int64)


def from_fixed_point(values: np.ndarray, fractional_bits: int) -> np.ndarray:
    """Invert :func:`to_fixed_point`."""
    if fractional_bits < 0:
        raise ValueError(f"fractional_bits must be >= 0, got {fractional_bits}")
    scale = float(1 << fractional_bits)
    return np.asarray(values, dtype=np.float64) / scale


__all__ = [
    "dequantize_counts",
    "from_fixed_point",
    "quantize_to_counts",
    "quantize_uniform",
    "to_fixed_point",
]
