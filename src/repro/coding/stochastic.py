"""Stochastic (Bernoulli) coding, the paper's low-power representation.

"Parrot HoG operates with stochastic input signals ... the representation
of the signals and features can be as simple as 1-spike with the
probability proportional to the value" (paper, Section 1). With a window
of N ticks the decoded value is a binomial estimate with standard error
``sqrt(v * (1 - v) / N)``.
"""

import numpy as np

from repro.coding.base import SpikeEncoder
from repro.utils.rng import RngLike, resolve_rng


class StochasticEncoder(SpikeEncoder):
    """Each tick fires independently with probability equal to the value."""

    def encode(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """See :meth:`SpikeEncoder.encode`.

        Args:
            values: 1-D array in ``[0, 1]``.
            rng: randomness source; pass a seed for reproducibility.
        """
        arr = self._validate(values)
        generator = resolve_rng(rng)
        draws = generator.random((self.ticks, arr.size))
        return draws < arr[None, :]


__all__ = ["StochasticEncoder"]
