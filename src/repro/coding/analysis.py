"""Decode-noise analysis of the spike codings.

The Figure 6 trade-off is at bottom a signal-to-noise question: an
N-tick stochastic code estimates a value with binomial standard error
``sqrt(v (1 - v) / N)``, while deterministic rate coding only carries
the ``1/(2N)`` rounding error. These closed forms (and their empirical
verification in the tests) explain why 32-spike parrot features track
the analog network and 1-spike features are noisy.
"""

import math
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.coding.base import SpikeEncoder
from repro.coding.stochastic import StochasticEncoder
from repro.utils.rng import RngLike, resolve_rng


def stochastic_decode_std(value: float, ticks: int) -> float:
    """Standard error of an N-tick Bernoulli code's decoded value."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"value must be in [0, 1], got {value}")
    if ticks < 1:
        raise ValueError(f"ticks must be >= 1, got {ticks}")
    return math.sqrt(value * (1.0 - value) / ticks)


def rate_decode_bound(ticks: int) -> float:
    """Worst-case decode error of deterministic rate coding: 1/(2N)."""
    if ticks < 1:
        raise ValueError(f"ticks must be >= 1, got {ticks}")
    return 0.5 / ticks


def required_ticks_for_std(value: float, target_std: float) -> int:
    """Ticks a stochastic code needs to reach a target standard error."""
    if target_std <= 0:
        raise ValueError(f"target_std must be positive, got {target_std}")
    variance = value * (1.0 - value)
    if variance == 0.0:
        return 1
    return max(1, math.ceil(variance / target_std**2))


@dataclass(frozen=True)
class CodingNoiseReport:
    """Measured decode noise of one encoder at one window length.

    Attributes:
        ticks: window length.
        empirical_rmse: root-mean-square decode error over the probe set.
        predicted_rmse: closed-form prediction (binomial for stochastic,
            uniform rounding for rate coding).
    """

    ticks: int
    empirical_rmse: float
    predicted_rmse: float


def measure_decode_noise(
    encoder: SpikeEncoder,
    n_values: int = 256,
    rng: RngLike = 0,
) -> CodingNoiseReport:
    """Empirically measure an encoder's decode error.

    Args:
        encoder: the codec under test.
        n_values: probe values, uniform in [0, 1].
        rng: randomness for probes and stochastic encoding.

    Returns:
        A :class:`CodingNoiseReport` with measured and predicted RMSE.
    """
    generator = resolve_rng(rng)
    values = generator.random(n_values)
    raster = encoder.encode(values, rng=generator)
    decoded = encoder.decode(raster)
    empirical = float(np.sqrt(np.mean((decoded - values) ** 2)))

    if isinstance(encoder, StochasticEncoder):
        predicted = float(
            np.sqrt(np.mean(values * (1.0 - values) / encoder.ticks))
        )
    else:
        # Rounding to the nearest 1/N grid: uniform error on [-1/2N, 1/2N].
        predicted = 1.0 / (encoder.ticks * math.sqrt(12.0))
    return CodingNoiseReport(
        ticks=encoder.ticks, empirical_rmse=empirical, predicted_rmse=predicted
    )


def precision_sweep_noise(
    windows=(1, 2, 4, 8, 16, 32, 64), rng: RngLike = 0
) -> Dict[int, CodingNoiseReport]:
    """Decode-noise reports for stochastic coding across Figure 6's sweep."""
    generator = resolve_rng(rng)
    return {
        window: measure_decode_noise(StochasticEncoder(window), rng=generator)
        for window in windows
    }


__all__ = [
    "CodingNoiseReport",
    "measure_decode_noise",
    "precision_sweep_noise",
    "rate_decode_bound",
    "required_ticks_for_std",
    "stochastic_decode_std",
]
