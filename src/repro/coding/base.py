"""Shared interface for window-based spike encoders."""

import abc
import math

import numpy as np

from repro.utils.rng import RngLike


def precision_bits(n_spikes: int) -> int:
    """Equivalent fixed-point resolution of an ``n_spikes`` window.

    The paper labels the 64-spike representation 6-bit, 32-spike 5-bit,
    4-spike 2-bit and 1-spike 1-bit, i.e. ``log2(n)`` clamped to >= 1.
    """
    if n_spikes < 1:
        raise ValueError(f"n_spikes must be >= 1, got {n_spikes}")
    return max(1, int(round(math.log2(n_spikes))))


def spikes_for_bits(bits: int) -> int:
    """Window length that provides ``bits`` bits of resolution (2**bits)."""
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    return 2**bits


class SpikeEncoder(abc.ABC):
    """A value <-> spike-raster codec over a fixed window of ticks.

    Args:
        ticks: window length; the "N-spike representation" of the paper.
    """

    def __init__(self, ticks: int) -> None:
        if ticks < 1:
            raise ValueError(f"ticks must be >= 1, got {ticks}")
        self.ticks = ticks

    @property
    def bits(self) -> int:
        """Equivalent fixed-point resolution of the window."""
        return precision_bits(self.ticks)

    @abc.abstractmethod
    def encode(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Encode ``values`` (each in ``[0, 1]``) into a spike raster.

        Args:
            values: 1-D array of n values.
            rng: randomness source (ignored by deterministic encoders).

        Returns:
            Boolean raster of shape ``(ticks, n)``.
        """

    def decode(self, raster: np.ndarray) -> np.ndarray:
        """Estimate values from a raster: spike count / window length."""
        arr = np.asarray(raster)
        if arr.ndim != 2 or arr.shape[0] != self.ticks:
            raise ValueError(
                f"raster must be ({self.ticks}, n), got {arr.shape}"
            )
        return arr.astype(np.float64).sum(axis=0) / float(self.ticks)

    def _validate(self, values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError(f"values must be 1-D, got shape {arr.shape}")
        if arr.size and (arr.min() < -1e-9 or arr.max() > 1 + 1e-9):
            raise ValueError(
                f"values must lie in [0, 1], got range [{arr.min()}, {arr.max()}]"
            )
        return np.clip(arr, 0.0, 1.0)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(ticks={self.ticks})"


__all__ = ["SpikeEncoder", "precision_bits", "spikes_for_bits"]
