"""The frame-level streaming pipeline: pyramid -> cells -> serve -> NMS.

Each frame is decomposed into an image pyramid, every level's cell grid
is swept into detection-window feature rows
(:func:`~repro.detection.pipeline.sliding_window_features`), the rows
are pooled to the deployable feature width and fanned out as individual
requests to an :class:`~repro.serve.InferenceService` (or its sharded
variant), and the thresholded scores are reassembled into per-frame
detections through the paper's greedy NMS.

Levels are scored **coarsest first**. That ordering is what makes the
per-frame deadline budget degrade gracefully: when the budget runs out
mid-frame, the levels not yet scored are exactly the finest (most
expensive) pyramid scales, so a late frame loses small-person
resolution instead of missing the frame entirely. Degraded frames are
counted on the ``video_degraded_frames_total`` registry counter and in
each :class:`FrameResult`.

Per-frame economics come from :class:`~repro.serve.ServiceStats`
deltas: cache hits/misses bracket each frame to give the frame's LRU
hit rate (the cross-frame temporal-locality signal), and the attributed
energy counter gives joules/frame through the existing
energy-attribution layer — no separate accounting path.
"""

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.detection.evaluate import DetectionCurve, evaluate_detections
from repro.detection.nms import non_maximum_suppression
from repro.detection.pipeline import Detection, sliding_window_features
from repro.detection.pyramid import ImagePyramid
from repro.obs import (
    SPAN_BUCKETS,
    MetricsRegistry,
    get_registry,
    new_trace_id,
    span,
    trace_context,
)
from repro.obs.traces import VIDEO_STAGE_METRIC
from repro.video.synthesis import VideoSequence


@dataclass(frozen=True)
class VideoPipelineConfig:
    """Knobs of the streaming frame pipeline.

    Attributes:
        window_shape: detection window in pixels (the paper's 128x64).
        scale_factor: pyramid step between levels.
        max_levels: pyramid depth cap (6 scales for the paper's full-HD
            deployment).
        pool: cells averaged per pooled feature, ``(y, x)`` — the same
            reduction the fault sweep uses to fit the 128-input
            deployment budget.
        bin_merge: adjacent orientation bins summed per merged bin.
        feature_scale: multiplier mapping pooled counts into the [0, 1]
            firing-probability range content coding expects (see
            :func:`~repro.video.workload.calibrated_feature_scale`).
        score_threshold: minimum served margin to emit a detection.
        nms_epsilon: NMS overlap threshold (0.2 in the paper).
        deadline_ms: per-frame scoring budget; ``None`` disables
            degradation. The budget is checked between levels, so at
            least :attr:`min_levels` coarse levels always score.
        min_levels: levels always scored regardless of the deadline
            (>= 1 — a frame never goes completely dark).
        timeout_s: optional per-request serve deadline forwarded to
            ``submit`` (distinct from the frame budget).
        max_inflight: window rows fanned out per ``score_many`` call.
            Full-frame pyramid levels hold more windows than the serve
            queue (256 slots by default), so the fan-out is chunked;
            chunking never changes scores, only submission pacing.
    """

    window_shape: Tuple[int, int] = (128, 64)
    scale_factor: float = 1.2
    max_levels: int = 6
    pool: Tuple[int, int] = (4, 2)
    bin_merge: int = 3
    feature_scale: float = 1.0
    score_threshold: float = 0.0
    nms_epsilon: float = 0.2
    deadline_ms: Optional[float] = None
    min_levels: int = 1
    timeout_s: Optional[float] = None
    max_inflight: int = 128


@dataclass
class FrameResult:
    """Everything measured while streaming one frame.

    Attributes:
        index: frame position in the sequence.
        trace_id: the frame's trace id — every ``video.*`` span the
            frame records carries it, so ``repro.obs.traces`` can
            assemble the frame's own trace tree.
        detections: NMS survivors mapped back to frame pixels.
        levels_total: pyramid levels the frame decomposes into.
        levels_scored: levels actually scored (== ``levels_total``
            unless the deadline degraded the frame).
        levels_dropped: finest levels skipped by the deadline budget.
        degraded: whether the frame lost at least one level.
        windows_scored: feature rows fanned out to the service.
        cache_hits: serve LRU hits attributed to this frame.
        cache_misses: serve LRU misses attributed to this frame.
        energy_joules: simulated energy attributed to this frame.
        seconds: wall-clock scoring time of the frame.
    """

    index: int
    trace_id: str = ""
    detections: List[Detection] = field(default_factory=list)
    levels_total: int = 0
    levels_scored: int = 0
    levels_dropped: int = 0
    degraded: bool = False
    windows_scored: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    energy_joules: float = 0.0
    seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        """LRU hits / lookups for this frame (0.0 before any lookup)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def detections_key(self) -> Tuple:
        """A hashable, bit-exact summary of the frame's detections.

        Used by the bench and tests to assert per-frame detections are
        identical across engines and worker counts.
        """
        return tuple(
            (d.x, d.y, d.width, d.height, d.score) for d in self.detections
        )


@dataclass
class VideoReport:
    """Aggregate view of one streamed sequence.

    Attributes:
        frames: per-frame results in order.
        curve: FPPI/miss-rate curve over the sequence (``None`` when the
            sequence carries no ground truth).
        seconds: total wall-clock scoring time.
    """

    frames: List[FrameResult]
    curve: Optional[DetectionCurve] = None
    seconds: float = 0.0

    @property
    def fps(self) -> float:
        """Frames per second over the whole run."""
        return len(self.frames) / self.seconds if self.seconds > 0 else 0.0

    @property
    def degraded_frames(self) -> int:
        """Frames that lost at least one pyramid level to the deadline."""
        return sum(1 for f in self.frames if f.degraded)

    @property
    def windows_scored(self) -> int:
        """Total feature rows fanned out across the sequence."""
        return sum(f.windows_scored for f in self.frames)

    @property
    def cache_hit_rate(self) -> float:
        """Aggregate LRU hit rate across every frame's lookups."""
        hits = sum(f.cache_hits for f in self.frames)
        lookups = hits + sum(f.cache_misses for f in self.frames)
        return hits / lookups if lookups else 0.0

    @property
    def joules_per_frame(self) -> float:
        """Mean attributed energy per frame."""
        if not self.frames:
            return 0.0
        return sum(f.energy_joules for f in self.frames) / len(self.frames)

    def as_dict(self) -> dict:
        """JSON-ready payload (the ``BENCH_video.json`` per-run shape)."""
        payload = {
            "frames": len(self.frames),
            "fps": self.fps,
            "seconds": self.seconds,
            "joules_per_frame": self.joules_per_frame,
            "cache_hit_rate": self.cache_hit_rate,
            "degraded_frames": self.degraded_frames,
            "windows_scored": self.windows_scored,
            "per_frame": [
                {
                    "index": f.index,
                    "detections": len(f.detections),
                    "levels_scored": f.levels_scored,
                    "levels_dropped": f.levels_dropped,
                    "cache_hit_rate": f.cache_hit_rate,
                    "energy_joules": f.energy_joules,
                }
                for f in self.frames
            ],
        }
        if self.curve is not None:
            payload["log_average_miss_rate"] = self.curve.log_average_miss_rate()
            payload["miss_rate_at_1_fppi"] = self.curve.miss_rate_at(1.0)
        return payload


def pool_feature_rows(
    features: np.ndarray,
    window_cells: Tuple[int, int],
    n_bins: int,
    pool: Tuple[int, int] = (4, 2),
    bin_merge: int = 3,
) -> np.ndarray:
    """Reduce raw window rows to the deployable pooled feature width.

    The same reduction as the fault sweep's ``pooled_window_features``
    — orientation bins summed in groups of ``bin_merge``, then cells
    average-pooled — but vectorised over already-swept window rows so
    the streaming pipeline pools a whole pyramid level at once. The
    defaults turn a ``(16, 8, 18)`` window grid into ``4 * 4 * 6 = 96``
    features, fitting the 128-input deployment budget of
    :func:`~repro.eedn.mapping.deploy_dense_network`.

    Args:
        features: ``(n, wy * wx * n_bins)`` raw window rows.
        window_cells: ``(wy, wx)`` window extent in cells.
        n_bins: orientation bins per cell.
        pool: cells averaged per pooled feature, ``(y, x)``.
        bin_merge: adjacent bins summed per merged bin (must divide
            ``n_bins``).

    Returns:
        ``(n, (wy // py) * (wx // px) * (n_bins // bin_merge))`` pooled
        rows.
    """
    wy, wx = window_cells
    py, px = pool
    if n_bins % bin_merge:
        raise ValueError(f"bin_merge {bin_merge} must divide n_bins {n_bins}")
    n = features.shape[0]
    grid = features.reshape(n, wy, wx, n_bins)
    if bin_merge > 1:
        grid = grid.reshape(n, wy, wx, n_bins // bin_merge, bin_merge).sum(axis=-1)
    ny, nx = wy // py, wx // px
    pooled = (
        grid[:, : ny * py, : nx * px]
        .reshape(n, ny, py, nx, px, grid.shape[3])
        .mean(axis=(2, 4))
    )
    return pooled.reshape(n, -1)


def _chunked(rows: np.ndarray, size: int):
    """Yield ``rows`` in contiguous blocks of at most ``size``."""
    for start in range(0, rows.shape[0], size):
        yield rows[start : start + size]


class VideoPipeline:
    """Stream frames through a serving tier and reassemble detections.

    Args:
        extractor: cell-grid descriptor (``cell_grid(image)`` plus a
            ``config`` with ``cell_size``/``n_bins``), shared with the
            still-image detector.
        service: a **started** :class:`~repro.serve.InferenceService`
            or :class:`~repro.serve.ShardedInferenceService` whose model
            scores pooled window rows.
        config: pipeline knobs; see :class:`VideoPipelineConfig`.
        registry: metrics registry for the ``video_*`` counters
            (defaults to the process-wide ``repro.obs`` registry).
        clock: monotonic time source for the frame deadline and fps
            accounting (defaults to the service's clock, keeping the
            single-clock contract; injectable for deterministic
            degradation tests).
    """

    def __init__(
        self,
        extractor,
        service,
        config: VideoPipelineConfig = VideoPipelineConfig(),
        registry: Optional[MetricsRegistry] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if config.min_levels < 1:
            raise ValueError(
                f"min_levels must be >= 1, got {config.min_levels}"
            )
        if config.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {config.max_inflight}"
            )
        self.extractor = extractor
        self.service = service
        self.config = config
        self.registry = registry if registry is not None else get_registry()
        self._clock = clock or getattr(service, "clock", time.monotonic)
        descriptor_config = extractor.config
        self.cell_size = int(descriptor_config.cell_size)
        self.n_bins = int(getattr(descriptor_config, "n_bins", 18))
        self.window_cells = (
            config.window_shape[0] // self.cell_size,
            config.window_shape[1] // self.cell_size,
        )

    # ------------------------------------------------------------------
    @contextmanager
    def _stage(self, stage: str, level) -> "Iterator[None]":
        """Time one frame stage into ``video_stage_seconds``.

        The histogram is labeled ``{stage=..., level=...}`` so
        :func:`repro.obs.traces.frame_stage_breakdown` can split frame
        latency into extract / pool / serve / nms per pyramid level.
        """
        started = time.perf_counter()
        try:
            yield
        finally:
            self.registry.histogram(
                VIDEO_STAGE_METRIC,
                help="frame latency per pipeline stage and pyramid level",
                buckets=SPAN_BUCKETS,
                labels={"stage": stage, "level": str(level)},
            ).observe(time.perf_counter() - started)

    def process_frame(self, image: np.ndarray, index: int = 0) -> FrameResult:
        """Stream one frame: pyramid, fan-out, NMS, accounting.

        The whole frame runs under its own trace id (returned on
        ``FrameResult.trace_id``), and each pyramid level's extract /
        pool / serve work — plus the frame-level NMS — is timed into
        the ``video_stage_seconds{stage=..., level=...}`` histograms.

        Args:
            image: 2-D grayscale frame in ``[0, 1]``.
            index: frame position (carried into the result).

        Returns:
            The frame's :class:`FrameResult`.
        """
        config = self.config
        started = self._clock()
        deadline = (
            None
            if config.deadline_ms is None
            else started + config.deadline_ms / 1e3
        )
        stats = self.service.stats
        hits0 = stats.counter("cache_hits")
        misses0 = stats.counter("cache_misses")
        energy0 = float(stats.counter("energy_nanojoules"))

        pyramid = ImagePyramid(
            image,
            window_shape=config.window_shape,
            scale_factor=config.scale_factor,
            max_levels=config.max_levels,
        )
        levels = pyramid.levels()  # finest (scale 1) first
        result = FrameResult(
            index=index, trace_id=new_trace_id(), levels_total=len(levels)
        )
        window_h, window_w = config.window_shape

        boxes: List[np.ndarray] = []
        scores: List[float] = []
        with trace_context(result.trace_id), span(
            "video.frame", index=index, registry=self.registry
        ):
            # Coarsest first: when the deadline interrupts the frame,
            # the unscored remainder is exactly the finest (priciest)
            # scales.
            for level_index, level in reversed(list(enumerate(levels))):
                if (
                    deadline is not None
                    and result.levels_scored >= config.min_levels
                    and self._clock() >= deadline
                ):
                    result.levels_dropped += 1
                    continue
                with span(
                    "video.level", scale=level.scale, registry=self.registry
                ):
                    with self._stage("extract", level_index):
                        grid = np.asarray(
                            self.extractor.cell_grid(level.image),
                            dtype=np.float64,
                        )
                        raw, positions = sliding_window_features(
                            grid, self.window_cells
                        )
                    result.levels_scored += 1
                    if raw.shape[0] == 0:
                        continue
                    with self._stage("pool", level_index):
                        rows = np.clip(
                            pool_feature_rows(
                                raw,
                                self.window_cells,
                                self.n_bins,
                                pool=config.pool,
                                bin_merge=config.bin_merge,
                            )
                            * config.feature_scale,
                            0.0,
                            1.0,
                        )
                    with self._stage("serve", level_index):
                        level_scores = np.concatenate(
                            [
                                np.asarray(
                                    self.service.score_many(
                                        chunk, timeout_s=config.timeout_s
                                    ),
                                    dtype=np.float64,
                                )
                                for chunk in _chunked(
                                    rows, config.max_inflight
                                )
                            ]
                        )
                result.windows_scored += int(rows.shape[0])
                for hit in np.where(level_scores > config.score_threshold)[0]:
                    cy, cx = positions[hit]
                    boxes.append(
                        np.array(
                            [
                                cx * self.cell_size * level.scale,
                                cy * self.cell_size * level.scale,
                                window_w * level.scale,
                                window_h * level.scale,
                            ]
                        )
                    )
                    scores.append(float(level_scores[hit]))

            if boxes:
                box_arr = np.stack(boxes)
                score_arr = np.asarray(scores)
                with span(
                    "video.nms", candidates=len(boxes), registry=self.registry
                ), self._stage("nms", "frame"):
                    kept = non_maximum_suppression(
                        box_arr, score_arr, epsilon=config.nms_epsilon
                    )
                result.detections = [
                    Detection(
                        x=float(box_arr[i, 0]),
                        y=float(box_arr[i, 1]),
                        width=float(box_arr[i, 2]),
                        height=float(box_arr[i, 3]),
                        score=float(score_arr[i]),
                    )
                    for i in kept
                ]

        result.degraded = result.levels_dropped > 0
        result.cache_hits = int(stats.counter("cache_hits") - hits0)
        result.cache_misses = int(stats.counter("cache_misses") - misses0)
        result.energy_joules = (
            float(stats.counter("energy_nanojoules")) - energy0
        ) * 1e-9
        result.seconds = self._clock() - started
        self._record_frame(result)
        return result

    def run(
        self,
        sequence,
        ground_truth: Optional[Sequence[np.ndarray]] = None,
    ) -> VideoReport:
        """Stream a whole sequence and evaluate it.

        Args:
            sequence: a :class:`~repro.video.synthesis.VideoSequence`,
                or any iterable of frames (2-D arrays or objects with
                an ``image`` attribute).
            ground_truth: optional per-frame ``(m, 4)`` annotation
                boxes; defaults to the sequence's own ground truth when
                it is a :class:`VideoSequence`. The FPPI/miss-rate
                curve is computed whenever any frame is annotated.

        Returns:
            The sequence's :class:`VideoReport`.
        """
        if ground_truth is None and isinstance(sequence, VideoSequence):
            ground_truth = sequence.ground_truth()
        frames = list(sequence)
        started = self._clock()
        results = [
            self.process_frame(getattr(frame, "image", frame), index)
            for index, frame in enumerate(frames)
        ]
        seconds = self._clock() - started

        curve = None
        if ground_truth is not None and any(
            np.asarray(t).shape[0] for t in ground_truth
        ):
            detections_per_frame = []
            for result in results:
                if result.detections:
                    detections_per_frame.append(
                        (
                            np.stack([d.as_box() for d in result.detections]),
                            np.array([d.score for d in result.detections]),
                        )
                    )
                else:
                    detections_per_frame.append((np.zeros((0, 4)), np.zeros(0)))
            curve = evaluate_detections(detections_per_frame, list(ground_truth))
        return VideoReport(frames=results, curve=curve, seconds=seconds)

    # ------------------------------------------------------------------
    def _record_frame(self, result: FrameResult) -> None:
        """Publish one frame's counters into the metrics registry."""
        self.registry.counter(
            "video_frames_total", help="frames streamed through the pipeline"
        ).inc()
        self.registry.counter(
            "video_windows_scored_total",
            help="window rows fanned out to the serving tier",
        ).inc(result.windows_scored)
        if result.degraded:
            self.registry.counter(
                "video_degraded_frames_total",
                help="frames that lost pyramid levels to the deadline budget",
            ).inc()
            self.registry.counter(
                "video_levels_dropped_total",
                help="finest pyramid levels skipped by the deadline budget",
            ).inc(result.levels_dropped)


__all__ = [
    "FrameResult",
    "VideoPipeline",
    "VideoPipelineConfig",
    "VideoReport",
    "pool_feature_rows",
]
