"""The deployable window classifier behind the video pipeline.

Builds the same kind of small trinary Eedn window classifier the fault
sweep deploys — pooled orientation-histogram features (96 wide by
default, fitting the 128-input budget of
:func:`~repro.eedn.mapping.deploy_dense_network`), trained on synthetic
positive/negative windows — and wraps it in a content-coded
:class:`~repro.detection.pipeline.TrueNorthBinaryScorer` so the serve
LRU cache is sound and every engine scores bit-identically.

Training features are computed through the *same* code path the
streaming pipeline uses at inference time
(:func:`~repro.detection.pipeline.sliding_window_features` followed by
:func:`~repro.video.pipeline.pool_feature_rows`), so the train and
serve distributions match by construction.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.datasets import SyntheticPersonDataset
from repro.detection.pipeline import TrueNorthBinaryScorer, sliding_window_features
from repro.eedn.layers import ThresholdActivation, TrinaryDense
from repro.eedn.network import EednNetwork
from repro.eedn.train import TrainConfig, train_network
from repro.utils.rng import RngLike, resolve_rng
from repro.video.pipeline import pool_feature_rows

#: The pooled-count quantile mapped to this firing probability (same
#: calibration contract as the fault sweep's ``calibrated_scale``).
FEATURE_TARGET = 0.8


@dataclass
class VideoWorkload:
    """Everything the pipeline needs to score frames.

    Attributes:
        scorer: the deployed content-coded window classifier.
        extractor: the cell-grid descriptor frames are swept with.
        feature_scale: multiplier mapping pooled counts into [0, 1].
        network: the trained software network behind the scorer (reuse
            it to build bit-identical scorers on other engines).
    """

    scorer: TrueNorthBinaryScorer
    extractor: object
    feature_scale: float
    network: EednNetwork

    def scorer_for_engine(self, engine: str) -> TrueNorthBinaryScorer:
        """A scorer over the same trained network on another engine.

        Engines are bit-identical and the coding entropy is pinned, so
        the returned scorer shares the original's ``model_id`` — its
        served scores and cache keys match byte for byte.
        """
        return TrueNorthBinaryScorer(
            self.network,
            ticks=self.scorer.ticks,
            rng=self.scorer._entropy,
            engine=engine,
            coding="content",
        )


def calibrated_feature_scale(
    train_counts: np.ndarray, target: float = FEATURE_TARGET
) -> float:
    """Scale mapping pooled training counts into [0, 1] features.

    Args:
        train_counts: pooled counts of the training windows only.
        target: firing probability assigned to the counts' 95th
            percentile (counts above it saturate at the coder's clip).

    Returns:
        A positive multiplier (1.0 for degenerate all-zero counts).
    """
    reference = float(np.quantile(train_counts, 0.95))
    if reference <= 0.0:
        return 1.0
    return target / reference


def _window_rows(
    extractor,
    windows: np.ndarray,
    window_cells: Tuple[int, int],
    n_bins: int,
    pool: Tuple[int, int],
    bin_merge: int,
) -> np.ndarray:
    """Pooled rows of full training windows via the serving code path."""
    rows = []
    for window in windows:
        grid = np.asarray(extractor.cell_grid(window), dtype=np.float64)
        raw, _ = sliding_window_features(grid, window_cells)
        rows.append(
            pool_feature_rows(raw, window_cells, n_bins, pool, bin_merge)[0]
        )
    return np.stack(rows)


def build_video_workload(
    engine: str = "batch",
    ticks: int = 8,
    hidden: int = 24,
    n_train: int = 48,
    epochs: int = 12,
    pool: Tuple[int, int] = (4, 2),
    bin_merge: int = 3,
    extractor=None,
    rng: RngLike = 0,
) -> VideoWorkload:
    """Train and deploy the streaming pipeline's window classifier.

    Args:
        engine: simulation engine of the returned scorer (all engines
            are bit-identical; pick ``"event"`` for sparse-activity
            speed, ``"batch"`` for dense).
        ticks: spike window per scored feature row.
        hidden: classifier hidden width (2 * hidden axons must fit one
            core, so <= 128).
        n_train: training windows per class.
        epochs: training epochs.
        pool: spatial cell pooling, ``(y, x)``.
        bin_merge: orientation bins merged per pooled bin.
        extractor: cell-grid descriptor; defaults to the quantized
            NApprox module in software form (the paper's extractor).
        rng: master seed for data, weights, training, and coding.

    Returns:
        A :class:`VideoWorkload` ready to hand to
        :class:`~repro.video.pipeline.VideoPipeline`.
    """
    master = resolve_rng(rng)
    if extractor is None:
        from repro.napprox import NApproxConfig, NApproxDescriptor

        extractor = NApproxDescriptor(
            NApproxConfig(quantized=True, window=64, normalization="none")
        )
    config = extractor.config
    cell_size = int(config.cell_size)
    n_bins = int(getattr(config, "n_bins", 18))
    window_cells = (128 // cell_size, 64 // cell_size)

    dataset = SyntheticPersonDataset(rng=int(master.integers(0, 2**31 - 1)))
    pos = dataset.positive_windows(n_train)
    neg = dataset.negative_windows(n_train)
    pos_rows = _window_rows(extractor, pos, window_cells, n_bins, pool, bin_merge)
    neg_rows = _window_rows(extractor, neg, window_cells, n_bins, pool, bin_merge)
    scale = calibrated_feature_scale(np.vstack([pos_rows, neg_rows]))

    features = np.clip(np.vstack([pos_rows, neg_rows]) * scale, 0.0, 1.0)
    labels = np.concatenate(
        [np.ones(n_train, dtype=np.int64), np.zeros(n_train, dtype=np.int64)]
    )
    weights_seed = int(master.integers(0, 2**31 - 1))
    network = EednNetwork(
        [
            TrinaryDense(features.shape[1], hidden, rng=weights_seed),
            ThresholdActivation(0.0, ste_window=2.0),
            TrinaryDense(hidden, 2, rng=weights_seed + 1),
        ]
    )
    train_network(
        network,
        features,
        labels,
        TrainConfig(epochs=epochs, learning_rate=0.01, lr_decay=0.97, logit_scale=8.0),
        rng=resolve_rng(weights_seed + 2),
    )
    scorer = TrueNorthBinaryScorer(
        network, ticks=ticks, rng=0, engine=engine, coding="content"
    )
    return VideoWorkload(
        scorer=scorer,
        extractor=extractor,
        feature_scale=scale,
        network=network,
    )


__all__ = [
    "FEATURE_TARGET",
    "VideoWorkload",
    "build_video_workload",
    "calibrated_feature_scale",
]
