"""``repro.video`` — full-frame streaming video as a served workload.

The paper's headline deployment claim is full-HD pedestrian detection
at 26 fps: 57,749 cells per frame across 6 pyramid scales (Section
5.2). This package turns that claim into a measured end-to-end
trajectory: synthetic video sequences with exact ground truth
(:mod:`repro.video.synthesis`), a frame-level pipeline that decomposes
each frame into a pyramid, fans window rows out to the (optionally
sharded) micro-batching service, and reassembles detections through NMS
(:mod:`repro.video.pipeline`), plus the deployable window classifier it
scores with (:mod:`repro.video.workload`).

Quick start::

    from repro.serve import InferenceService
    from repro.video import (
        VideoConfig, VideoPipeline, VideoPipelineConfig,
        build_video_workload, synthesize_sequence,
    )

    workload = build_video_workload(engine="event")
    sequence = synthesize_sequence(VideoConfig(motion="walk", n_frames=8))
    with InferenceService(workload.scorer) as service:
        pipeline = VideoPipeline(
            workload.extractor, service,
            VideoPipelineConfig(feature_scale=workload.feature_scale),
        )
        report = pipeline.run(sequence)
    print(report.fps, report.joules_per_frame, report.cache_hit_rate)

See ``docs/VIDEO_PIPELINE.md`` for the dataflow, deadline/degradation
semantics, and the cache-locality model.
"""

from repro.video.pipeline import (
    FrameResult,
    VideoPipeline,
    VideoPipelineConfig,
    VideoReport,
    pool_feature_rows,
)
from repro.video.synthesis import (
    MOTION_LEVELS,
    VideoConfig,
    VideoSequence,
    synthesize_sequence,
)
from repro.video.workload import (
    VideoWorkload,
    build_video_workload,
    calibrated_feature_scale,
)

__all__ = [
    "MOTION_LEVELS",
    "FrameResult",
    "VideoConfig",
    "VideoPipeline",
    "VideoPipelineConfig",
    "VideoReport",
    "VideoSequence",
    "VideoWorkload",
    "build_video_workload",
    "calibrated_feature_scale",
    "pool_feature_rows",
    "synthesize_sequence",
]
