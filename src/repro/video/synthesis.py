"""Synthetic video sequences with exact per-frame ground truth.

A sequence is a list of :class:`~repro.datasets.synthetic_person.Scene`
frames rendered over **one** background image. How much of that
background survives from frame to frame is the sequence's *motion
level*, and it is what the streaming pipeline's content-addressed cache
responds to:

- ``"static"`` — nothing moves. Every frame is byte-identical, so after
  the first frame every window row hits the serve LRU.
- ``"walk"`` — the background is fixed but each person translates by a
  constant per-frame velocity. Only cells within the detection window's
  reach of a person change, so most rows still hit the cache.
- ``"full"`` — the whole frame changes every frame (fresh per-frame
  pixel noise over the scene), so no row ever repeats and the cache
  contributes nothing.

Persons keep their identity across frames: one silhouette mask, one
intensity level, and one texture field are drawn per person at sequence
construction and only the paste *position* changes, exactly how the
paper's streaming deployment sees a pedestrian crossing a fixed camera
view. Ground truth is exact — each frame carries the window-aligned
:class:`~repro.datasets.synthetic_person.Annotation` of every person at
that frame's position, via the same
:func:`~repro.datasets.synthetic_person.window_aligned_box` math the
still-image dataset uses.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.datasets.synthetic_person import (
    Annotation,
    DatasetConfig,
    Scene,
    _box_blur,
    _textured_background,
    person_silhouette,
    window_aligned_box,
)
from repro.utils.rng import RngLike, resolve_rng

MOTION_LEVELS = ("static", "walk", "full")
"""Supported motion levels, ordered by increasing frame-to-frame change."""


@dataclass(frozen=True)
class VideoConfig:
    """Knobs of the synthetic video generator.

    Attributes:
        shape: frame ``(height, width)`` in pixels.
        n_frames: frames per sequence.
        motion: one of :data:`MOTION_LEVELS`.
        n_people: persons in the scene (each gets its own silhouette,
            contrast, and velocity).
        person_height: silhouette height in pixels (``None`` sizes
            persons to ~55% of the frame height, clamped to the
            detector's pyramid reach).
        walk_speed: horizontal pixels per frame a person covers at the
            ``"walk"`` motion level.
        noise_sigma: per-frame pixel noise at the ``"full"`` motion
            level (static/walk freeze the noise field instead, so their
            backgrounds repeat exactly).
        dataset: rendering knobs shared with the still-image dataset.
    """

    shape: Tuple[int, int] = (240, 320)
    n_frames: int = 12
    motion: str = "static"
    n_people: int = 1
    person_height: Optional[int] = None
    walk_speed: int = 6
    noise_sigma: float = 0.03
    dataset: DatasetConfig = DatasetConfig()


@dataclass(frozen=True)
class _PersonTrack:
    """One person's fixed appearance and linear trajectory."""

    mask: np.ndarray
    level: float
    texture: np.ndarray
    top: int
    left0: int
    velocity: int


class VideoSequence:
    """A rendered synthetic video: frames plus exact ground truth.

    Attributes:
        config: the generator configuration.
        frames: the rendered :class:`Scene` list (one per frame, each
            with its own annotations).
    """

    def __init__(self, config: VideoConfig, frames: List[Scene]) -> None:
        self.config = config
        self.frames = frames

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self):
        return iter(self.frames)

    def __getitem__(self, index: int) -> Scene:
        return self.frames[index]

    def ground_truth(self) -> List[np.ndarray]:
        """Per-frame ``(m, 4)`` annotation boxes (empty where no one)."""
        out = []
        for scene in self.frames:
            if scene.annotations:
                out.append(np.stack([a.as_array() for a in scene.annotations]))
            else:
                out.append(np.zeros((0, 4)))
        return out


def synthesize_sequence(
    config: VideoConfig = VideoConfig(), rng: RngLike = 0
) -> VideoSequence:
    """Render one synthetic video sequence.

    Rendering is fully deterministic in ``(config, rng)``: the same
    seed produces byte-identical frames, which is what lets the bench
    compare engines and worker counts on the *same* pixels.

    Args:
        config: generator knobs; see :class:`VideoConfig`.
        rng: master seed for the background, persons, and noise.

    Returns:
        The rendered :class:`VideoSequence`.

    Raises:
        ValueError: on an unknown motion level or a non-positive frame
            count.
    """
    if config.motion not in MOTION_LEVELS:
        raise ValueError(
            f"motion must be one of {MOTION_LEVELS}, got {config.motion!r}"
        )
    if config.n_frames < 1:
        raise ValueError(f"n_frames must be >= 1, got {config.n_frames}")
    generator = resolve_rng(rng)
    height, width = config.shape

    background = _textured_background(config.shape, config.dataset, generator)
    tracks = _make_tracks(config, generator)
    # Frozen noise: static/walk reuse one field so untouched pixels
    # repeat exactly; full-motion frames draw a fresh field each time.
    frozen_noise = generator.normal(0.0, config.noise_sigma, size=config.shape)

    frames: List[Scene] = []
    for frame_index in range(config.n_frames):
        image = background.copy()
        annotations: List[Annotation] = []
        for track in tracks:
            mh, mw = track.mask.shape
            if config.motion == "static":
                left = track.left0
            else:
                span = max(width - mw, 1)
                left = (track.left0 + track.velocity * frame_index) % span
            region = image[track.top : track.top + mh, left : left + mw]
            region[...] = (
                region * (1.0 - track.mask)
                + (track.level + track.texture) * track.mask
            )
            annotations.append(window_aligned_box(track.top, left, track.mask.shape))
        image = _box_blur(image, config.dataset.blur_radius)
        if config.motion == "full":
            noise = generator.normal(0.0, config.noise_sigma, size=config.shape)
        else:
            noise = frozen_noise
        image = np.clip(image + noise, 0.0, 1.0)
        frames.append(Scene(image=image, annotations=annotations))
    return VideoSequence(config, frames)


def _make_tracks(
    config: VideoConfig, rng: np.random.Generator
) -> List[_PersonTrack]:
    """Draw each person's fixed appearance and linear trajectory."""
    height, width = config.shape
    tracks: List[_PersonTrack] = []
    for person in range(config.n_people):
        if config.person_height is not None:
            person_h = int(config.person_height)
        else:
            person_h = int(
                np.clip(0.55 * height, 0.3 * height, 0.9 * height)
            )
        person_h = min(person_h, height - 2)
        mask = person_silhouette(person_h, rng)
        mh, mw = mask.shape
        if mh >= height or mw >= width:
            continue
        top = int(rng.integers(0, height - mh))
        left0 = int(rng.integers(0, width - mw))
        polarity = 1.0 if rng.random() < 0.5 else -1.0
        level = float(
            np.clip(
                0.5
                + polarity
                * (config.dataset.person_contrast + rng.uniform(0.0, 0.25)),
                0.02,
                0.98,
            )
        )
        texture = rng.normal(0.0, 0.02, size=mask.shape)
        velocity = int(config.walk_speed) * (1 if person % 2 == 0 else -1)
        tracks.append(
            _PersonTrack(
                mask=mask,
                level=level,
                texture=texture,
                top=top,
                left0=left0,
                velocity=velocity,
            )
        )
    return tracks


__all__ = [
    "MOTION_LEVELS",
    "VideoConfig",
    "VideoSequence",
    "synthesize_sequence",
]
