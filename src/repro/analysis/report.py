"""Plain-text rendering of experiment results.

Every bench prints its table/figure through these helpers so the output
format stays uniform and diffable across runs.
"""

from typing import Dict, List, Sequence, Tuple

import numpy as np


def format_sig(value: float, digits: int = 3) -> str:
    """A float at ``digits`` significant figures, compact."""
    if value == 0:
        return "0"
    if not np.isfinite(value):
        return str(value)
    magnitude = int(np.floor(np.log10(abs(value))))
    decimals = max(0, digits - 1 - magnitude)
    return f"{value:.{decimals}f}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an ASCII table with padded columns.

    Args:
        headers: column titles.
        rows: row cells; non-strings are ``str()``-ed.

    Returns:
        A multi-line string (no trailing newline).
    """
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend(
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in cells
    )
    return "\n".join(lines)


def format_curve_table(
    curves: Dict[str, Tuple[np.ndarray, np.ndarray]],
    x_name: str = "fppi",
    y_name: str = "miss rate",
    x_samples: Sequence[float] = (0.01, 0.03, 0.1, 0.3, 1.0),
) -> str:
    """Tabulate several (x, y) trade-off curves at shared x samples.

    For each named curve, the reported y at a sample is the minimum y
    among points with x at or below the sample (the standard convention
    for monotone trade-off curves).

    Args:
        curves: name -> ``(x_values, y_values)``.
        x_name: label of the x quantity.
        y_name: label of the y quantity.
        x_samples: sample positions.

    Returns:
        A multi-line ASCII table: one row per sample, one column per
        curve.
    """
    headers = [f"{x_name}"] + [f"{name} {y_name}" for name in curves]
    rows: List[List[str]] = []
    for sample in x_samples:
        row = [format_sig(sample)]
        for name, (xs, ys) in curves.items():
            xs = np.asarray(xs, dtype=np.float64)
            ys = np.asarray(ys, dtype=np.float64)
            eligible = xs <= sample
            row.append(format_sig(float(ys[eligible].min())) if eligible.any() else "1")
            del name
        rows.append(row)
    return format_table(headers, rows)


__all__ = ["format_curve_table", "format_sig", "format_table"]
