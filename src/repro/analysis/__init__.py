"""Reporting helpers: ASCII tables and curve summaries for the benches."""

from repro.analysis.report import format_table, format_curve_table, format_sig

__all__ = ["format_curve_table", "format_sig", "format_table"]
