"""Small argument-validation helpers with uniform error messages."""

from typing import Sequence, Tuple

import numpy as np


def check_positive(name: str, value: float) -> None:
    """Raise :class:`ValueError` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_in_range(name: str, value: float, low: float, high: float) -> None:
    """Raise :class:`ValueError` unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")


def check_shape(name: str, array: np.ndarray, shape: Tuple[int, ...]) -> None:
    """Raise :class:`ValueError` unless ``array.shape == shape``.

    A ``-1`` entry in ``shape`` matches any extent on that axis.
    """
    actual = np.asarray(array).shape
    if len(actual) != len(shape) or any(
        expected not in (-1, got) for expected, got in zip(shape, actual)
    ):
        raise ValueError(f"{name} must have shape {shape}, got {actual}")


def check_choice(name: str, value: str, choices: Sequence[str]) -> None:
    """Raise :class:`ValueError` unless ``value`` is one of ``choices``."""
    if value not in choices:
        raise ValueError(f"{name} must be one of {sorted(choices)}, got {value!r}")


__all__ = ["check_choice", "check_in_range", "check_positive", "check_shape"]
