"""Shared low-level utilities: RNG handling, image helpers, validation."""

from repro.utils.rng import resolve_rng
from repro.utils.images import (
    pad_reflect,
    rgb_to_grayscale,
    to_float_image,
    to_uint8_image,
)
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_shape,
)

__all__ = [
    "check_in_range",
    "check_positive",
    "check_shape",
    "pad_reflect",
    "resolve_rng",
    "rgb_to_grayscale",
    "to_float_image",
    "to_uint8_image",
]
