"""Image helpers used by the HoG pipelines and dataset generators.

Images are numpy arrays. Grayscale images are 2-D ``(H, W)``; color images
are 3-D ``(H, W, 3)``. Float images live in ``[0, 1]``; integer images in
``[0, 255]``.
"""

from typing import Tuple

import numpy as np

# ITU-R BT.601 luma coefficients, the classic grayscale conversion used by
# the embedded HoG implementations the paper compares against.
_LUMA_WEIGHTS = np.array([0.299, 0.587, 0.114])


def rgb_to_grayscale(image: np.ndarray) -> np.ndarray:
    """Convert an ``(H, W, 3)`` RGB image to ``(H, W)`` grayscale.

    The paper reduces color channels from RGB to grayscale to adapt to
    TrueNorth resource constraints (Section 4).

    Args:
        image: RGB image, float or integer dtype. A 2-D image is returned
            unchanged (already grayscale).

    Returns:
        Grayscale image with the same value range as the input, as float64.
    """
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim == 2:
        return arr
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ValueError(f"expected (H, W) or (H, W, 3) image, got {arr.shape}")
    return arr @ _LUMA_WEIGHTS


def to_float_image(image: np.ndarray) -> np.ndarray:
    """Normalise an image to float64 in ``[0, 1]``.

    Integer images are divided by 255; float images are clipped to [0, 1].
    """
    arr = np.asarray(image)
    if np.issubdtype(arr.dtype, np.integer):
        return arr.astype(np.float64) / 255.0
    return np.clip(arr.astype(np.float64), 0.0, 1.0)


def to_uint8_image(image: np.ndarray) -> np.ndarray:
    """Convert a float image in ``[0, 1]`` to uint8 in ``[0, 255]``."""
    arr = np.clip(np.asarray(image, dtype=np.float64), 0.0, 1.0)
    return np.round(arr * 255.0).astype(np.uint8)


def pad_reflect(image: np.ndarray, pad: int) -> np.ndarray:
    """Reflect-pad a 2-D image by ``pad`` pixels on every side."""
    if pad < 0:
        raise ValueError(f"pad must be non-negative, got {pad}")
    if pad == 0:
        return np.asarray(image, dtype=np.float64).copy()
    return np.pad(np.asarray(image, dtype=np.float64), pad, mode="reflect")


def resize_bilinear(image: np.ndarray, out_shape: Tuple[int, int]) -> np.ndarray:
    """Resize a 2-D image with bilinear interpolation.

    Implemented directly (no scipy dependency in the hot path) because the
    detection pyramid rescales every test image at 1.1x steps.

    Args:
        image: 2-D array.
        out_shape: desired ``(height, width)``.

    Returns:
        Resized float64 image of shape ``out_shape``.
    """
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"expected 2-D image, got shape {arr.shape}")
    out_h, out_w = out_shape
    if out_h <= 0 or out_w <= 0:
        raise ValueError(f"output shape must be positive, got {out_shape}")
    in_h, in_w = arr.shape
    if (out_h, out_w) == (in_h, in_w):
        return arr.copy()

    # Sample positions aligned so corner pixels map to corner pixels.
    ys = np.linspace(0.0, in_h - 1.0, out_h)
    xs = np.linspace(0.0, in_w - 1.0, out_w)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, in_h - 1)
    x1 = np.minimum(x0 + 1, in_w - 1)
    wy = (ys - y0)[:, None]
    wx = (xs - x0)[None, :]

    top = arr[np.ix_(y0, x0)] * (1.0 - wx) + arr[np.ix_(y0, x1)] * wx
    bottom = arr[np.ix_(y1, x0)] * (1.0 - wx) + arr[np.ix_(y1, x1)] * wx
    return top * (1.0 - wy[:, 0])[:, None] + bottom * wy[:, 0][:, None]


def crop(image: np.ndarray, top: int, left: int, height: int, width: int) -> np.ndarray:
    """Crop ``image[top:top+height, left:left+width]`` with bounds checking."""
    arr = np.asarray(image)
    if top < 0 or left < 0 or top + height > arr.shape[0] or left + width > arr.shape[1]:
        raise ValueError(
            f"crop ({top},{left},{height},{width}) outside image {arr.shape[:2]}"
        )
    return arr[top : top + height, left : left + width].copy()


__all__ = [
    "crop",
    "pad_reflect",
    "resize_bilinear",
    "rgb_to_grayscale",
    "to_float_image",
    "to_uint8_image",
]
