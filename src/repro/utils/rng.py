"""Random-number-generator plumbing.

Every stochastic component in the package accepts either a seed or a
:class:`numpy.random.Generator`, and resolves it through
:func:`resolve_rng` so experiments are reproducible end to end.
"""

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def resolve_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Args:
        rng: ``None`` for a fresh unseeded generator, an ``int`` seed, or an
            existing generator (returned unchanged so state is shared).

    Returns:
        A ready-to-use generator.

    Raises:
        TypeError: if ``rng`` is of an unsupported type.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed, or a numpy Generator, got {type(rng)!r}"
    )


def spawn_rng(rng: RngLike, index: int) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Useful when a parent experiment fans out into parallel sub-experiments
    that must not share a random stream.

    Args:
        rng: parent seed/generator specification.
        index: child index; distinct indices give independent streams.

    Returns:
        A generator seeded from the parent's bit stream and ``index``.
    """
    parent = resolve_rng(rng)
    seed = int(parent.integers(0, 2**32 - 1)) + 7919 * int(index)
    return np.random.default_rng(seed)


__all__ = ["RngLike", "resolve_rng", "spawn_rng"]
