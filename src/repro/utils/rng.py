"""Random-number-generator plumbing.

Every stochastic component in the package accepts either a seed or a
:class:`numpy.random.Generator`, and resolves it through
:func:`resolve_rng` so experiments are reproducible end to end.
"""

from typing import List, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def resolve_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Args:
        rng: ``None`` for a fresh unseeded generator, an ``int`` seed, or an
            existing generator (returned unchanged so state is shared).

    Returns:
        A ready-to-use generator.

    Raises:
        TypeError: if ``rng`` is of an unsupported type.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed, or a numpy Generator, got {type(rng)!r}"
    )


def spawn_rng(rng: RngLike, index: int) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Useful when a parent experiment fans out into parallel sub-experiments
    that must not share a random stream. Children are derived through
    :class:`numpy.random.SeedSequence` spawn keys, so distinct indices can
    never collide (the previous arithmetic derivation could alias two
    children whose parent draws happened to differ by a multiple of the
    index stride).

    Args:
        rng: parent seed/generator specification. Passing a ``Generator``
            consumes one draw of its state (documented side effect).
        index: child index; distinct indices give independent streams.

    Returns:
        A generator seeded from the parent entropy and ``index``.
    """
    if index < 0:
        raise ValueError(f"index must be >= 0, got {index}")
    if isinstance(rng, np.random.Generator):
        entropy = int(rng.integers(0, 2**63))
    elif rng is None:
        entropy = None
    elif isinstance(rng, (int, np.integer)):
        entropy = int(rng)
    else:
        raise TypeError(
            f"rng must be None, an int seed, or a numpy Generator, got {type(rng)!r}"
        )
    sequence = np.random.SeedSequence(entropy, spawn_key=(int(index),))
    return np.random.default_rng(sequence)


def spawn_generators(rng: RngLike, n: int) -> List[np.random.Generator]:
    """``n`` independent generators, reproducibly derived from ``rng``.

    This is the lane-seeding rule shared by the reference and batch
    simulation engines: lane ``i`` of an ``n``-lane batch run consumes the
    stream of ``spawn_generators(rng, n)[i]``, so the two engines (and any
    external reference harness) can be compared bit for bit. For ``None``
    or integer seeds the derivation goes through
    ``np.random.SeedSequence(seed).spawn(n)`` and is stateless: calling
    twice with the same seed yields identical generators. Passing a
    ``Generator`` advances its spawn counter instead (successive calls give
    fresh, still collision-free, children).

    Args:
        rng: parent seed/generator specification.
        n: number of lanes.

    Returns:
        List of ``n`` generators with mutually independent streams.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(rng, np.random.Generator):
        return list(rng.spawn(n))
    if rng is None:
        sequence = np.random.SeedSequence()
    elif isinstance(rng, (int, np.integer)):
        sequence = np.random.SeedSequence(int(rng))
    else:
        raise TypeError(
            f"rng must be None, an int seed, or a numpy Generator, got {type(rng)!r}"
        )
    return [np.random.default_rng(child) for child in sequence.spawn(n)]


__all__ = ["RngLike", "resolve_rng", "spawn_generators", "spawn_rng"]
