"""Gradient computation with centered 1-D derivative masks.

Dalal and Triggs concluded that the centered point derivative
``[-1, 0, 1]`` gives the best detection performance; applied in x and y it
yields, for the pixel layout of Figure 2 of the paper,
``Ix = Pixel5 - Pixel3`` and ``Iy = Pixel1 - Pixel7``.
"""

from typing import Tuple

import numpy as np


def compute_gradients(image: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Apply the centered [-1, 0, 1] masks in x and y.

    Border pixels use replicated edges (one-sided differences scale
    equivalently), matching common HoG practice.

    Args:
        image: 2-D grayscale image.

    Returns:
        ``(ix, iy)`` arrays of the image's shape. ``iy`` is positive for
        intensity increasing *upward* (toward smaller row indices),
        matching the paper's ``Iy = Pixel1 - Pixel7`` with pixel 1 above
        pixel 7.
    """
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"expected 2-D grayscale image, got shape {arr.shape}")
    padded = np.pad(arr, 1, mode="edge")
    ix = padded[1:-1, 2:] - padded[1:-1, :-2]
    iy = padded[:-2, 1:-1] - padded[2:, 1:-1]
    return ix, iy


def gradient_magnitude(ix: np.ndarray, iy: np.ndarray) -> np.ndarray:
    """Euclidean gradient magnitude ``sqrt(Ix^2 + Iy^2)``."""
    return np.hypot(np.asarray(ix, dtype=np.float64), np.asarray(iy, dtype=np.float64))


def gradient_angle(ix: np.ndarray, iy: np.ndarray, signed: bool) -> np.ndarray:
    """Gradient orientation in degrees.

    Args:
        ix: x derivatives.
        iy: y derivatives.
        signed: ``True`` for the full 0-360 range, ``False`` to fold into
            0-180 (unsigned orientation, Dalal-Triggs default).

    Returns:
        Angles in degrees, in ``[0, 360)`` or ``[0, 180)``.
    """
    angles = np.degrees(
        np.arctan2(np.asarray(iy, dtype=np.float64), np.asarray(ix, dtype=np.float64))
    )
    angles = np.mod(angles, 360.0)
    if not signed:
        angles = np.mod(angles, 180.0)
    return angles


def interior_gradients(patch: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Gradients of the interior of a patch, discarding the 1-px border.

    The paper feeds 10x10 pixels to HoG to compute the 8x8 gradient
    matrix of a cell (Section 4); this helper implements exactly that
    contract.

    Args:
        patch: 2-D array of shape ``(h, w)`` with ``h, w >= 3``.

    Returns:
        ``(ix, iy)`` of shape ``(h - 2, w - 2)`` using true centered
        differences everywhere (no border replication involved).
    """
    arr = np.asarray(patch, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] < 3 or arr.shape[1] < 3:
        raise ValueError(f"patch must be at least 3x3, got {arr.shape}")
    ix = arr[1:-1, 2:] - arr[1:-1, :-2]
    iy = arr[:-2, 1:-1] - arr[2:, 1:-1]
    return ix, iy


__all__ = [
    "compute_gradients",
    "gradient_angle",
    "gradient_magnitude",
    "interior_gradients",
]
