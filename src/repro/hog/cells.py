"""Orientation voting: from per-pixel gradients to per-cell histograms."""

import numpy as np


def cell_histograms(
    magnitude: np.ndarray,
    angle: np.ndarray,
    cell_size: int = 8,
    n_bins: int = 9,
    signed: bool = False,
    voting: str = "magnitude",
    interpolate: bool = True,
    count_threshold: float = 0.0,
) -> np.ndarray:
    """Vote pixel orientations into a grid of cell histograms.

    Args:
        magnitude: per-pixel gradient magnitudes, 2-D.
        angle: per-pixel orientations in degrees, same shape; expected in
            ``[0, 360)`` when ``signed`` else ``[0, 180)``.
        cell_size: cell edge in pixels (8 in the paper).
        n_bins: orientation bins (9 for Dalal-Triggs, 18 for NApprox).
        signed: orientation range — ``True`` for 0-360, ``False`` for 0-180.
        voting: ``"magnitude"`` (each pixel votes its gradient magnitude,
            the conventional scheme) or ``"count"`` (each pixel with a
            gradient above ``count_threshold`` votes 1, the NApprox scheme
            of Table 1).
        interpolate: bilinear interpolation between the two nearest bins
            (mitigates orientation aliasing). The paper's approximation
            designs ignore aliasing, i.e. pass ``False``.
        count_threshold: minimum magnitude for a pixel to vote at all
            under count voting (zero-gradient pixels never vote).

    Returns:
        Array of shape ``(n_cells_y, n_cells_x, n_bins)``. Pixels beyond
        the last full cell are discarded.
    """
    mag = np.asarray(magnitude, dtype=np.float64)
    ang = np.asarray(angle, dtype=np.float64)
    if mag.shape != ang.shape or mag.ndim != 2:
        raise ValueError(
            f"magnitude {mag.shape} and angle {ang.shape} must be equal 2-D shapes"
        )
    if cell_size < 1:
        raise ValueError(f"cell_size must be >= 1, got {cell_size}")
    if n_bins < 2:
        raise ValueError(f"n_bins must be >= 2, got {n_bins}")
    if voting not in ("magnitude", "count"):
        raise ValueError(f"voting must be 'magnitude' or 'count', got {voting!r}")

    span = 360.0 if signed else 180.0
    bin_width = span / n_bins
    n_cells_y = mag.shape[0] // cell_size
    n_cells_x = mag.shape[1] // cell_size
    histograms = np.zeros((n_cells_y, n_cells_x, n_bins), dtype=np.float64)
    if n_cells_y == 0 or n_cells_x == 0:
        return histograms

    height = n_cells_y * cell_size
    width = n_cells_x * cell_size
    mag = mag[:height, :width]
    ang = np.mod(ang[:height, :width], span)

    if voting == "count":
        weights = (mag > count_threshold).astype(np.float64)
    else:
        weights = mag

    cell_y = (np.arange(height) // cell_size)[:, None]
    cell_x = (np.arange(width) // cell_size)[None, :]
    cell_index = (cell_y * n_cells_x + cell_x).ravel()
    flat_weights = weights.ravel()
    n_cells = n_cells_y * n_cells_x

    if interpolate:
        # Distribute each vote between the two nearest bin centers.
        position = ang.ravel() / bin_width - 0.5
        lower = np.floor(position).astype(np.int64)
        frac = position - lower
        lower_bin = np.mod(lower, n_bins)
        upper_bin = np.mod(lower + 1, n_bins)
        flat = np.zeros(n_cells * n_bins, dtype=np.float64)
        np.add.at(flat, cell_index * n_bins + lower_bin, flat_weights * (1.0 - frac))
        np.add.at(flat, cell_index * n_bins + upper_bin, flat_weights * frac)
    else:
        bins = np.minimum((ang.ravel() / bin_width).astype(np.int64), n_bins - 1)
        flat = np.zeros(n_cells * n_bins, dtype=np.float64)
        np.add.at(flat, cell_index * n_bins + bins, flat_weights)

    return flat.reshape(n_cells_y, n_cells_x, n_bins)


def histogram_for_cell(
    magnitude: np.ndarray,
    angle: np.ndarray,
    n_bins: int,
    signed: bool,
    voting: str = "magnitude",
    interpolate: bool = True,
    count_threshold: float = 0.0,
) -> np.ndarray:
    """Histogram of a single cell (the whole input is one cell).

    Convenience wrapper over :func:`cell_histograms` used by the per-cell
    extractors (Parrot training targets, corelet validation).
    """
    mag = np.asarray(magnitude, dtype=np.float64)
    grid = cell_histograms(
        mag,
        angle,
        cell_size=max(mag.shape),
        n_bins=n_bins,
        signed=signed,
        voting=voting,
        interpolate=interpolate,
        count_threshold=count_threshold,
    )
    if grid.shape[:2] != (1, 1):
        # Non-square cells: fall back to a single explicit accumulation.
        grid = cell_histograms(
            mag,
            angle,
            cell_size=1,
            n_bins=n_bins,
            signed=signed,
            voting=voting,
            interpolate=interpolate,
            count_threshold=count_threshold,
        ).sum(axis=(0, 1), keepdims=True)
    return grid[0, 0]


__all__ = ["cell_histograms", "histogram_for_cell"]
