"""Histogram-of-Oriented-Gradients feature extractors.

Three families, matching the configurations compared in Figure 4 of the
paper:

- the **reference** Dalal-Triggs HoG: 9 unsigned orientation bins,
  magnitude-weighted voting with bilinear interpolation, L2 block
  normalisation (:func:`reference_config`);
- the **FPGA** HoG of Advani et al.: the same 9-bin weighted voting
  evaluated in 16-bit fixed point with an alpha-max-beta-min magnitude
  and LUT-based angle binning (:mod:`repro.hog.fpga`);
- the **NApprox** HoG models live in :mod:`repro.napprox` and reuse this
  package's cell/block machinery with 18 signed bins and count voting.

The shared pipeline is: :mod:`repro.hog.gradients` (centered [-1, 0, 1]
derivative masks), :mod:`repro.hog.cells` (orientation voting into 8x8
cells), :mod:`repro.hog.blocks` (contrast normalisation over 2x2-cell
blocks with one-cell stride), and :mod:`repro.hog.descriptor` (window
feature assembly).
"""

from repro.hog.descriptor import (
    HogConfig,
    HogDescriptor,
    dalal_triggs_config,
    napprox_fp_config,
    reference_config,
)
from repro.hog.gradients import compute_gradients
from repro.hog.cells import cell_histograms
from repro.hog.blocks import normalize_blocks
from repro.hog.fpga import FpgaHogDescriptor, FpgaHogConfig

__all__ = [
    "FpgaHogConfig",
    "FpgaHogDescriptor",
    "HogConfig",
    "HogDescriptor",
    "cell_histograms",
    "compute_gradients",
    "dalal_triggs_config",
    "napprox_fp_config",
    "normalize_blocks",
    "reference_config",
]
