"""Window descriptors: configuration plus the end-to-end HoG pipeline."""

from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from repro.hog.blocks import block_grid_shape, normalize_blocks
from repro.hog.cells import cell_histograms
from repro.hog.gradients import compute_gradients, gradient_angle, gradient_magnitude
from repro.utils.images import rgb_to_grayscale


@dataclass(frozen=True)
class HogConfig:
    """Full configuration of a HoG descriptor.

    Attributes:
        cell_size: cell edge in pixels.
        block_size: block edge in cells.
        block_stride: block stride in cells.
        n_bins: orientation bins.
        signed: ``True`` for 0-360 orientations, ``False`` for 0-180.
        voting: ``"magnitude"`` or ``"count"`` (see
            :func:`repro.hog.cells.cell_histograms`).
        interpolate: bilinear orientation interpolation (aliasing
            mitigation); the approximation designs disable it.
        normalization: block normalisation method (``"l2"``, ``"l2hys"``,
            ``"l1"``, ``"none"``).
        count_threshold: magnitude floor for count voting.
    """

    cell_size: int = 8
    block_size: int = 2
    block_stride: int = 1
    n_bins: int = 9
    signed: bool = False
    voting: str = "magnitude"
    interpolate: bool = True
    normalization: str = "l2"
    count_threshold: float = 0.0

    def feature_length(self, window_shape: Tuple[int, int]) -> int:
        """Descriptor length for a ``(height, width)`` pixel window."""
        n_cells_y = window_shape[0] // self.cell_size
        n_cells_x = window_shape[1] // self.cell_size
        n_blocks_y, n_blocks_x = block_grid_shape(
            n_cells_y, n_cells_x, self.block_size, self.block_stride
        )
        return n_blocks_y * n_blocks_x * self.block_size**2 * self.n_bins


def dalal_triggs_config() -> HogConfig:
    """The classic Dalal-Triggs configuration (9 unsigned bins, L2)."""
    return HogConfig()


def reference_config() -> HogConfig:
    """Alias of :func:`dalal_triggs_config`; the software baseline."""
    return dalal_triggs_config()


def napprox_fp_config(normalization: str = "l2") -> HogConfig:
    """NApprox(fp): 18 signed bins, count voting, aliasing ignored.

    This is the full-precision software version of the neuromorphic
    primitive HoG ("voting in counts, floating-point computation" —
    Section 4 of the paper).
    """
    return HogConfig(
        n_bins=18,
        signed=True,
        voting="count",
        interpolate=False,
        normalization=normalization,
    )


class HogDescriptor:
    """Computes HoG feature vectors for images and windows.

    Args:
        config: descriptor configuration; defaults to Dalal-Triggs.
    """

    def __init__(self, config: HogConfig = HogConfig()) -> None:
        self.config = config

    def with_normalization(self, method: str) -> "HogDescriptor":
        """A copy of this descriptor with a different block normalisation."""
        return HogDescriptor(replace(self.config, normalization=method))

    def cell_grid(self, image: np.ndarray) -> np.ndarray:
        """Per-cell histograms of shape ``(n_cells_y, n_cells_x, n_bins)``."""
        gray = rgb_to_grayscale(image)
        ix, iy = compute_gradients(gray)
        magnitude = gradient_magnitude(ix, iy)
        angle = gradient_angle(ix, iy, signed=self.config.signed)
        return cell_histograms(
            magnitude,
            angle,
            cell_size=self.config.cell_size,
            n_bins=self.config.n_bins,
            signed=self.config.signed,
            voting=self.config.voting,
            interpolate=self.config.interpolate,
            count_threshold=self.config.count_threshold,
        )

    def compute(self, image: np.ndarray) -> np.ndarray:
        """The flat descriptor of a whole image treated as one window."""
        return self.from_cells(self.cell_grid(image))

    def from_cells(self, cells: np.ndarray) -> np.ndarray:
        """Assemble the flat descriptor from a per-cell histogram grid."""
        blocks = normalize_blocks(
            cells,
            block_size=self.config.block_size,
            stride=self.config.block_stride,
            method=self.config.normalization,
        )
        return blocks.ravel()

    def feature_length(self, window_shape: Tuple[int, int]) -> int:
        """Descriptor length for a pixel window of ``window_shape``."""
        return self.config.feature_length(window_shape)

    def __repr__(self) -> str:
        c = self.config
        return (
            f"HogDescriptor(bins={c.n_bins}, signed={c.signed}, "
            f"voting={c.voting!r}, norm={c.normalization!r})"
        )


__all__ = [
    "HogConfig",
    "HogDescriptor",
    "dalal_triggs_config",
    "napprox_fp_config",
    "reference_config",
]
