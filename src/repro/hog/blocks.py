"""Contrast normalisation over spatial blocks of cells.

All HoGs in the paper "exploit contrast normalization over 2x2 cells in a
block" with a one-cell stride in both directions, so blocks overlap and
each interior cell contributes to four blocks (hence the x4 in the
7,560 = 7 x 15 x 18 x 4 feature count). The neuromorphic classifier
experiments elide normalisation ("performing normalization is costly on
the TrueNorth platform", Section 5) — pass ``method="none"``.
"""

import numpy as np

_EPSILON = 1e-8
_L2HYS_CLIP = 0.2


def normalize_blocks(
    cells: np.ndarray,
    block_size: int = 2,
    stride: int = 1,
    method: str = "l2",
) -> np.ndarray:
    """Group cells into overlapping blocks and normalise each block.

    Args:
        cells: histogram grid of shape ``(n_cells_y, n_cells_x, n_bins)``.
        block_size: block edge in cells (2 in the paper).
        stride: block stride in cells (1 in the paper).
        method: ``"l2"`` (v / ||v||2), ``"l2hys"`` (L2, clip at 0.2,
            renormalise), ``"l1"`` (v / ||v||1), or ``"none"`` (blocks are
            concatenated unnormalised).

    Returns:
        Array of shape ``(n_blocks_y, n_blocks_x, block_size**2 * n_bins)``.

    Raises:
        ValueError: if the grid is smaller than one block.
    """
    grid = np.asarray(cells, dtype=np.float64)
    if grid.ndim != 3:
        raise ValueError(f"cells must be 3-D (y, x, bins), got {grid.shape}")
    if method not in ("l2", "l2hys", "l1", "none"):
        raise ValueError(f"unknown normalisation method {method!r}")
    n_cells_y, n_cells_x, n_bins = grid.shape
    if n_cells_y < block_size or n_cells_x < block_size:
        raise ValueError(
            f"cell grid {grid.shape[:2]} smaller than block of {block_size}"
        )

    n_blocks_y = (n_cells_y - block_size) // stride + 1
    n_blocks_x = (n_cells_x - block_size) // stride + 1
    block_len = block_size * block_size * n_bins
    blocks = np.empty((n_blocks_y, n_blocks_x, block_len), dtype=np.float64)
    for by in range(n_blocks_y):
        for bx in range(n_blocks_x):
            y0 = by * stride
            x0 = bx * stride
            vector = grid[y0 : y0 + block_size, x0 : x0 + block_size].ravel()
            blocks[by, bx] = _normalize(vector, method)
    return blocks


def _normalize(vector: np.ndarray, method: str) -> np.ndarray:
    if method == "none":
        return vector
    if method == "l1":
        return vector / (np.abs(vector).sum() + _EPSILON)
    normed = vector / (np.linalg.norm(vector) + _EPSILON)
    if method == "l2hys":
        normed = np.minimum(normed, _L2HYS_CLIP)
        normed = normed / (np.linalg.norm(normed) + _EPSILON)
    return normed


def block_grid_shape(
    n_cells_y: int, n_cells_x: int, block_size: int = 2, stride: int = 1
) -> tuple:
    """Shape ``(n_blocks_y, n_blocks_x)`` produced by :func:`normalize_blocks`."""
    if n_cells_y < block_size or n_cells_x < block_size:
        raise ValueError("cell grid smaller than one block")
    return (
        (n_cells_y - block_size) // stride + 1,
        (n_cells_x - block_size) // stride + 1,
    )


__all__ = ["block_grid_shape", "normalize_blocks"]
