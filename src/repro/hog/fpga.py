"""Fixed-point FPGA-style HoG (the paper's baseline feature extractor).

Models the 16-bit datapath of the scalable FPGA object-detection
architecture the paper compares against (Advani et al., FPL 2015):

- pixels are 8-bit integers; gradients are 9-bit signed integers;
- the gradient magnitude uses the alpha-max-beta-min approximation
  ``max + 3/8 * min`` (two shifts and an add in hardware);
- the orientation bin is found without any division or arctangent by
  comparing ``|Iy| * 2^8`` against ``|Ix| * round(tan(boundary) * 2^8)``
  for the bin boundaries, then unfolding the quadrant;
- votes are magnitude-weighted integer accumulations with no orientation
  interpolation (single-bin voting, typical for the embedded datapath).

Block normalisation operates on the integer cell histograms in floating
point, standing in for the downstream classifier-side arithmetic.
"""

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.hog.blocks import block_grid_shape, normalize_blocks
from repro.utils.images import rgb_to_grayscale, to_float_image, to_uint8_image

_TAN_SCALE_BITS = 8


@dataclass(frozen=True)
class FpgaHogConfig:
    """Configuration of the fixed-point FPGA HoG.

    Attributes:
        cell_size: cell edge in pixels.
        block_size: block edge in cells.
        block_stride: block stride in cells.
        n_bins: orientation bins over 0-180 (9 in the paper).
        normalization: block normalisation applied to the integer cell
            histograms (``"l2"`` in Figure 4; ``"none"`` available).
    """

    cell_size: int = 8
    block_size: int = 2
    block_stride: int = 1
    n_bins: int = 9
    normalization: str = "l2"

    def feature_length(self, window_shape: Tuple[int, int]) -> int:
        """Descriptor length for a ``(height, width)`` pixel window."""
        n_cells_y = window_shape[0] // self.cell_size
        n_cells_x = window_shape[1] // self.cell_size
        n_blocks_y, n_blocks_x = block_grid_shape(
            n_cells_y, n_cells_x, self.block_size, self.block_stride
        )
        return n_blocks_y * n_blocks_x * self.block_size**2 * self.n_bins


class FpgaHogDescriptor:
    """Fixed-point HoG with the same interface as :class:`HogDescriptor`.

    Args:
        config: datapath configuration.
    """

    def __init__(self, config: FpgaHogConfig = FpgaHogConfig()) -> None:
        if config.n_bins < 2:
            raise ValueError(f"n_bins must be >= 2, got {config.n_bins}")
        self.config = config
        # Fixed-point tangents of the interior bin boundaries over (0, 90].
        # Boundary angles are multiples of the bin width; tan(90) is handled
        # by comparing against "infinity" (the x == 0 case).
        bin_width = 180.0 / config.n_bins
        boundaries = np.arange(1, config.n_bins + 1) * bin_width
        self._boundaries_deg = boundaries
        self._tan_fixed = np.round(
            np.tan(np.radians(np.minimum(boundaries, 89.999999)))
            * (1 << _TAN_SCALE_BITS)
        ).astype(np.int64)

    # ------------------------------------------------------------------
    def cell_grid(self, image: np.ndarray) -> np.ndarray:
        """Integer cell histograms of shape ``(cy, cx, n_bins)``."""
        gray = to_uint8_image(rgb_to_grayscale(to_float_image(image))).astype(np.int64)

        padded = np.pad(gray, 1, mode="edge")
        ix = padded[1:-1, 2:] - padded[1:-1, :-2]
        iy = padded[:-2, 1:-1] - padded[2:, 1:-1]

        magnitude = _alpha_max_beta_min(ix, iy)
        bins = self._orientation_bin(ix, iy)

        cs = self.config.cell_size
        n_cells_y = gray.shape[0] // cs
        n_cells_x = gray.shape[1] // cs
        grid = np.zeros((n_cells_y, n_cells_x, self.config.n_bins), dtype=np.float64)
        if n_cells_y == 0 or n_cells_x == 0:
            return grid
        height, width = n_cells_y * cs, n_cells_x * cs
        cell_y = (np.arange(height) // cs)[:, None]
        cell_x = (np.arange(width) // cs)[None, :]
        flat_index = (
            (cell_y * n_cells_x + cell_x) * self.config.n_bins
            + bins[:height, :width]
        ).ravel()
        flat = np.zeros(n_cells_y * n_cells_x * self.config.n_bins, dtype=np.int64)
        np.add.at(flat, flat_index, magnitude[:height, :width].ravel())
        return flat.reshape(grid.shape).astype(np.float64)

    def from_cells(self, cells: np.ndarray) -> np.ndarray:
        """Assemble the flat descriptor from a per-cell histogram grid."""
        blocks = normalize_blocks(
            cells,
            block_size=self.config.block_size,
            stride=self.config.block_stride,
            method=self.config.normalization,
        )
        return blocks.ravel()

    def compute(self, image: np.ndarray) -> np.ndarray:
        """The flat descriptor of a whole image treated as one window."""
        return self.from_cells(self.cell_grid(image))

    def feature_length(self, window_shape: Tuple[int, int]) -> int:
        """Descriptor length for a pixel window of ``window_shape``."""
        return self.config.feature_length(window_shape)

    # ------------------------------------------------------------------
    def _orientation_bin(self, ix: np.ndarray, iy: np.ndarray) -> np.ndarray:
        """Quadrant-folded LUT binning: integer compares only.

        Unsigned orientation: fold (ix, iy) so the reference angle lies in
        [0, 90], find the sub-bin by comparing ``|iy| << 8`` to
        ``|ix| * tan_fixed``, then mirror for angles in (90, 180).
        """
        abs_x = np.abs(ix).astype(np.int64)
        abs_y = np.abs(iy).astype(np.int64)
        lhs = abs_y << _TAN_SCALE_BITS

        n_bins = self.config.n_bins
        # Number of boundaries strictly below 90 degrees.
        first_quadrant = self._boundaries_deg < 90.0
        acute_bin = np.zeros(ix.shape, dtype=np.int64)
        for tan_fixed in self._tan_fixed[first_quadrant]:
            acute_bin += (lhs >= abs_x * tan_fixed).astype(np.int64)
        # Vertical gradients (ix == 0, iy != 0) land at exactly 90 degrees.
        vertical = (abs_x == 0) & (abs_y > 0)
        acute_bin = np.where(vertical, n_bins // 2, acute_bin)
        acute_bin = np.minimum(acute_bin, n_bins - 1)

        # Unsigned folding: the orientation is in the second half (90, 180)
        # when ix and iy have opposite signs (negative slope).
        opposite = ((ix > 0) & (iy < 0)) | ((ix < 0) & (iy > 0))
        mirrored = n_bins - 1 - acute_bin
        bins = np.where(opposite, mirrored, acute_bin)
        bins = np.where((abs_x == 0) & (abs_y == 0), 0, bins)
        return bins.astype(np.int64)

    def __repr__(self) -> str:
        return (
            f"FpgaHogDescriptor(bins={self.config.n_bins}, "
            f"norm={self.config.normalization!r}, 16-bit fixed point)"
        )


def _alpha_max_beta_min(ix: np.ndarray, iy: np.ndarray) -> np.ndarray:
    """``max + 3/8 min``: the shift-and-add magnitude of embedded HoG."""
    abs_x = np.abs(ix).astype(np.int64)
    abs_y = np.abs(iy).astype(np.int64)
    larger = np.maximum(abs_x, abs_y)
    smaller = np.minimum(abs_x, abs_y)
    return larger + (smaller >> 2) + (smaller >> 3)


__all__ = ["FpgaHogConfig", "FpgaHogDescriptor"]
