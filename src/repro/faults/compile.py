"""Compiling a :class:`~repro.faults.plan.FaultPlan` against a system.

The compiler turns declarative fault specs into the flat arrays both
simulation engines consume: per-neuron force-fire / force-silent masks,
per-neuron threshold offsets, per-core faulted effective-weight
matrices, and the per-delivery drop/echo rates.

Determinism is the whole design. Every random choice is a **counter-
based hash** (a splitmix64 finalizer chain) of the fault site — never a
draw from a sequential RNG stream — so the outcome of "is this spike
dropped?" depends only on ``(seed, lane, tick, source neuron)`` and not
on the order an engine happens to evaluate deliveries in. The reference
engine hashes one spike at a time; the batch engine hashes whole index
arrays; the bits are identical. Fault hashing also never touches the
simulator's stochastic-threshold RNG, so a faulted run consumes exactly
the random stream of the fault-free run (property: adding faults never
perturbs unrelated stochastic neurons).

Snapshot semantics match :class:`~repro.truenorth.engine.BatchEngine`:
compilation captures the system's configuration (weights, crossbars,
routes) at compile time; later configuration edits are not seen.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.plan import (
    DeadCore,
    DroppedSpikes,
    DuplicatedSpikes,
    FaultPlan,
    RandomDeadCores,
    RandomStuckNeurons,
    StuckNeuron,
    ThresholdDrift,
    WeightBitFlips,
)
from repro.truenorth.types import CORE_AXONS, CORE_NEURONS

_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)

# Domain-separation salts: one independent hash stream per fault kind.
_SALT_LANE = np.uint64(0xA5A5_0001)
_SALT_DROP = np.uint64(0xA5A5_0002)
_SALT_DUP = np.uint64(0xA5A5_0003)
_SALT_STUCK = np.uint64(0xA5A5_0004)
_SALT_DEAD = np.uint64(0xA5A5_0005)
_SALT_FLIP = np.uint64(0xA5A5_0006)
_SALT_DRIFT = np.uint64(0xA5A5_0007)


def _mix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer, vectorized over uint64 arrays.

    uint64 wraparound is the point of the construction, so overflow
    "errors" are silenced for the duration.
    """
    with np.errstate(over="ignore"):
        z = np.asarray(x, dtype=np.uint64) + _GAMMA
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        return z ^ (z >> np.uint64(31))


def _absorb(state: np.ndarray, value) -> np.ndarray:
    """Fold ``value`` into a hash state (both broadcastable uint64)."""
    return _mix64(np.asarray(state, dtype=np.uint64) ^ np.asarray(value, dtype=np.uint64))


def _uniform(state: np.ndarray) -> np.ndarray:
    """Map hash words to floats uniform in ``[0, 1)`` (53-bit mantissa)."""
    return (np.asarray(state, dtype=np.uint64) >> np.uint64(11)).astype(
        np.float64
    ) * (2.0**-53)


def _seed_word(seed: int) -> np.uint64:
    """The plan seed as a uint64 word (negative seeds wrap)."""
    return np.uint64(seed % (2**64))


@dataclass
class CoreFaults:
    """Per-core fault view consumed by the reference engine's tick.

    Any field may be ``None``, meaning "no fault of that kind on this
    core". See :meth:`repro.truenorth.core.NeurosynapticCore.tick`.

    Attributes:
        weights: faulted effective weight matrix ``(256, 256)`` (int64),
            replacing the core's own ``effective_weights()``.
        threshold_offset: per-neuron additive offset applied to the fire
            comparison only, ``(256,)`` int64.
        force_fire: per-neuron stuck-at-fire output mask, ``(256,)``.
        force_silent: per-neuron stuck-at-silent output mask, ``(256,)``.
    """

    weights: Optional[np.ndarray] = None
    threshold_offset: Optional[np.ndarray] = None
    force_fire: Optional[np.ndarray] = None
    force_silent: Optional[np.ndarray] = None


class _CoreRoutes:
    """Routes leaving one core, flattened for per-tick fault hashing."""

    __slots__ = ("src_neuron", "dst_core", "dst_axon", "delay", "crossing")

    def __init__(
        self, rows: List[Tuple[int, int, int, int]], crossing: np.ndarray
    ) -> None:
        arr = np.asarray(rows, dtype=np.int64)
        self.src_neuron = arr[:, 0]
        self.dst_core = arr[:, 1]
        self.dst_axon = arr[:, 2]
        self.delay = arr[:, 3]
        self.crossing = crossing  # per-route chip-boundary flag


class CompiledFaults:
    """A :class:`FaultPlan` lowered onto one concrete system.

    Instances are immutable in spirit: build once, share between a
    simulator and its batch engine freely (all methods are pure reads).

    Args:
        plan: the fault plan (must reference only existing cores and
            in-range neuron indices).
        system: the target :class:`~repro.truenorth.system.NeurosynapticSystem`.

    Raises:
        ConfigurationError: when a spec names an unknown core or an
            out-of-range neuron.
    """

    def __init__(self, plan: FaultPlan, system) -> None:
        self.plan = plan
        self.seed = _seed_word(plan.seed)
        cores = system.cores
        self.n_cores = len(cores)
        self.index_of: Dict[int, int] = {
            core.core_id: i for i, core in enumerate(cores)
        }

        shape = (self.n_cores, CORE_NEURONS)
        self.force_fire = np.zeros(shape, dtype=bool)
        self.force_silent = np.zeros(shape, dtype=bool)
        self.threshold_offset = np.zeros(shape, dtype=np.int64)
        self.drop_rate = 0.0
        self.dup_rate = 0.0
        self._flip: Optional[WeightBitFlips] = None

        core_id_arr = np.array(sorted(self.index_of), dtype=np.uint64)
        for spec in plan.faults:
            if isinstance(spec, StuckNeuron):
                index = self._core_index(spec.core_id)
                if not 0 <= spec.neuron < CORE_NEURONS:
                    raise ConfigurationError(
                        f"stuck neuron out of range: {spec.neuron}"
                    )
                target = (
                    self.force_fire if spec.mode == "fire" else self.force_silent
                )
                target[index, spec.neuron] = True
            elif isinstance(spec, RandomStuckNeurons):
                mask = self._neuron_uniform(_SALT_STUCK, core_id_arr) < spec.fraction
                target = (
                    self.force_fire if spec.mode == "fire" else self.force_silent
                )
                target |= mask
            elif isinstance(spec, DeadCore):
                self.force_silent[self._core_index(spec.core_id), :] = True
            elif isinstance(spec, RandomDeadCores):
                key = _absorb(self.seed, _SALT_DEAD)
                dead = _uniform(_absorb(key, core_id_arr)) < spec.fraction
                self.force_silent[dead, :] = True
            elif isinstance(spec, ThresholdDrift):
                u = self._neuron_uniform(_SALT_DRIFT, core_id_arr)
                self.threshold_offset += np.rint(
                    (2.0 * u - 1.0) * spec.scale
                ).astype(np.int64)
            elif isinstance(spec, WeightBitFlips):
                self._flip = spec
            elif isinstance(spec, DroppedSpikes):
                self.drop_rate = spec.rate
            elif isinstance(spec, DuplicatedSpikes):
                self.dup_rate = spec.rate

        self._drop_key = _absorb(self.seed, _SALT_DROP)
        self._dup_key = _absorb(self.seed, _SALT_DUP)
        self._flip_key = _absorb(self.seed, _SALT_FLIP)
        self._lane_key_base = _absorb(self.seed, _SALT_LANE)

        # Routes grouped by source core, only needed for per-spike faults
        # on the reference path.
        self._routes_by_core: Dict[int, _CoreRoutes] = {}
        if self.has_dynamic:
            chip_of = getattr(system, "chip_of", lambda _core_id: 0)
            by_core: Dict[int, List[Tuple[int, int, int, int]]] = {}
            for route in system.router.routes:
                by_core.setdefault(route.src_core, []).append(
                    (route.src_neuron, route.dst_core, route.dst_axon, route.delay)
                )
            self._routes_by_core = {
                core_id: _CoreRoutes(
                    rows,
                    np.array(
                        [chip_of(core_id) != chip_of(row[1]) for row in rows],
                        dtype=bool,
                    ),
                )
                for core_id, rows in by_core.items()
            }

    # ------------------------------------------------------------------
    @property
    def has_dynamic(self) -> bool:
        """Whether any per-delivery fault is effectively active."""
        return self.drop_rate > 0.0 or self.dup_rate > 0.0

    @property
    def has_output_faults(self) -> bool:
        """Whether any neuron output is forced (stuck / dead faults)."""
        return bool(self.force_fire.any() or self.force_silent.any())

    def _core_index(self, core_id: int) -> int:
        try:
            return self.index_of[core_id]
        except KeyError:
            raise ConfigurationError(
                f"fault plan references unknown core {core_id}"
            ) from None

    def _neuron_uniform(self, salt: np.uint64, core_ids: np.ndarray) -> np.ndarray:
        """Uniforms per (core, neuron) site, shape ``(n_cores, 256)``."""
        key = _absorb(self.seed, salt)
        sites = (core_ids[:, None] << np.uint64(32)) | np.arange(
            CORE_NEURONS, dtype=np.uint64
        )
        return _uniform(_absorb(key, sites))

    # ------------------------------------------------------------------
    # Static faults
    # ------------------------------------------------------------------
    def effective_weights(self, core) -> np.ndarray:
        """The core's effective weight matrix with bit flips applied.

        Args:
            core: a :class:`~repro.truenorth.core.NeurosynapticCore`
                registered in the compiled system.

        Returns:
            ``(256, 256)`` int64 matrix; the core's own matrix when no
            flip fault targets it.
        """
        base = core.effective_weights()
        if self._flip is None or self._flip.rate == 0.0:
            return base
        sites = (
            (np.uint64(core.core_id) << np.uint64(32))
            | (
                np.arange(CORE_AXONS, dtype=np.uint64)[:, None]
                << np.uint64(8)
            )
            | np.arange(CORE_NEURONS, dtype=np.uint64)
        )
        flip = (_uniform(_absorb(self._flip_key, sites)) < self._flip.rate) & (
            core.crossbar
        )
        if not flip.any():
            return base
        return np.where(flip, base ^ np.int64(1 << self._flip.bit), base)

    def core_view(self, core) -> Optional[CoreFaults]:
        """The :class:`CoreFaults` view for one core (``None`` = clean)."""
        index = self._core_index(core.core_id)
        weights = self.effective_weights(core)
        if weights is core.effective_weights():
            weights = None
        offset = self.threshold_offset[index]
        fire = self.force_fire[index]
        silent = self.force_silent[index]
        view = CoreFaults(
            weights=weights,
            threshold_offset=offset if offset.any() else None,
            force_fire=fire if fire.any() else None,
            force_silent=silent if silent.any() else None,
        )
        if (
            view.weights is None
            and view.threshold_offset is None
            and view.force_fire is None
            and view.force_silent is None
        ):
            return None
        return view

    # ------------------------------------------------------------------
    # Dynamic faults
    # ------------------------------------------------------------------
    def lane_keys(self, batch: int) -> np.ndarray:
        """Per-lane hash keys for a ``batch``-lane run.

        Lane ``i`` of every batch run (and lane 0 of a single
        :meth:`~repro.truenorth.simulator.Simulator.run`) uses key ``i``,
        so the two engines and any lane decomposition agree.
        """
        return _absorb(self._lane_key_base, np.arange(batch, dtype=np.uint64))

    def spike_outcomes(
        self,
        lane_keys: np.ndarray,
        tick: int,
        src_cores: np.ndarray,
        src_neurons: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Drop/echo decisions for a set of emitted spike deliveries.

        All array arguments are broadcast together, one element per
        delivery event.

        Args:
            lane_keys: per-event lane key (from :meth:`lane_keys`).
            tick: within-run tick of the emission.
            src_cores: per-event source ``core_id``.
            src_neurons: per-event source neuron index.

        Returns:
            ``(keep, echo)`` boolean arrays: ``keep`` marks deliveries
            that survive dropping; ``echo`` marks *kept* deliveries that
            are additionally delivered one tick late.
        """
        sites = (
            np.asarray(src_cores, dtype=np.uint64) << np.uint64(32)
        ) | np.asarray(src_neurons, dtype=np.uint64)
        tick_word = np.uint64(tick)
        if self.drop_rate > 0.0:
            h = _absorb(_absorb(np.asarray(lane_keys, dtype=np.uint64) ^ self._drop_key, tick_word), sites)
            keep = _uniform(h) >= self.drop_rate
        else:
            keep = np.ones(np.broadcast(lane_keys, sites).shape, dtype=bool)
        if self.dup_rate > 0.0:
            h = _absorb(_absorb(np.asarray(lane_keys, dtype=np.uint64) ^ self._dup_key, tick_word), sites)
            echo = keep & (_uniform(h) < self.dup_rate)
        else:
            echo = np.zeros_like(keep)
        return keep, echo

    def route_core_spikes(
        self,
        router,
        tick: int,
        core_id: int,
        fired: np.ndarray,
        lane_key: np.uint64,
    ) -> Tuple[int, int, int]:
        """Reference-path routing of one core's output under faults.

        Replaces :meth:`~repro.truenorth.router.Router.submit` when
        per-delivery faults are active: deposits surviving spikes (and
        their echoes) directly into the router mailbox.

        Args:
            router: the system's router (receives the deposits).
            tick: emission tick.
            core_id: source core.
            fired: the core's 256-element output spike vector.
            lane_key: this lane's key from :meth:`lane_keys`.

        Returns:
            ``(dropped, duplicated, cross_delivered)`` delivery counts
            for observability; ``cross_delivered`` counts surviving
            deliveries (echoes included) whose route crosses a chip
            boundary under the placement captured at compile time.
        """
        routes = self._routes_by_core.get(core_id)
        if routes is None or not fired.any():
            return 0, 0, 0
        emitted = np.flatnonzero(fired[routes.src_neuron])
        if emitted.size == 0:
            return 0, 0, 0
        neurons = routes.src_neuron[emitted]
        keep, echo = self.spike_outcomes(
            np.full(emitted.size, lane_key, dtype=np.uint64),
            tick,
            np.full(emitted.size, core_id, dtype=np.uint64),
            neurons,
        )
        dst_core = routes.dst_core[emitted]
        dst_axon = routes.dst_axon[emitted]
        due = tick + routes.delay[emitted]
        for i in np.flatnonzero(keep):
            router.inject(int(due[i]), int(dst_core[i]), int(dst_axon[i]))
        for i in np.flatnonzero(echo):
            router.inject(int(due[i]) + 1, int(dst_core[i]), int(dst_axon[i]))
        crossing = routes.crossing[emitted]
        cross_delivered = int(crossing[keep].sum()) + int(crossing[echo].sum())
        return int((~keep).sum()), int(echo.sum()), cross_delivered


def compile_faults(plan: Optional[FaultPlan], system) -> Optional[CompiledFaults]:
    """Compile ``plan`` against ``system``; ``None``/empty plans pass through.

    Args:
        plan: a fault plan, an already compiled :class:`CompiledFaults`
            (returned untouched, so a simulator and its engine can share
            one compilation), or ``None``.
        system: the target system.

    Returns:
        A :class:`CompiledFaults`, or ``None`` when there is nothing to
        inject.
    """
    if plan is None:
        return None
    if isinstance(plan, CompiledFaults):
        return plan
    if not plan:
        return None
    return CompiledFaults(plan, system)


__all__ = ["CompiledFaults", "CoreFaults", "compile_faults"]
