"""Deterministic, seedable hardware fault injection (DESIGN.md §11).

Declare *what breaks* as a :class:`FaultPlan` (pure data), hand the plan
to either simulation engine, and both inject bit-identically — every
random fault decision is a counter-based hash of the fault site, never a
sequential RNG draw. ``docs/FAULT_MODEL.md`` is the normative semantics
spec; ``python -m repro faults`` runs the detection-robustness sweep.
"""

from repro.faults.compile import CompiledFaults, CoreFaults, compile_faults
from repro.faults.plan import (
    DYNAMIC_SPECS,
    DeadCore,
    DroppedSpikes,
    DuplicatedSpikes,
    FaultPlan,
    FaultSpec,
    RandomDeadCores,
    RandomStuckNeurons,
    StuckNeuron,
    ThresholdDrift,
    WeightBitFlips,
)

__all__ = [
    "DYNAMIC_SPECS",
    "CompiledFaults",
    "CoreFaults",
    "DeadCore",
    "DroppedSpikes",
    "DuplicatedSpikes",
    "FaultPlan",
    "FaultSpec",
    "RandomDeadCores",
    "RandomStuckNeurons",
    "StuckNeuron",
    "ThresholdDrift",
    "WeightBitFlips",
    "compile_faults",
]
