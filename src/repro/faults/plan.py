"""Fault specifications: what can break, declared as data.

A :class:`FaultPlan` is an immutable, seedable description of hardware
misbehaviour to inject into a simulated
:class:`~repro.truenorth.system.NeurosynapticSystem`. The plan itself is
pure data — no randomness is drawn until it is compiled against a
concrete system (:mod:`repro.faults.compile`), and every random choice
is a deterministic function of ``(seed, fault site)``, never of
iteration order. That is what lets the tick-accurate reference engine
and the vectorized batch engine inject *bit-identically* (the extended
differential suite in ``tests/test_engine_conformance.py`` proves it).

Two fault categories exist, with different determinism scopes
(``docs/FAULT_MODEL.md`` is the normative spec):

- **Static (chip-level) faults** — :class:`StuckNeuron`,
  :class:`RandomStuckNeurons`, :class:`DeadCore`,
  :class:`RandomDeadCores`, :class:`WeightBitFlips`,
  :class:`ThresholdDrift`. These model manufacturing defects: the same
  physical sites are broken in every lane of a batch run and in every
  run with the same seed.
- **Dynamic (event-level) faults** — :class:`DroppedSpikes`,
  :class:`DuplicatedSpikes`. These model transient routing events: each
  routed spike delivery is independently affected, keyed by
  ``(seed, lane, tick, source neuron)``.

Rate-parameterised faults are **nested across rates**: with a fixed
seed, every fault site active at rate ``r`` is also active at every
rate ``r' > r``, so sweeping the rate degrades the system monotonically
by construction (the property ``python -m repro faults --check``
verifies end to end).
"""

import hashlib
from dataclasses import dataclass, field
from typing import Tuple, Union

from repro.errors import ConfigurationError

_STUCK_MODES = ("fire", "silent")


def _check_rate(name: str, rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")


def _check_nonnegative(name: str, value: int) -> None:
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")


@dataclass(frozen=True)
class StuckNeuron:
    """One neuron whose axon output is stuck at a constant value.

    ``mode="fire"`` forces a spike on every tick; ``mode="silent"``
    suppresses every spike. The fault clamps the *output* only: membrane
    integration, leak, and reset follow the true threshold crossing, so
    the neuron's internal dynamics (and the RNG stream of stochastic
    neurons) are unchanged.

    Attributes:
        core_id: core holding the neuron.
        neuron: neuron index in ``[0, 256)``.
        mode: ``"fire"`` or ``"silent"``.
    """

    core_id: int
    neuron: int
    mode: str = "silent"

    def __post_init__(self) -> None:
        _check_nonnegative("core_id", self.core_id)
        _check_nonnegative("neuron", self.neuron)
        if self.mode not in _STUCK_MODES:
            raise ConfigurationError(
                f"mode must be one of {_STUCK_MODES}, got {self.mode!r}"
            )


@dataclass(frozen=True)
class RandomStuckNeurons:
    """A seed-selected fraction of all neurons stuck at one value.

    Selection hashes ``(seed, core_id, neuron)`` against ``fraction``,
    so the stuck set is identical across lanes and engines, and nested
    across fractions (every neuron stuck at fraction ``f`` stays stuck
    at any ``f' > f`` with the same seed).

    Attributes:
        fraction: expected fraction of neurons affected, in ``[0, 1]``.
        mode: ``"fire"`` or ``"silent"``.
    """

    fraction: float
    mode: str = "silent"

    def __post_init__(self) -> None:
        _check_rate("fraction", self.fraction)
        if self.mode not in _STUCK_MODES:
            raise ConfigurationError(
                f"mode must be one of {_STUCK_MODES}, got {self.mode!r}"
            )


@dataclass(frozen=True)
class DeadCore:
    """One core whose 256 neuron outputs are all silenced.

    Equivalent to stuck-silent on every neuron of the core: the core
    still integrates inputs internally, but no spike leaves it — the
    model of a core whose output router port is dead.

    Attributes:
        core_id: the dead core.
    """

    core_id: int

    def __post_init__(self) -> None:
        _check_nonnegative("core_id", self.core_id)


@dataclass(frozen=True)
class RandomDeadCores:
    """A seed-selected fraction of all cores killed outright.

    Selection hashes ``(seed, core_id)`` against ``fraction`` — nested
    across fractions like :class:`RandomStuckNeurons`.

    Attributes:
        fraction: expected fraction of cores affected, in ``[0, 1]``.
    """

    fraction: float

    def __post_init__(self) -> None:
        _check_rate("fraction", self.fraction)


@dataclass(frozen=True)
class DroppedSpikes:
    """Each routed spike delivery is independently lost with ``rate``.

    Applies to inter-core routed spikes only (the router fabric);
    external input-port injections are off-chip and unaffected. The
    drop decision hashes ``(seed, lane, tick, source core, source
    neuron)``, so it is identical across engines and independent of the
    order deliveries are scattered in. A dropped spike is never
    duplicated.

    Attributes:
        rate: per-delivery drop probability, in ``[0, 1]``.
    """

    rate: float

    def __post_init__(self) -> None:
        _check_rate("rate", self.rate)


@dataclass(frozen=True)
class DuplicatedSpikes:
    """Each *delivered* routed spike is independently echoed once.

    The echo arrives on the same destination axon one tick after the
    original delivery (delay ``d`` becomes deliveries at ``d`` and
    ``d + 1``), modelling a router retransmission. Duplication is
    evaluated only for spikes that survived :class:`DroppedSpikes`.

    Attributes:
        rate: per-delivery echo probability, in ``[0, 1]``.
    """

    rate: float

    def __post_init__(self) -> None:
        _check_rate("rate", self.rate)


@dataclass(frozen=True)
class WeightBitFlips:
    """Bit flips in stored synaptic weights (the weight-LUT SRAM).

    A seed-selected fraction of *connected* crossbar points have bit
    ``bit`` of their effective synaptic weight XOR-flipped (the weight
    is modelled as a two's-complement integer word). Disconnected
    crossbar points stay at weight 0 — with the connectivity bit off,
    no current flows regardless of the LUT contents. Selection hashes
    ``(seed, core_id, axon, neuron)`` and is nested across rates.

    Attributes:
        rate: expected fraction of connected synapses flipped.
        bit: which bit of the weight word to flip (``0`` = LSB).
    """

    rate: float
    bit: int = 0

    def __post_init__(self) -> None:
        _check_rate("rate", self.rate)
        if not 0 <= self.bit < 16:
            raise ConfigurationError(
                f"bit must be in [0, 16), got {self.bit}"
            )


@dataclass(frozen=True)
class ThresholdDrift:
    """Per-neuron additive drift of the firing threshold.

    Every neuron's *comparison* threshold gains a deterministic offset
    drawn uniformly from ``[-scale, +scale]`` (rounded to an integer)
    by hashing ``(seed, core_id, neuron)``. Only the fire comparison
    drifts; the linear-reset subtraction keeps the configured threshold,
    matching a drifted comparator in front of an exact subtractor.

    Attributes:
        scale: maximum drift magnitude in threshold units (``>= 0``).
    """

    scale: float

    def __post_init__(self) -> None:
        if self.scale < 0:
            raise ConfigurationError(
                f"scale must be >= 0, got {self.scale}"
            )


FaultSpec = Union[
    StuckNeuron,
    RandomStuckNeurons,
    DeadCore,
    RandomDeadCores,
    DroppedSpikes,
    DuplicatedSpikes,
    WeightBitFlips,
    ThresholdDrift,
]

_SPEC_TYPES = (
    StuckNeuron,
    RandomStuckNeurons,
    DeadCore,
    RandomDeadCores,
    DroppedSpikes,
    DuplicatedSpikes,
    WeightBitFlips,
    ThresholdDrift,
)

#: Dynamic (event-level) fault types; everything else is static.
DYNAMIC_SPECS = (DroppedSpikes, DuplicatedSpikes)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seedable bundle of fault specifications.

    Both simulation engines accept a plan
    (``Simulator(system, faults=plan)``,
    ``BatchEngine(system, faults=plan)``) and inject identically; see
    ``docs/FAULT_MODEL.md`` for the exact semantics of every spec.

    Attributes:
        faults: the fault specifications (any iterable is frozen to a
            tuple). At most one :class:`DroppedSpikes` and one
            :class:`DuplicatedSpikes` spec may appear.
        seed: entropy for every seed-derived choice in the plan.
    """

    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for spec in self.faults:
            if not isinstance(spec, _SPEC_TYPES):
                raise ConfigurationError(
                    f"unknown fault spec type {type(spec).__name__}"
                )
        for kind in DYNAMIC_SPECS:
            if sum(isinstance(s, kind) for s in self.faults) > 1:
                raise ConfigurationError(
                    f"at most one {kind.__name__} spec per plan"
                )
        if not isinstance(self.seed, int):
            raise ConfigurationError(
                f"seed must be an int, got {type(self.seed).__name__}"
            )

    def __bool__(self) -> bool:
        """Whether the plan contains any fault at all."""
        return bool(self.faults)

    @property
    def has_dynamic(self) -> bool:
        """Whether any event-level (per-spike) fault is present."""
        return any(isinstance(s, DYNAMIC_SPECS) for s in self.faults)

    @property
    def is_static(self) -> bool:
        """Whether every fault is chip-level (lane-independent)."""
        return not self.has_dynamic

    def digest(self) -> str:
        """Stable hex digest of the plan (specs + seed).

        Used by scorers to fold the plan into their ``model_id`` so
        cached results can never mix faulted and fault-free scores.
        """
        payload = repr((self.seed, self.faults)).encode()
        return hashlib.blake2b(payload, digest_size=8).hexdigest()


__all__ = [
    "DYNAMIC_SPECS",
    "DeadCore",
    "DroppedSpikes",
    "DuplicatedSpikes",
    "FaultPlan",
    "FaultSpec",
    "RandomDeadCores",
    "RandomStuckNeurons",
    "StuckNeuron",
    "ThresholdDrift",
    "WeightBitFlips",
]
