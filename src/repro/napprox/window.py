"""Window-scale NApprox deployments: many cell modules in one system.

A 64x128 detection window holds 8 x 16 = 128 cells; at 22 cores per cell
module the extractor occupies 2,816 cores (the paper's figure, at its 26
cores per module, is 3,328 for a window — 1 chip either way). This
module assembles any number of cell modules into one
:class:`~repro.truenorth.system.NeurosynapticSystem` and reports the
chip placement, making the Table 2 resource arithmetic inspectable on
real (simulated) hardware structures rather than just closed-form.
"""

from dataclasses import dataclass
from typing import List, Tuple

from repro.napprox.corelet_impl import NApproxCellCorelet, NApproxFootprint
from repro.truenorth.placement import PlacementReport, grouped_placement
from repro.truenorth.power import CHIP_CORES
from repro.truenorth.system import NeurosynapticSystem

WINDOW_CELLS = 128
"""Cells in a 64x128 detection window (8 x 16)."""


@dataclass
class WindowDeployment:
    """A multi-cell NApprox deployment.

    Attributes:
        system: the system holding every module's cores.
        footprints: one per cell module, in build order.
        placement: chip placement keeping each module co-resident.
    """

    system: NeurosynapticSystem
    footprints: List[NApproxFootprint]
    placement: PlacementReport

    @property
    def total_cores(self) -> int:
        """Cores across all modules."""
        return sum(fp.core_count for fp in self.footprints)

    @property
    def cores_per_cell(self) -> int:
        """Cores of one module."""
        return self.footprints[0].core_count if self.footprints else 0


def build_window_deployment(
    n_cells: int = WINDOW_CELLS,
    direction_scale: int = 16,
    magnitude_threshold: int = 4,
    cores_per_chip: int = CHIP_CORES,
) -> WindowDeployment:
    """Instantiate ``n_cells`` NApprox cell modules in one system.

    Args:
        n_cells: modules to build (128 = one full window).
        direction_scale: Q of the direction tables.
        magnitude_threshold: T of the magnitude neurons.
        cores_per_chip: chip capacity for the placement report.

    Returns:
        A :class:`WindowDeployment`. Because modules are independent, a
        grouped placement never splits a module, so no intra-module route
        crosses a chip boundary.
    """
    if n_cells < 1:
        raise ValueError(f"n_cells must be >= 1, got {n_cells}")
    system = NeurosynapticSystem("napprox-window")
    footprints = []
    for index in range(n_cells):
        corelet = NApproxCellCorelet(
            direction_scale, magnitude_threshold, name=f"cell{index}"
        )
        footprints.append(corelet.build(system))
    placement = grouped_placement(
        system,
        groups=[fp.core_ids for fp in footprints],
        cores_per_chip=cores_per_chip,
    )
    return WindowDeployment(system=system, footprints=footprints, placement=placement)


def window_core_budget(
    cores_per_cell: int, n_cells: int = WINDOW_CELLS
) -> Tuple[int, int]:
    """``(total_cores, chips)`` for a window-scale extractor."""
    if cores_per_cell < 0 or n_cells < 0:
        raise ValueError("counts must be non-negative")
    total = cores_per_cell * n_cells
    chips = -(-total // CHIP_CORES) if total else 0
    return total, chips


__all__ = ["WINDOW_CELLS", "WindowDeployment", "build_window_deployment", "window_core_budget"]
