"""The NApprox HoG cell module as neurosynaptic cores.

This is the direct programmatic mapping of Table 1 onto the TrueNorth
architecture, one 8x8-pixel cell per module:

1. **Gradient core** (pattern matching): for each of the 64 interior
   pixels of the 10x10 input patch, four rectified-difference neurons
   compute the spike-count gradients ``Ix+, Ix-, Iy+, Iy-`` using the
   (-1 0 1) / (1 0 -1) filter pairs.
2. **Magnitude cores** (inner product): per pixel and per direction
   ``d`` of the 18 histogram bins, a linear-reset neuron accumulates
   ``round(Q cos theta_d) * Ix + round(Q sin theta_d) * Iy`` and emits one
   spike per ``Q`` of positive projection — the directional magnitude
   ``m_d`` as a spike count. The four-entry weight LUT holds
   ``(cx, -cx, cy, -cy)`` exactly.
3. **Comparator cores** (comparison): persistent indicator neurons
   ``c_d = (m_d > m_{d+1})`` (cyclic). Adjacent directions alternate
   axon types so one magnitude line serves as ``+1`` for one comparator
   and ``-1`` for the next without any splitter.
4. **Winner cores**: gated, memoryless pulse neurons evaluate
   ``winner_b = c_b AND NOT c_{b-1}`` on the single readout tick marked
   by the external gate line — for a unimodal projection profile this is
   the argmax direction; a zero gradient yields no vote.
5. **Histogram cores** (binned by count): per-pixel-group partial
   counters and a final accumulator emit, per bin, one spike per voting
   pixel. The decoded spike counts are the cell's 18-bin histogram.

The whole module occupies 22 cores; the paper reports 26 for its
implementation (the difference is plumbing the type-alternation trick
removes). Throughput matches the paper: one cell per ``window`` ticks
when pipelined, i.e. ~15 cells/s at the 64-spike (6-bit) representation.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.coding.rate import RateEncoder
from repro.napprox.software import N_DIRECTIONS, direction_tables
from repro.truenorth.simulator import Simulator
from repro.truenorth.system import NeurosynapticSystem
from repro.truenorth.types import NeuronParameters, ResetMode
from repro.utils.rng import RngLike

_PATCH = 10
"""The paper feeds 10x10 pixels to compute one 8x8 cell (Section 4)."""

_CELL = 8
_PIXELS = _CELL * _CELL
_DEEP_FLOOR = 2**18
_GATE_WEIGHT = 3
_PIXELS_PER_CORE = 14  # 14 * 18 = 252 neurons <= 256


@dataclass(frozen=True)
class NApproxFootprint:
    """Concrete layout of one built NApprox cell module.

    Attributes:
        pixel_targets: for each of the 100 patch pixels (row-major), the
            ``(core_id, axon)`` pairs its external spike line must drive.
        gate_targets: axons the readout-gate line must drive.
        histogram_outputs: the 18 final-histogram neurons, bin order.
        core_ids: all allocated cores.
    """

    pixel_targets: Tuple[Tuple[Tuple[int, int], ...], ...]
    gate_targets: Tuple[Tuple[int, int], ...]
    histogram_outputs: Tuple[Tuple[int, int], ...]
    core_ids: Tuple[int, ...]

    @property
    def core_count(self) -> int:
        """Cores consumed by the module."""
        return len(self.core_ids)


class NApproxCellCorelet:
    """Builder of the per-cell NApprox pipeline.

    Args:
        direction_scale: integer scale Q of the direction tables (LUT
            weights, 9-bit signed on the real hardware).
        magnitude_threshold: firing threshold T of the magnitude neurons
            — one spike per T of accumulated positive projection. The
            drain phase must cover ``max_projection / T`` ticks, so very
            small T saturates on high-contrast cells (see
            :class:`NApproxCellRunner` timing).
        name: prefix for allocated core names.
    """

    def __init__(
        self,
        direction_scale: int = 16,
        magnitude_threshold: int = 4,
        name: str = "napprox",
    ) -> None:
        if direction_scale < 1:
            raise ValueError(f"direction_scale must be >= 1, got {direction_scale}")
        if magnitude_threshold < 1:
            raise ValueError(
                f"magnitude_threshold must be >= 1, got {magnitude_threshold}"
            )
        self.direction_scale = direction_scale
        self.magnitude_threshold = magnitude_threshold
        self.name = name
        self._cx, self._cy = direction_tables(direction_scale)

    def build(self, system: NeurosynapticSystem) -> NApproxFootprint:
        """Allocate and wire all stages; returns the module footprint."""
        core_ids: List[int] = []

        # ------------------------------------------------------------------
        # Stage 1: gradient core. Axons 0..99 carry the pixels with type 0
        # (+1); axons 100..199 carry the same pixels with type 1 (-1).
        # Neuron layout: interior pixel slot p (0..63) occupies neurons
        # 4p .. 4p+3 = (Ix+, Ix-, Iy+, Iy-).
        # ------------------------------------------------------------------
        grad = system.new_core(f"{self.name}.grad")
        core_ids.append(grad.core_id)
        for pixel in range(_PATCH * _PATCH):
            grad.set_axon_type(pixel, 0)
            grad.set_axon_type(100 + pixel, 1)
        # Deep negative floor: inhibitory spikes must be remembered, not
        # clipped, or interleaved +/- streams overcount enormously. The
        # output count is then the prefix-max of the net stream, which for
        # evenly spaced rate codes matches max(0, net) to within a spike.
        rect = NeuronParameters(
            weights=(1, -1, 0, 0),
            threshold=1,
            reset_mode=ResetMode.LINEAR,
            floor=_DEEP_FLOOR,
        )
        interior = [(r, c) for r in range(1, 9) for c in range(1, 9)]
        for slot, (r, c) in enumerate(interior):
            left = r * _PATCH + (c - 1)
            right = r * _PATCH + (c + 1)
            above = (r - 1) * _PATCH + c
            below = (r + 1) * _PATCH + c
            # (plus_pixel, minus_pixel) per component: Ix = right - left,
            # Iy = above - below (paper: Ix = P5 - P3, Iy = P1 - P7).
            pairs = [(right, left), (left, right), (above, below), (below, above)]
            for component, (plus, minus) in enumerate(pairs):
                neuron = 4 * slot + component
                grad.set_neuron(neuron, rect)
                grad.connect(plus, neuron)
                grad.connect(100 + minus, neuron)

        pixel_targets = tuple(
            ((grad.core_id, pixel), (grad.core_id, 100 + pixel))
            for pixel in range(_PATCH * _PATCH)
        )

        groups = [
            list(range(start, min(start + _PIXELS_PER_CORE, _PIXELS)))
            for start in range(0, _PIXELS, _PIXELS_PER_CORE)
        ]

        # ------------------------------------------------------------------
        # Stage 2: magnitude cores. Per pixel slot-in-core s, axons
        # 4s..4s+3 carry (Ix+, Ix-, Iy+, Iy-) with types (0, 1, 2, 3);
        # neurons 18s..18s+17 are the directional magnitudes.
        # ------------------------------------------------------------------
        mag_cores = []
        for gi, group in enumerate(groups):
            core = system.new_core(f"{self.name}.mag{gi}")
            core_ids.append(core.core_id)
            mag_cores.append(core)
            for s, pixel_slot in enumerate(group):
                for component in range(4):
                    axon = 4 * s + component
                    core.set_axon_type(axon, component)
                    system.add_route(
                        grad.core_id, 4 * pixel_slot + component, core.core_id, axon
                    )
                for d in range(N_DIRECTIONS):
                    cx, cy = int(self._cx[d]), int(self._cy[d])
                    neuron = 18 * s + d
                    core.set_neuron(
                        neuron,
                        NeuronParameters(
                            weights=(cx, -cx, cy, -cy),
                            threshold=self.magnitude_threshold,
                            reset_mode=ResetMode.LINEAR,
                            floor=_DEEP_FLOOR,
                        ),
                    )
                    for component in range(4):
                        core.connect(4 * s + component, neuron)

        # ------------------------------------------------------------------
        # Stage 3: comparator cores. Axon 18s + d carries m_d of the
        # pixel in slot s with type d % 2; neuron 18s + d is the
        # indicator c_d = (m_d > m_{d+1}).
        # ------------------------------------------------------------------
        cmp_cores = []
        even_cmp = NeuronParameters(
            weights=(1, -1, 0, 0), threshold=1, reset_mode=ResetMode.NONE,
            floor=_DEEP_FLOOR,
        )
        odd_cmp = NeuronParameters(
            weights=(-1, 1, 0, 0), threshold=1, reset_mode=ResetMode.NONE,
            floor=_DEEP_FLOOR,
        )
        for gi, group in enumerate(groups):
            core = system.new_core(f"{self.name}.cmp{gi}")
            core_ids.append(core.core_id)
            cmp_cores.append(core)
            for s in range(len(group)):
                for d in range(N_DIRECTIONS):
                    axon = 18 * s + d
                    core.set_axon_type(axon, d % 2)
                    system.add_route(
                        mag_cores[gi].core_id, 18 * s + d, core.core_id, axon
                    )
                for d in range(N_DIRECTIONS):
                    neuron = 18 * s + d
                    core.set_neuron(neuron, even_cmp if d % 2 == 0 else odd_cmp)
                    core.connect(18 * s + d, neuron)                        # +m_d
                    core.connect(18 * s + (d + 1) % N_DIRECTIONS, neuron)   # -m_{d+1}

        # ------------------------------------------------------------------
        # Stage 4: winner cores. Axon 18s + d carries c_d (type d % 2);
        # the last axon (255) is the gate (type 2). Winner b fires on the
        # readout tick iff c_b fired and c_{b-1} did not:
        # 3*gate + c_b - c_{b-1} >= 4, evaluated memorylessly
        # (threshold 1, leak -3, pulse reset).
        # ------------------------------------------------------------------
        winner_cores = []
        gate_targets: List[Tuple[int, int]] = []
        even_win = NeuronParameters(
            weights=(1, -1, _GATE_WEIGHT, 0), threshold=1, leak=-_GATE_WEIGHT,
            reset_mode=ResetMode.RESET, reset_potential=0, floor=0,
        )
        odd_win = NeuronParameters(
            weights=(-1, 1, _GATE_WEIGHT, 0), threshold=1, leak=-_GATE_WEIGHT,
            reset_mode=ResetMode.RESET, reset_potential=0, floor=0,
        )
        gate_axon = 255
        for gi, group in enumerate(groups):
            core = system.new_core(f"{self.name}.win{gi}")
            core_ids.append(core.core_id)
            winner_cores.append(core)
            core.set_axon_type(gate_axon, 2)
            gate_targets.append((core.core_id, gate_axon))
            for s in range(len(group)):
                for d in range(N_DIRECTIONS):
                    axon = 18 * s + d
                    core.set_axon_type(axon, d % 2)
                    system.add_route(
                        cmp_cores[gi].core_id, 18 * s + d, core.core_id, axon
                    )
                for b in range(N_DIRECTIONS):
                    neuron = 18 * s + b
                    core.set_neuron(neuron, even_win if b % 2 == 0 else odd_win)
                    core.connect(18 * s + b, neuron)                        # +c_b
                    core.connect(18 * s + (b - 1) % N_DIRECTIONS, neuron)   # -c_{b-1}
                    core.connect(gate_axon, neuron)

        # ------------------------------------------------------------------
        # Stage 5: per-group partial histograms, then the final
        # accumulator. Both count at one spike per vote (linear reset).
        # ------------------------------------------------------------------
        count = NeuronParameters(
            weights=(1, -1, 0, 0), threshold=1, reset_mode=ResetMode.LINEAR, floor=0
        )
        partial_cores = []
        for gi, group in enumerate(groups):
            core = system.new_core(f"{self.name}.hist{gi}")
            core_ids.append(core.core_id)
            partial_cores.append(core)
            for s in range(len(group)):
                for b in range(N_DIRECTIONS):
                    axon = 18 * s + b
                    core.set_axon_type(axon, 0)
                    system.add_route(
                        winner_cores[gi].core_id, 18 * s + b, core.core_id, axon
                    )
            for b in range(N_DIRECTIONS):
                core.set_neuron(b, count)
                for s in range(len(group)):
                    core.connect(18 * s + b, b)

        final = system.new_core(f"{self.name}.final")
        core_ids.append(final.core_id)
        for gi in range(len(groups)):
            for b in range(N_DIRECTIONS):
                axon = 18 * gi + b
                final.set_axon_type(axon, 0)
                system.add_route(partial_cores[gi].core_id, b, final.core_id, axon)
        for b in range(N_DIRECTIONS):
            final.set_neuron(b, count)
            for gi in range(len(groups)):
                final.connect(18 * gi + b, b)

        return NApproxFootprint(
            pixel_targets=pixel_targets,
            gate_targets=tuple(gate_targets),
            histogram_outputs=tuple((final.core_id, b) for b in range(N_DIRECTIONS)),
            core_ids=tuple(core_ids),
        )


class NApproxCellRunner:
    """Run the NApprox cell corelet on the simulator, patch in, histogram out.

    Args:
        window: spike window (data ticks); 64 is the paper's 6-bit setting.
        direction_scale: integer scale Q of the direction tables.
        rng: randomness source (the module itself is deterministic; the
            seed only matters if stochastic neurons are added).
        engine: simulation engine, ``"reference"`` or ``"batch"``; the
            batch engine evaluates :meth:`extract_batch` patches in one
            vectorized pass with bit-identical histograms.
        cores_per_chip: when set, place the module across simulated
            chips of this capacity before compiling the engine, so run
            ledgers split router hops into intra- vs cross-chip counts.
            Placement never changes results — only the accounting.
    """

    def __init__(
        self,
        window: int = 64,
        direction_scale: int = 16,
        magnitude_threshold: int = 4,
        rng: RngLike = 0,
        engine: str = "reference",
        cores_per_chip: Optional[int] = None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.direction_scale = direction_scale
        self.magnitude_threshold = magnitude_threshold
        self.system = NeurosynapticSystem("napprox-cell")
        self.footprint = NApproxCellCorelet(
            direction_scale, magnitude_threshold
        ).build(self.system)
        self.system.add_input_port(
            "pixels", [list(t) for t in self.footprint.pixel_targets]
        )
        self.system.add_input_port("gate", [list(self.footprint.gate_targets)])
        self.system.add_output_probe("hist", list(self.footprint.histogram_outputs))
        self.placement = None
        if cores_per_chip is not None:
            from repro.truenorth.placement import apply_best_placement

            self.placement = apply_best_placement(
                self.system, cores_per_chip=cores_per_chip
            )
        self._simulator = Simulator(self.system, rng=rng, engine=engine)
        self._encoder = RateEncoder(window)

        # Timing: data [0, W); the magnitude drain must cover the largest
        # per-direction count, max_projection / T with max_projection
        # bounded by ~1.4 * Q * W for a full-swing gradient; gate fires
        # once; histogram counters drain for up to 64 + group count ticks.
        # Cells whose drain exceeds this budget saturate (very high
        # contrast at small T) — the validation suite stays within it.
        drain = int(1.5 * direction_scale * window / magnitude_threshold)
        self._gate_tick = window + 2 + min(drain, 6 * window) + 8
        self._total_ticks = self._gate_tick + _PIXELS + 24

    @property
    def core_count(self) -> int:
        """Cores used by the module (22; the paper reports 26)."""
        return self.footprint.core_count

    @property
    def ticks_per_cell(self) -> int:
        """Pipelined ticks per cell = the data window length."""
        return self.window

    def extract(self, patch: np.ndarray) -> np.ndarray:
        """Histogram one 10x10 patch.

        Args:
            patch: pixel values in ``[0, 1]``, shape ``(10, 10)``.

        Returns:
            18-element float histogram (vote counts, each in ``[0, 64]``).
        """
        arr = np.asarray(patch, dtype=np.float64)
        if arr.shape != (_PATCH, _PATCH):
            raise ValueError(f"patch must be ({_PATCH}, {_PATCH}), got {arr.shape}")
        if arr.min() < 0.0 or arr.max() > 1.0:
            raise ValueError("patch values must lie in [0, 1]")

        raster = np.zeros((self._total_ticks, _PATCH * _PATCH), dtype=bool)
        raster[: self.window] = self._encoder.encode(arr.ravel())
        gate = np.zeros((self._total_ticks, 1), dtype=bool)
        gate[self._gate_tick, 0] = True
        result = self._simulator.run(
            self._total_ticks, {"pixels": raster, "gate": gate}
        )
        return result.spike_counts("hist").astype(np.float64)

    def extract_batch(self, patches: np.ndarray) -> np.ndarray:
        """Histogram a batch of 10x10 patches in one simulation pass.

        On the ``batch`` engine all patches advance through the module
        simultaneously (one matmul per tick); on the ``reference``
        engine this falls back to one sequential run per patch. Either
        way each row equals :meth:`extract` of the corresponding patch.

        Args:
            patches: pixel values in ``[0, 1]``, shape ``(n, 10, 10)``.

        Returns:
            ``(n, 18)`` float histogram matrix.
        """
        arr = np.asarray(patches, dtype=np.float64)
        if arr.ndim != 3 or arr.shape[1:] != (_PATCH, _PATCH):
            raise ValueError(
                f"patches must be (n, {_PATCH}, {_PATCH}), got {arr.shape}"
            )
        if arr.shape[0] == 0:
            return np.zeros((0, N_DIRECTIONS), dtype=np.float64)
        if arr.min() < 0.0 or arr.max() > 1.0:
            raise ValueError("patch values must lie in [0, 1]")

        rasters = np.zeros(
            (arr.shape[0], self._total_ticks, _PATCH * _PATCH), dtype=bool
        )
        for lane, patch in enumerate(arr):
            rasters[lane, : self.window] = self._encoder.encode(patch.ravel())
        gate = np.zeros((self._total_ticks, 1), dtype=bool)
        gate[self._gate_tick, 0] = True
        result = self._simulator.run_batch(
            self._total_ticks, {"pixels": rasters, "gate": gate}
        )
        return result.spike_counts("hist").astype(np.float64)


__all__ = ["NApproxCellCorelet", "NApproxCellRunner", "NApproxFootprint"]
