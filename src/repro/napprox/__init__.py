"""NApprox: HoG approximated with TrueNorth primitives (paper Section 3.1).

Table 1 of the paper maps each HoG component onto a neuromorphic
primitive:

- gradient vector -> pattern matching with the filters (-1 0 1),
  (1 0 -1) and transposes, producing the rectified pair
  ``Ix, -Ix, Iy, -Iy``;
- gradient angle -> comparison: the direction ``theta`` for which
  ``Ix cos(theta) + Iy sin(theta)`` is maximum;
- gradient magnitude -> inner product ``Ix cos(theta) + Iy sin(theta)``;
- histogram -> binned by count, 18 bins over 0-360.

Two software models (:mod:`repro.napprox.software`) mirror the paper's
methodology: ``NApprox(fp)`` evaluates the mapping in floating point and
``NApprox`` applies TrueNorth-compatible quantisation (64-spike / 6-bit
inputs, integer direction tables). :mod:`repro.napprox.corelet_impl`
builds the same pipeline out of neurosynaptic cores and
:mod:`repro.napprox.validation` reproduces the paper's >=99.5 %
hardware-vs-software correlation check.
"""

from repro.napprox.software import NApproxConfig, NApproxDescriptor
from repro.napprox.corelet_impl import NApproxCellCorelet, NApproxCellRunner
from repro.napprox.validation import CorrelationReport, correlate_corelet_vs_software

__all__ = [
    "CorrelationReport",
    "NApproxCellCorelet",
    "NApproxCellRunner",
    "NApproxConfig",
    "NApproxDescriptor",
    "correlate_corelet_vs_software",
]
