"""Software models of the NApprox HoG (full precision and quantised).

The software model "operates equivalently to the NApprox HoG on
TrueNorth" (paper Section 3.1): it evaluates the exact same
pattern-matching / comparison / inner-product pipeline, so it can explore
quantisation widths beyond those available on the platform.

The angle rule is the corelet's decision rule, not a float ``arctan``:
direction ``b`` wins when its directional magnitude strictly beats the
next direction and is not strictly beaten by the previous one (cyclic).
For an exact projection profile this picks the argmax; under quantisation
it reproduces the hardware's tie behaviour, including the possibility of
zero votes (flat profile) — which is what lets the corelet-vs-software
correlation of :mod:`repro.napprox.validation` approach 1.
"""

from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from repro.hog.blocks import block_grid_shape, normalize_blocks
from repro.utils.images import rgb_to_grayscale, to_float_image

N_DIRECTIONS = 18
"""The NApprox histogram uses 18 bins over 0-360 (Table 1)."""


@dataclass(frozen=True)
class NApproxConfig:
    """Configuration of the NApprox software model.

    Attributes:
        quantized: ``False`` for NApprox(fp) — floating-point projections;
            ``True`` for the TrueNorth-compatible reduced precision model.
        window: spike window length; the paper's NApprox uses 64-spike
            (6-bit) input signals. Only used when ``quantized``.
        direction_scale: integer scale Q of the cos/sin direction tables
            (LUT weights are ``round(Q cos)``, ``round(Q sin)``; TrueNorth
            LUT entries are 9-bit signed, so 16 is cheap).
        magnitude_threshold: the magnitude neuron's firing threshold T —
            one output spike per T of accumulated positive projection, so
            the directional magnitude resolution is ``proj // T``.
            Smaller T resolves finer magnitudes (fewer quantisation ties)
            at the cost of a longer drain phase on hardware.
        cell_size: cell edge in pixels.
        block_size: block edge in cells.
        block_stride: block stride in cells.
        normalization: block normalisation (``"l2"`` for the SVM
            experiments of Figure 4, ``"none"`` for the Eedn experiments
            of Figure 5).
    """

    quantized: bool = True
    window: int = 64
    direction_scale: int = 16
    magnitude_threshold: int = 4
    cell_size: int = 8
    block_size: int = 2
    block_stride: int = 1
    normalization: str = "l2"

    @property
    def n_bins(self) -> int:
        """Histogram bins (fixed at 18 over 0-360)."""
        return N_DIRECTIONS

    def feature_length(self, window_shape: Tuple[int, int]) -> int:
        """Descriptor length for a ``(height, width)`` pixel window."""
        n_cells_y = window_shape[0] // self.cell_size
        n_cells_x = window_shape[1] // self.cell_size
        n_blocks_y, n_blocks_x = block_grid_shape(
            n_cells_y, n_cells_x, self.block_size, self.block_stride
        )
        return n_blocks_y * n_blocks_x * self.block_size**2 * self.n_bins


def direction_tables(scale: int) -> Tuple[np.ndarray, np.ndarray]:
    """Integer cos/sin tables for the 18 bin-center directions.

    Args:
        scale: the integer scale Q.

    Returns:
        ``(cx, cy)`` arrays of 18 signed integers,
        ``cx[b] = round(Q cos(theta_b))`` with ``theta_b = 20 b + 10``
        degrees.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    theta = np.radians(np.arange(N_DIRECTIONS) * 20.0 + 10.0)
    return (
        np.round(scale * np.cos(theta)).astype(np.int64),
        np.round(scale * np.sin(theta)).astype(np.int64),
    )


def winner_votes(magnitudes: np.ndarray) -> np.ndarray:
    """Apply the corelet's cyclic local-max rule along the last axis.

    Direction ``b`` votes when ``m[b] > m[b+1]`` and not ``m[b-1] > m[b]``
    (indices cyclic). A flat profile (zero gradient) produces no vote.

    Args:
        magnitudes: array ``(..., 18)`` of directional magnitudes.

    Returns:
        Boolean array of the same shape marking voting directions.
    """
    m = np.asarray(magnitudes)
    beats_next = m > np.roll(m, -1, axis=-1)
    beaten_by_prev = np.roll(beats_next, 1, axis=-1)
    return beats_next & ~beaten_by_prev


class NApproxDescriptor:
    """NApprox HoG with the same interface as :class:`repro.hog.HogDescriptor`.

    Args:
        config: model configuration; defaults to the quantised
            TrueNorth-compatible variant.
    """

    def __init__(self, config: NApproxConfig = NApproxConfig()) -> None:
        if config.window < 1:
            raise ValueError(f"window must be >= 1, got {config.window}")
        if config.magnitude_threshold < 1:
            raise ValueError(
                f"magnitude_threshold must be >= 1, got {config.magnitude_threshold}"
            )
        self.config = config
        self._cx, self._cy = direction_tables(config.direction_scale)
        theta = np.radians(np.arange(N_DIRECTIONS) * 20.0 + 10.0)
        self._cos = np.cos(theta)
        self._sin = np.sin(theta)

    def with_normalization(self, method: str) -> "NApproxDescriptor":
        """A copy of this descriptor with a different block normalisation."""
        return NApproxDescriptor(replace(self.config, normalization=method))

    # ------------------------------------------------------------------
    def pixel_votes(self, image: np.ndarray) -> np.ndarray:
        """Per-pixel direction votes of shape ``(H, W, 18)`` (boolean)."""
        gray = to_float_image(rgb_to_grayscale(to_float_image(image)))
        if self.config.quantized:
            counts = np.round(gray * self.config.window).astype(np.int64)
            padded = np.pad(counts, 1, mode="edge")
            ix = padded[1:-1, 2:] - padded[1:-1, :-2]
            iy = padded[:-2, 1:-1] - padded[2:, 1:-1]
            projection = (
                ix[..., None] * self._cx[None, None, :]
                + iy[..., None] * self._cy[None, None, :]
            )
            # The magnitude neuron fires once per `magnitude_threshold` of
            # accumulated positive projection (linear reset), flooring the
            # remainder.
            magnitudes = np.maximum(projection, 0) // self.config.magnitude_threshold
        else:
            padded = np.pad(gray, 1, mode="edge")
            ix = padded[1:-1, 2:] - padded[1:-1, :-2]
            iy = padded[:-2, 1:-1] - padded[2:, 1:-1]
            projection = (
                ix[..., None] * self._cos[None, None, :]
                + iy[..., None] * self._sin[None, None, :]
            )
            magnitudes = np.maximum(projection, 0.0)
        return winner_votes(magnitudes)

    def cell_grid(self, image: np.ndarray) -> np.ndarray:
        """Count-voted cell histograms of shape ``(cy, cx, 18)``."""
        votes = self.pixel_votes(image)
        cs = self.config.cell_size
        n_cells_y = votes.shape[0] // cs
        n_cells_x = votes.shape[1] // cs
        trimmed = votes[: n_cells_y * cs, : n_cells_x * cs].astype(np.float64)
        return trimmed.reshape(n_cells_y, cs, n_cells_x, cs, N_DIRECTIONS).sum(
            axis=(1, 3)
        )

    def cell_histogram(self, patch: np.ndarray) -> np.ndarray:
        """Histogram of one cell from its ``(cell+2) x (cell+2)`` patch.

        The paper feeds 10x10 pixels to produce one 8x8 cell's histogram;
        this mirrors that contract: gradients are true centered
        differences of the interior pixels.

        Args:
            patch: pixel patch of shape ``(cell_size + 2, cell_size + 2)``.

        Returns:
            18-element histogram (vote counts).
        """
        expected = self.config.cell_size + 2
        arr = np.asarray(patch)
        if arr.shape != (expected, expected):
            raise ValueError(f"patch must be {expected}x{expected}, got {arr.shape}")
        votes = self.pixel_votes(arr)
        interior = votes[1:-1, 1:-1]
        return interior.reshape(-1, N_DIRECTIONS).sum(axis=0).astype(np.float64)

    def from_cells(self, cells: np.ndarray) -> np.ndarray:
        """Assemble the flat descriptor from a per-cell histogram grid."""
        blocks = normalize_blocks(
            cells,
            block_size=self.config.block_size,
            stride=self.config.block_stride,
            method=self.config.normalization,
        )
        return blocks.ravel()

    def compute(self, image: np.ndarray) -> np.ndarray:
        """The flat descriptor of a whole image treated as one window."""
        return self.from_cells(self.cell_grid(image))

    def feature_length(self, window_shape: Tuple[int, int]) -> int:
        """Descriptor length for a pixel window of ``window_shape``."""
        return self.config.feature_length(window_shape)

    def __repr__(self) -> str:
        kind = "quantized" if self.config.quantized else "fp"
        return (
            f"NApproxDescriptor({kind}, window={self.config.window}, "
            f"norm={self.config.normalization!r})"
        )


__all__ = [
    "N_DIRECTIONS",
    "NApproxConfig",
    "NApproxDescriptor",
    "direction_tables",
    "winner_votes",
]
