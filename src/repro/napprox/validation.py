"""Hardware-vs-software validation of the NApprox HoG.

Reproduces the paper's check (Section 3.1): "in testing with a thousand
training images ... the outputs of the hardware implementation and
software model achieved over 99.5% correlation when configured to operate
with the same quantization width."
"""

from dataclasses import dataclass

import numpy as np

from repro.napprox.corelet_impl import NApproxCellRunner
from repro.napprox.software import NApproxConfig, NApproxDescriptor
from repro.utils.rng import RngLike, resolve_rng


@dataclass(frozen=True)
class CorrelationReport:
    """Outcome of a corelet-vs-software correlation run.

    Attributes:
        correlation: Pearson correlation between the stacked histogram
            vectors of the two implementations.
        mean_absolute_error: mean |difference| in vote counts per bin.
        exact_match_fraction: fraction of bins with identical counts.
        n_cells: number of cells compared.
    """

    correlation: float
    mean_absolute_error: float
    exact_match_fraction: float
    n_cells: int


def correlate_corelet_vs_software(
    n_cells: int = 50,
    window: int = 64,
    direction_scale: int = 16,
    magnitude_threshold: int = 4,
    rng: RngLike = 0,
    engine: str = "reference",
) -> CorrelationReport:
    """Compare corelet histograms against the quantised software model.

    Random patches mix smooth oriented gradients with noise, like the
    INRIA training cells the paper used.

    Args:
        n_cells: patches to compare (the paper used 1000; tests use fewer
            because the tick-level simulation dominates runtime).
        window: spike window (64 = the paper's 6-bit setting).
        direction_scale: Q of the direction tables (same for both sides).
        magnitude_threshold: T of the magnitude neurons (same for both
            sides).
        rng: randomness for patch generation.
        engine: simulation engine for the corelet side, ``"reference"``
            (default) or the bit-identical vectorized ``"batch"``.

    Returns:
        A :class:`CorrelationReport`.
    """
    if n_cells < 2:
        raise ValueError(f"n_cells must be >= 2, got {n_cells}")
    generator = resolve_rng(rng)
    runner = NApproxCellRunner(
        window=window,
        direction_scale=direction_scale,
        magnitude_threshold=magnitude_threshold,
        engine=engine,
    )
    software = NApproxDescriptor(
        NApproxConfig(
            quantized=True,
            window=window,
            direction_scale=direction_scale,
            magnitude_threshold=magnitude_threshold,
        )
    )

    hardware_rows = []
    software_rows = []
    for _ in range(n_cells):
        patch = random_cell_patch(generator)
        hardware_rows.append(runner.extract(patch))
        software_rows.append(software.cell_histogram(patch))

    hw = np.asarray(hardware_rows).ravel()
    sw = np.asarray(software_rows).ravel()
    if hw.std() == 0.0 or sw.std() == 0.0:
        correlation = 1.0 if np.array_equal(hw, sw) else 0.0
    else:
        correlation = float(np.corrcoef(hw, sw)[0, 1])
    return CorrelationReport(
        correlation=correlation,
        mean_absolute_error=float(np.abs(hw - sw).mean()),
        exact_match_fraction=float((hw == sw).mean()),
        n_cells=n_cells,
    )


def random_cell_patch(rng: RngLike = None) -> np.ndarray:
    """A 10x10 test patch: an oriented ramp plus speckle noise in [0, 1]."""
    generator = resolve_rng(rng)
    angle = generator.uniform(0.0, 2.0 * np.pi)
    strength = generator.uniform(0.2, 1.0)
    ys, xs = np.mgrid[0:10, 0:10] / 9.0
    ramp = np.cos(angle) * xs - np.sin(angle) * ys
    ramp = (ramp - ramp.min()) / max(float(ramp.max() - ramp.min()), 1e-9)
    noise = generator.normal(0.0, 0.05, size=(10, 10))
    offset = generator.uniform(-0.2, 0.2)
    return np.clip(strength * ramp + noise + 0.5 - strength / 2 + offset, 0.0, 1.0)


__all__ = ["CorrelationReport", "correlate_corelet_vs_software", "random_cell_patch"]
