"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro table2            # Table 2 power model (fast)
    python -m repro table1            # Table 1 operation agreement (fast)
    python -m repro validate          # corelet vs software correlation
    python -m repro fig4 [--small]    # Figure 4 SVM curves
    python -m repro fig5 [--small]    # Figure 5 Eedn curves
    python -m repro fig6              # Figure 6 precision sweep
    python -m repro absorbed          # Section 5.1 convergence study

``--small`` shrinks the data split for a faster (noisier) run.
"""

import argparse
import sys


def _data(small: bool):
    from repro.experiments.setup import make_experiment_data

    if small:
        return make_experiment_data(
            n_positive=40,
            n_negative=80,
            n_negative_images=3,
            n_test_scenes=8,
            rng=7,
        )
    return make_experiment_data(
        n_positive=120,
        n_negative=240,
        n_negative_images=6,
        n_test_scenes=15,
        rng=7,
    )


def main(argv=None) -> int:
    """Parse the experiment name and print its report."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables and figures of the DAC'17 paper.",
    )
    parser.add_argument(
        "experiment",
        choices=["table1", "table2", "validate", "fig4", "fig5", "fig6", "absorbed"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--small", action="store_true", help="use a smaller, faster data split"
    )
    parser.add_argument(
        "--cells", type=int, default=25, help="cells for the validate run"
    )
    args = parser.parse_args(argv)

    if args.experiment == "table2":
        from repro.experiments import table2

        print(table2.format_report(table2.run()))
    elif args.experiment == "table1":
        import numpy as np

        from repro.napprox import NApproxConfig, NApproxDescriptor

        for name, quantized in (("NApprox(fp)", False), ("NApprox", True)):
            descriptor = NApproxDescriptor(NApproxConfig(quantized=quantized))
            image = np.tile(np.linspace(0, 1, 64), (64, 1))
            grid = descriptor.cell_grid(image)
            print(f"{name}: horizontal-ramp dominant bin = "
                  f"{grid[3, 3].argmax()} (expected 0), "
                  f"votes/cell = {grid[3, 3].sum():.0f}")
        print("Run `pytest benchmarks/bench_table1_napprox_ops.py -s` for the "
              "full component-agreement table.")
    elif args.experiment == "validate":
        from repro.napprox import correlate_corelet_vs_software

        report = correlate_corelet_vs_software(n_cells=args.cells, rng=42)
        print(f"corelet vs software over {report.n_cells} cells: "
              f"correlation {report.correlation:.4f} (paper: >0.995), "
              f"mean |error| {report.mean_absolute_error:.3f} votes")
    elif args.experiment == "fig4":
        from repro.experiments import fig4

        print(fig4.format_report(fig4.run(_data(args.small))))
    elif args.experiment == "fig5":
        from repro.experiments import fig5

        print(fig5.format_report(fig5.run(_data(args.small))))
    elif args.experiment == "fig6":
        from repro.experiments import fig6

        print(fig6.format_report(fig6.run()))
    elif args.experiment == "absorbed":
        from repro.experiments import absorbed_exp

        sizes = (60, 150) if args.small else (100, 300)
        print(absorbed_exp.format_report(absorbed_exp.run(sizes=sizes)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
