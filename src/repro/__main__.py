"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro table2            # Table 2 power model (fast)
    python -m repro table1            # Table 1 operation agreement (fast)
    python -m repro validate          # corelet vs software correlation
    python -m repro fig4 [--small]    # Figure 4 SVM curves
    python -m repro fig5 [--small]    # Figure 5 Eedn curves
    python -m repro fig6              # Figure 6 precision sweep
    python -m repro absorbed          # Section 5.1 convergence study
    python -m repro serve             # micro-batching service demo
    python -m repro serve --metrics   # + process-wide metrics snapshot
    python -m repro serve --flaky-rate 0.2 --retries 3   # resilience demo
    python -m repro faults            # fault-rate degradation sweep
    python -m repro video             # streaming video pipeline demo
    python -m repro trace <cmd>       # any command + span trace summary
    python -m repro trace --export t.json <cmd>   # + Chrome trace JSON
    python -m repro profile <cmd>     # any command + hw-counter profile
    python -m repro slo <cmd>         # any command + latency/energy SLOs

``--small`` shrinks the data split for a faster (noisier) run.
``--engine`` selects the simulation engine (``batch`` = the vectorized
PR-1 engine, ``event`` = the sparse event-driven engine; both are
bit-identical to ``reference``) where a command runs the simulator;
``--chunk-size`` sets windows per classifier call.

Observability (DESIGN.md §10): ``serve --metrics`` publishes the
service's stats into the process-wide ``repro.obs`` registry and emits
one JSON snapshot covering simulator ticks, windows scored, the batch
histogram, cache hit rate, and per-span timings, plus a
Prometheus-style text exposition (``--metrics-output PATH`` writes the
exposition to a file — the CI ``obs-smoke`` job scrapes it).
``trace <cmd>`` runs any other command and then prints the span
aggregates and the tail of the span ring buffer; ``--export PATH``
additionally stitches the run's spans and flight events into
per-request traces (``docs/OBSERVABILITY.md``) and writes Chrome
trace-event JSON for ``chrome://tracing`` / Perfetto, and video runs
get the per-stage/per-level frame latency breakdown. ``slo <cmd>``
(DESIGN.md §16) runs any other command with metrics forced on and then
evaluates the declared latency and joules-per-request objectives over
the run's histograms — compliance, error-budget burn rate, met/violated
— publishing ``slo_*`` series back into the registry and emitting a
schema-validated JSON report (``--objectives PATH`` loads custom
objectives, ``--output PATH`` writes the report, ``--check`` gates the
exit code).

Hardware-counter telemetry (DESIGN.md §12): ``profile <cmd>`` runs any
other command inside a hardware-counter collection scope and emits a
JSON profile — spikes, synaptic events, membrane updates, router hops,
fault drops/echoes — plus the attributed energy (total joules,
nJ/lane, sustained mW) and a top-N hot-core table
(``--output PATH`` writes the JSON, ``--top N`` sizes the table). The
per-core rollup is also published as labeled
``hw_core_spikes_total{core="..."}`` registry counters. ``serve
--flight-dump PATH`` arms the flight recorder: the bounded structured
event log is written to PATH when the run ends and automatically on
request failure or breaker-open.

Fault injection (DESIGN.md §11, ``docs/FAULT_MODEL.md``): ``faults``
sweeps a hardware fault rate and reports detection miss-rate
degradation for the TrueNorth-deployed classifiers against the
software SVM baseline (``--output`` writes ``BENCH_faults.json``;
``--check`` exits nonzero unless the curves degrade monotonically).
``serve`` grows resilience knobs: ``--flaky-rate`` injects transient
scorer faults, handled by ``--retries``/``--retry-backoff-ms`` and a
``--breaker-failures``/``--breaker-reset-ms`` circuit breaker, with
``--degraded-score`` serving a sentinel instead of failing while the
breaker is open.

Streaming video (DESIGN.md §15, ``docs/VIDEO_PIPELINE.md``): ``video``
streams a synthetic sequence through the frame pipeline — pyramid
decomposition, window fan-out to the (optionally sharded with
``--workers``) micro-batching service, NMS reassembly — and reports
fps, joules/frame, the per-frame LRU hit rate, degraded frames, and
the FPPI/miss-rate summary. ``--motion {static,walk,full}`` sets the
scene's temporal locality, ``--deadline-ms`` arms the per-frame budget
that drops the finest pyramid scales first, and ``--frames``/
``--video-shape`` size the sequence (``--output`` writes the report
JSON).

A full per-subcommand reference with runnable examples lives in
``docs/CLI.md``.
"""

import argparse
import json
import sys


def _data(small: bool):
    from repro.experiments.setup import make_experiment_data

    if small:
        return make_experiment_data(
            n_positive=40,
            n_negative=80,
            n_negative_images=3,
            n_test_scenes=8,
            rng=7,
        )
    return make_experiment_data(
        n_positive=120,
        n_negative=240,
        n_negative_images=6,
        n_test_scenes=15,
        rng=7,
    )


def main(argv=None) -> int:
    """Parse the experiment name and print its report."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "trace":
        return _trace(argv[1:])
    if argv and argv[0] == "profile":
        return _profile(argv[1:])
    if argv and argv[0] == "slo":
        return _slo(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables and figures of the DAC'17 paper.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1",
            "table2",
            "validate",
            "fig4",
            "fig5",
            "fig6",
            "absorbed",
            "serve",
            "faults",
            "video",
        ],
        help="which artifact to regenerate (or 'serve' for the service "
        "demo, 'faults' for the fault-rate degradation sweep, 'video' "
        "for the streaming video pipeline)",
    )
    parser.add_argument(
        "--small", action="store_true", help="use a smaller, faster data split"
    )
    parser.add_argument(
        "--cells", type=int, default=25, help="cells for the validate run"
    )
    parser.add_argument(
        "--engine",
        choices=["reference", "batch", "event"],
        default=None,
        help="simulation engine (validate defaults to reference, "
        "serve to batch; all engines are bit-identical — 'event' skips "
        "quiescent cores and is fastest at sparse activity)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=16,
        help="windows per classifier call (serve: rows per client burst)",
    )
    serve_group = parser.add_argument_group("serve options")
    serve_group.add_argument(
        "--requests", type=int, default=192, help="total scoring requests"
    )
    serve_group.add_argument(
        "--concurrency", type=int, default=16, help="closed-loop client threads"
    )
    serve_group.add_argument(
        "--max-batch-size", type=int, default=32, help="micro-batch size cap"
    )
    serve_group.add_argument(
        "--max-wait-ms", type=float, default=2.0, help="micro-batch wait cap"
    )
    serve_group.add_argument(
        "--queue-capacity", type=int, default=256,
        help="bounded queue depth (backpressure threshold)",
    )
    serve_group.add_argument(
        "--cache-capacity", type=int, default=4096,
        help="LRU result-cache entries (0 disables)",
    )
    serve_group.add_argument(
        "--timeout-ms", type=float, default=None,
        help="per-request deadline (unset = none)",
    )
    serve_group.add_argument(
        "--workers", type=int, default=0,
        help="shard the model across this many worker processes behind "
        "the micro-batcher (0 = in-process serving; results are "
        "bit-identical either way)",
    )
    serve_group.add_argument(
        "--duplicate-fraction", type=float, default=0.0,
        help="fraction of requests repeating earlier windows",
    )
    serve_group.add_argument(
        "--metrics", action="store_true",
        help="publish into the process-wide repro.obs registry and emit "
        "its snapshot plus a Prometheus-style exposition",
    )
    serve_group.add_argument(
        "--metrics-output", default=None, metavar="PATH",
        help="write the text exposition to PATH instead of stdout "
        "(implies --metrics)",
    )
    serve_group.add_argument(
        "--flight-dump", default=None, metavar="PATH",
        help="write the flight-recorder event log to PATH at exit (and "
        "automatically on request failure or breaker-open)",
    )
    serve_group.add_argument(
        "--flaky-rate", type=float, default=0.0,
        help="inject transient scorer faults at this per-batch rate",
    )
    serve_group.add_argument(
        "--retries", type=int, default=1,
        help="total scorer attempts per batch (1 = no retry)",
    )
    serve_group.add_argument(
        "--retry-backoff-ms", type=float, default=1.0,
        help="backoff before the first retry (doubles per retry)",
    )
    serve_group.add_argument(
        "--breaker-failures", type=int, default=0,
        help="consecutive failures that open the circuit breaker "
        "(0 disables the breaker)",
    )
    serve_group.add_argument(
        "--breaker-reset-ms", type=float, default=100.0,
        help="breaker cooldown before a half-open trial call",
    )
    serve_group.add_argument(
        "--degraded-score", type=float, default=None,
        help="serve this sentinel score instead of failing while the "
        "scorer is down (unset = fail the requests)",
    )
    faults_group = parser.add_argument_group("faults options")
    faults_group.add_argument(
        "--fault-kind", choices=["drop", "dup", "dead", "stuck", "flip", "drift"],
        default="drop", help="which hardware fault to sweep",
    )
    faults_group.add_argument(
        "--rates", default="0,0.05,0.1,0.2,0.4,0.7,1.0",
        help="comma-separated fault rates (ascending)",
    )
    faults_group.add_argument(
        "--approaches", default="NApprox,Parrot,SVM",
        help="comma-separated subset of NApprox,Parrot,SVM",
    )
    faults_group.add_argument(
        "--seeds", default="0,1,2,3,4",
        help="comma-separated fault-plan seeds averaged per rate",
    )
    faults_group.add_argument(
        "--ticks", type=int, default=12, help="spike window per scored vector"
    )
    faults_group.add_argument(
        "--hidden", type=int, default=48, help="classifier hidden width"
    )
    faults_group.add_argument(
        "--check", action="store_true",
        help="exit nonzero unless hardware curves degrade monotonically",
    )
    faults_group.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the sweep payload as JSON (BENCH_faults.json)",
    )
    video_group = parser.add_argument_group("video options")
    video_group.add_argument(
        "--frames", type=int, default=12, help="frames in the synthetic sequence"
    )
    video_group.add_argument(
        "--motion", choices=["static", "walk", "full"], default="walk",
        help="scene motion level (static = maximal cross-frame cache "
        "locality, full = none)",
    )
    video_group.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-frame scoring budget; late frames drop the finest "
        "pyramid scales first (unset = no budget)",
    )
    video_group.add_argument(
        "--video-shape", default="240x320", metavar="HxW",
        help="frame shape in pixels (--small shrinks it to 160x224)",
    )
    args = parser.parse_args(argv)
    if args.metrics_output:
        args.metrics = True

    if args.experiment == "table2":
        from repro.experiments import table2

        print(table2.format_report(table2.run()))
    elif args.experiment == "table1":
        import numpy as np

        from repro.napprox import NApproxConfig, NApproxDescriptor

        for name, quantized in (("NApprox(fp)", False), ("NApprox", True)):
            descriptor = NApproxDescriptor(NApproxConfig(quantized=quantized))
            image = np.tile(np.linspace(0, 1, 64), (64, 1))
            grid = descriptor.cell_grid(image)
            print(f"{name}: horizontal-ramp dominant bin = "
                  f"{grid[3, 3].argmax()} (expected 0), "
                  f"votes/cell = {grid[3, 3].sum():.0f}")
        print("Run `pytest benchmarks/bench_table1_napprox_ops.py -s` for the "
              "full component-agreement table.")
    elif args.experiment == "validate":
        from repro.napprox import correlate_corelet_vs_software

        engine = args.engine or "reference"
        report = correlate_corelet_vs_software(
            n_cells=args.cells, rng=42, engine=engine
        )
        print(f"corelet vs software over {report.n_cells} cells "
              f"({engine} engine): "
              f"correlation {report.correlation:.4f} (paper: >0.995), "
              f"mean |error| {report.mean_absolute_error:.3f} votes")
    elif args.experiment == "fig4":
        from repro.experiments import fig4

        print(fig4.format_report(fig4.run(_data(args.small))))
    elif args.experiment == "fig5":
        from repro.experiments import fig5

        print(fig5.format_report(fig5.run(_data(args.small))))
    elif args.experiment == "fig6":
        from repro.experiments import fig6

        print(fig6.format_report(fig6.run()))
    elif args.experiment == "absorbed":
        from repro.experiments import absorbed_exp

        sizes = (60, 150) if args.small else (100, 300)
        print(absorbed_exp.format_report(absorbed_exp.run(sizes=sizes)))
    elif args.experiment == "serve":
        return _serve(args)
    elif args.experiment == "faults":
        return _faults(args)
    elif args.experiment == "video":
        return _video(args)
    return 0


def _faults(args) -> int:
    """Run the fault-rate sweep (exit 0 = monotone when ``--check``)."""
    from repro.experiments import faults_sweep

    rates = tuple(float(r) for r in args.rates.split(","))
    approaches = tuple(a.strip() for a in args.approaches.split(",") if a.strip())
    seeds = tuple(int(s) for s in args.seeds.split(","))
    kwargs = {}
    if args.small:
        kwargs.update(
            n_train=32,
            n_eval=16,
            epochs=15,
            fault_seeds=seeds[:1],
            parrot_params={"hidden": 96, "n_samples": 1500, "epochs": 8},
        )
    else:
        kwargs.update(fault_seeds=seeds)
    result = faults_sweep.run(
        rates=rates,
        fault_kind=args.fault_kind,
        approaches=approaches,
        hidden=args.hidden,
        ticks=args.ticks,
        **kwargs,
    )
    print(faults_sweep.format_report(result))
    if args.output:
        faults_sweep.write_json(result, args.output)
        print(f"wrote {args.output}")
    if args.check:
        hardware = tuple(a for a in approaches if a != "SVM")
        violations = result.check_monotone(approaches=hardware)
        if violations:
            for violation in violations:
                print(f"FAIL: {violation}", file=sys.stderr)
            return 1
        print(f"monotonicity check passed for {', '.join(hardware)}")
    return 0


def _serve(args) -> int:
    """Run the in-process serving demo / smoke (exit 0 = all accounted)."""
    from repro.serve import (
        InferenceService,
        closed_loop,
        demo_classifier_workload,
    )

    registry = None
    if args.metrics:
        from repro.obs import get_registry

        registry = get_registry()

    scorer, rows = demo_classifier_workload(
        n_requests=args.requests,
        engine=args.engine or "batch",
        duplicate_fraction=args.duplicate_fraction,
    )
    flaky = None
    if args.flaky_rate > 0:
        from repro.serve import FlakyModel

        flaky = FlakyModel(scorer, failure_rate=args.flaky_rate, rng=0)
        scorer = flaky
    retry_policy = None
    if args.retries > 1:
        from repro.serve import RetryPolicy

        retry_policy = RetryPolicy(
            max_attempts=args.retries, backoff_ms=args.retry_backoff_ms
        )
    circuit_breaker = None
    if args.breaker_failures > 0:
        from repro.serve import CircuitBreaker

        circuit_breaker = CircuitBreaker(
            failure_threshold=args.breaker_failures,
            reset_timeout_s=args.breaker_reset_ms / 1e3,
        )
    if args.workers > 0:
        from repro.serve import ShardedInferenceService

        if retry_policy is not None or args.degraded_score is not None:
            print(
                "note: --retries/--degraded-score apply to in-process "
                "serving only; sharded workers redispatch on death and "
                "cool down per-shard breakers instead",
                file=sys.stderr,
            )
        service = ShardedInferenceService(
            scorer,
            workers=args.workers,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            queue_capacity=args.queue_capacity,
            cache_capacity=args.cache_capacity,
            registry=registry,
            breaker_failure_threshold=args.breaker_failures,
            breaker_reset_timeout_s=args.breaker_reset_ms / 1e3,
        )
    else:
        service = InferenceService(
            scorer,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            queue_capacity=args.queue_capacity,
            cache_capacity=args.cache_capacity,
            registry=registry,
            retry_policy=retry_policy,
            circuit_breaker=circuit_breaker,
            degraded_value=args.degraded_score,
            flight_dump_path=args.flight_dump,
        )
    timeout_s = None if args.timeout_ms is None else args.timeout_ms / 1e3
    with service:
        report = closed_loop(
            service,
            rows,
            concurrency=args.concurrency,
            chunk_size=args.chunk_size,
            timeout_s=timeout_s,
        )
        snapshot = service.stats.snapshot()
    print(
        f"served {report.completed}/{report.requests} requests in "
        f"{report.seconds:.2f}s = {report.requests_per_second:.1f} req/s "
        f"(rejected {report.rejected_queue_full}, "
        f"expired {report.deadline_expired}, failed {report.failed})"
    )
    if flaky is not None:
        print(
            f"flaky scorer: {flaky.failures}/{flaky.calls} batch calls "
            f"faulted (rate {args.flaky_rate})"
        )
    payload = {"load": report.as_dict(), "stats": snapshot}
    if registry is not None:
        # The process-wide view: simulator ticks and engine counters from
        # the scorer's runs land next to the serve metrics and spans.
        payload["metrics"] = registry.snapshot()
        exposition = registry.render_prometheus()
        if args.metrics_output:
            with open(args.metrics_output, "w") as handle:
                handle.write(exposition)
            print(f"wrote exposition to {args.metrics_output}")
    print(json.dumps(payload, indent=2))
    if registry is not None and not args.metrics_output:
        print(exposition, end="")
    if args.flight_dump:
        from repro.obs import flight_recorder

        retained = flight_recorder().dump(args.flight_dump, reason="serve_exit")
        print(f"wrote flight dump ({retained} events) to {args.flight_dump}")
    if not report.accounted:
        print("FAIL: requests lost or failed", file=sys.stderr)
        return 1
    return 0


def _video(args) -> int:
    """Stream a synthetic video sequence (exit 0 = every frame scored)."""
    from repro.serve import InferenceService, ShardedInferenceService
    from repro.video import (
        VideoConfig,
        VideoPipeline,
        VideoPipelineConfig,
        build_video_workload,
        synthesize_sequence,
    )

    try:
        height, width = (int(v) for v in args.video_shape.lower().split("x"))
    except ValueError:
        print(f"bad --video-shape {args.video_shape!r}, want HxW", file=sys.stderr)
        return 2
    if args.small:
        height, width = min(height, 160), min(width, 224)
    engine = args.engine or "batch"
    workload_kwargs = {"engine": engine, "ticks": 6, "hidden": 16}
    if args.small:
        workload_kwargs.update(n_train=24, epochs=8)
    workload = build_video_workload(**workload_kwargs)
    sequence = synthesize_sequence(
        VideoConfig(
            shape=(height, width), n_frames=args.frames, motion=args.motion
        ),
        rng=3,
    )

    registry = None
    if args.metrics:
        from repro.obs import get_registry

        registry = get_registry()
    if args.workers > 0:
        service = ShardedInferenceService(
            workload.scorer,
            workers=args.workers,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            queue_capacity=args.queue_capacity,
            cache_capacity=args.cache_capacity,
            registry=registry,
        )
    else:
        service = InferenceService(
            workload.scorer,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            queue_capacity=args.queue_capacity,
            cache_capacity=args.cache_capacity,
            registry=registry,
        )
    with service:
        pipeline = VideoPipeline(
            workload.extractor,
            service,
            VideoPipelineConfig(
                feature_scale=workload.feature_scale,
                deadline_ms=args.deadline_ms,
            ),
            registry=registry,
        )
        report = pipeline.run(sequence)

    print(
        f"streamed {len(report.frames)} {height}x{width} frames "
        f"({args.motion} motion, {engine} engine"
        + (f", {args.workers} workers" if args.workers else "")
        + f"): {report.fps:.2f} fps"
    )
    print(
        f"joules/frame {report.joules_per_frame * 1e6:.1f} uJ, "
        f"cache hit rate {report.cache_hit_rate:.1%}, "
        f"windows scored {report.windows_scored}, "
        f"degraded frames {report.degraded_frames}"
    )
    if report.curve is not None:
        print(
            f"log-average miss rate {report.curve.log_average_miss_rate():.3f} "
            f"over {report.curve.n_ground_truth} ground-truth boxes"
        )
    if args.output:
        payload = {
            "engine": engine,
            "workers": args.workers,
            "motion": args.motion,
            "shape": [height, width],
            "deadline_ms": args.deadline_ms,
            **report.as_dict(),
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.output}")
    incomplete = [f.index for f in report.frames if f.levels_scored == 0]
    if incomplete:
        print(f"FAIL: frames {incomplete} scored no levels", file=sys.stderr)
        return 1
    return 0


def _trace(argv) -> int:
    """Run ``argv`` as a normal command, then print the span summary.

    ``--export PATH`` additionally assembles the run's spans and flight
    events into per-request traces and writes them as Chrome
    trace-event JSON (open in ``chrome://tracing`` or Perfetto); for
    video runs the per-stage/per-level latency breakdown from the
    ``video_stage_seconds`` histograms is printed too.
    """
    from repro.obs import summarize_spans, trace_log
    from repro.obs.traces import (
        assemble_traces,
        export_chrome_trace,
        frame_stage_breakdown,
    )

    argv = list(argv)
    export = None
    while argv and argv[0] == "--export":
        argv.pop(0)
        if not argv:
            print("trace: --export needs a value", file=sys.stderr)
            return 2
        export = argv.pop(0)
    if not argv:
        print(
            "usage: python -m repro trace [--export PATH] <command> "
            "[options]",
            file=sys.stderr,
        )
        return 2
    code = main(argv)
    spans = summarize_spans()
    print("\n== span timings (process-wide registry) ==")
    if not spans:
        print("no spans recorded")
    for name, data in sorted(spans.items()):
        print(
            f"{name:48s} count={data['count']:6d} "
            f"total={data['sum']:8.3f}s mean={data['mean'] * 1e3:8.2f}ms "
            f"p99={data['p99'] * 1e3:8.2f}ms"
        )
    tail = trace_log().entries()[-20:]
    if tail:
        print("== last spans (ring buffer tail) ==")
        for record in tail:
            indent = "  " * record.depth
            print(
                f"{indent}{record.path} {record.duration_s * 1e3:.2f}ms "
                f"[{record.thread}]"
            )
    breakdown = frame_stage_breakdown()
    if breakdown:
        print("== frame stage breakdown (video_stage_seconds) ==")
        for stage in sorted(breakdown):
            for level in sorted(breakdown[stage]):
                data = breakdown[stage][level]
                print(
                    f"{stage:>8s} level={level:>5s} "
                    f"count={data['count']:6d} "
                    f"mean={data['mean'] * 1e3:8.2f}ms "
                    f"p99={data['p99'] * 1e3:8.2f}ms"
                )
    if export:
        traces = assemble_traces()
        events = export_chrome_trace(export, traces)
        print(
            f"wrote {len(traces)} traces ({events} trace events) to {export}"
        )
    return code


def _slo(argv) -> int:
    """Run ``argv`` with metrics on, then judge the run against SLOs.

    The wrapped command is forced onto the process-wide registry
    (``--metrics`` is appended when absent), then each declared
    objective — latency and joules-per-request alike — is evaluated
    from the run's histograms: compliance, error-budget burn rate, and
    a met/violated verdict. The verdicts are published back into the
    registry (``slo_burn_rate{slo=...}`` et al. — a ``--metrics-output``
    exposition file is rewritten to include them), printed as a table,
    and emitted as schema-validated JSON (``--output PATH`` writes it;
    ``--objectives PATH`` loads custom objectives; ``--check`` exits
    nonzero when any objective is violated).
    """
    from repro.obs import get_registry
    from repro.obs.slo import (
        default_objectives,
        evaluate_objectives,
        format_report,
        load_objectives,
        publish_results,
        report_json,
        validate_report,
    )

    argv = list(argv)
    objectives_path, output, check = None, None, False
    while argv and argv[0] in ("--objectives", "--output", "--check"):
        flag = argv.pop(0)
        if flag == "--check":
            check = True
            continue
        if not argv:
            print(f"slo: {flag} needs a value", file=sys.stderr)
            return 2
        if flag == "--objectives":
            objectives_path = argv.pop(0)
        else:
            output = argv.pop(0)
    if not argv:
        print(
            "usage: python -m repro slo [--objectives PATH] [--output PATH] "
            "[--check] <command> [options]",
            file=sys.stderr,
        )
        return 2
    try:
        objectives = (
            load_objectives(objectives_path)
            if objectives_path
            else default_objectives()
        )
    except (OSError, ValueError) as exc:
        print(f"slo: {exc}", file=sys.stderr)
        return 2
    if "--metrics" not in argv and "--metrics-output" not in argv:
        argv.append("--metrics")

    code = main(argv)

    registry = get_registry()
    results = evaluate_objectives(registry, objectives)
    publish_results(results, registry)
    if "--metrics-output" in argv:
        # The wrapped command wrote its exposition before the verdicts
        # existed; rewrite it so the scraped file carries the
        # slo_burn_rate / slo_*_total series alongside the run metrics.
        index = argv.index("--metrics-output") + 1
        if index < len(argv):
            try:
                with open(argv[index], "w") as handle:
                    handle.write(registry.render_prometheus())
            except OSError as exc:
                print(f"slo: could not rewrite {argv[index]}: {exc}",
                      file=sys.stderr)
    report = report_json(results)
    validate_report(report)
    print("\n" + format_report(results))
    if output:
        with open(output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote SLO report to {output}")
    else:
        print(json.dumps(report, indent=2))
    if check and not report["met_all"] and code == 0:
        print("FAIL: at least one objective violated", file=sys.stderr)
        return 1
    return code


def _profile(argv) -> int:
    """Run ``argv`` inside a hw-counter scope, then emit the profile.

    The profile JSON carries the whole-run hardware counters, the
    attributed energy (via ``repro.truenorth.energy``), and the top-N
    hot-core table; the per-core rollup is also published as labeled
    ``hw_core_spikes_total{core="..."}`` registry counters.
    """
    from repro.obs import get_registry, hwcounters

    argv = list(argv)
    output, top_n = None, 10
    while argv and argv[0] in ("--output", "--top"):
        flag = argv.pop(0)
        if not argv:
            print(f"profile: {flag} needs a value", file=sys.stderr)
            return 2
        if flag == "--output":
            output = argv.pop(0)
        else:
            top_n = int(argv.pop(0))
    if not argv:
        print(
            "usage: python -m repro profile [--output PATH] [--top N] "
            "<command> [options]",
            file=sys.stderr,
        )
        return 2

    with hwcounters.collect() as collector:
        code = main(argv)

    totals = collector.totals()
    registry = get_registry()
    top_cores = []
    if collector.runs:
        ranked = sorted(
            collector.core_totals().items(),
            key=lambda kv: (-kv[1]["spikes"], -kv[1]["synaptic_events"], kv[0]),
        )
        for core_id, entry in ranked:
            registry.counter(
                "hw_core_spikes_total",
                help="neuron firings per core (profile rollup)",
                labels={"core": str(core_id)},
            ).inc(entry["spikes"])
            registry.counter(
                "hw_core_synaptic_events_total",
                help="synaptic events per core (profile rollup)",
                labels={"core": str(core_id)},
            ).inc(entry["synaptic_events"])
        top_cores = [
            {"core": core_id, **entry} for core_id, entry in ranked[:top_n]
        ]

    lane_energy = collector.lane_energy_joules()
    total_joules = float(lane_energy.sum())
    energy = {
        "total_joules": total_joules,
        "mean_nj_per_lane": (
            total_joules / lane_energy.size * 1e9 if lane_energy.size else 0.0
        ),
    }
    if totals["lane_ticks"]:
        from repro.truenorth.power import TICK_SECONDS

        # Sustained power while a lane is on the substrate: the exact
        # attributed energy over the total simulated lane-time.
        energy["sustained_milliwatts"] = (
            total_joules / (totals["lane_ticks"] * TICK_SECONDS) * 1e3
        )

    profile = {
        "command": argv,
        "exit_code": code,
        "runs": len(collector.runs),
        "lanes": collector.lanes,
        "hw": totals,
        "energy": energy,
        "top_cores": top_cores,
    }

    print("\n== hardware-counter profile ==")
    if not collector.runs:
        print("no engine runs recorded (software-only command?)")
    for name in ("spikes", "synaptic_events", "membrane_updates",
                 "router_hops", "dropped_spikes", "duplicated_spikes",
                 "active_core_ticks"):
        print(f"{name:24s} {totals[name]:>14,d}")
    print(f"{'lanes':24s} {collector.lanes:>14,d}  "
          f"({len(collector.runs)} engine runs)")
    if lane_energy.size:
        print(f"energy: {total_joules * 1e9:,.1f} nJ total, "
              f"{energy['mean_nj_per_lane']:,.1f} nJ/lane, "
              f"{energy.get('sustained_milliwatts', 0.0):.3f} mW sustained")
    if top_cores:
        print(f"top {len(top_cores)} cores by spikes:")
        print(f"{'core':>8s} {'spikes':>12s} {'syn.events':>12s}")
        for row in top_cores:
            print(f"{row['core']:>8d} {row['spikes']:>12,d} "
                  f"{row['synaptic_events']:>12,d}")
    if output:
        with open(output, "w") as handle:
            json.dump(profile, handle, indent=2)
            handle.write("\n")
        print(f"wrote profile to {output}")
    else:
        print(json.dumps(profile, indent=2))
    return code


if __name__ == "__main__":
    sys.exit(main())
