"""The end-to-end detector: extractor x classifier over a pyramid."""

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.coding.stochastic import StochasticEncoder
from repro.detection.nms import non_maximum_suppression
from repro.detection.pyramid import ImagePyramid
from repro.eedn.layers import TrinaryDense
from repro.eedn.mapping import deploy_dense_network
from repro.eedn.network import EednNetwork
from repro.eedn.spiking import SpikingEvaluator
from repro.hog.blocks import normalize_blocks
from repro.obs import get_registry, span
from repro.truenorth.simulator import Simulator
from repro.utils.rng import RngLike, resolve_rng


def sliding_window_features(
    source: np.ndarray, window_cells: Tuple[int, int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Every window's flattened feature row from one cell/block grid.

    Windows slide at cell granularity over a ``(gy, gx, F)`` grid; each
    row is the window's ``(win_y, win_x, F)`` patch flattened in
    row-major order. This is the shared scanning core of
    :class:`SlidingWindowDetector` and the frame pipeline in
    ``repro.video`` — both fan the same rows out, so a served video
    frame scores bit-identically to a direct detector scan.

    Args:
        source: ``(gy, gx, F)`` grid of per-cell (or per-block) features.
        window_cells: ``(win_y, win_x)`` window extent in grid units.

    Returns:
        ``(features (n, win_y * win_x * F), positions (n, 2))`` where
        positions are ``(cell_y, cell_x)`` of each window's top-left
        cell; both empty when the window does not fit.
    """
    win_y, win_x = window_cells
    gy, gx = source.shape[:2]
    feature_length = win_y * win_x * int(np.prod(source.shape[2:], dtype=int))
    ny = gy - win_y + 1
    nx = gx - win_x + 1
    if ny < 1 or nx < 1:
        return np.zeros((0, feature_length)), np.zeros((0, 2), dtype=int)
    view = np.lib.stride_tricks.sliding_window_view(
        source, (win_y, win_x), axis=(0, 1)
    )
    # view: (ny, nx, F, win_y, win_x) -> (ny, nx, win_y, win_x, F)
    features = np.ascontiguousarray(np.moveaxis(view, 2, -1)).reshape(ny * nx, -1)
    ys, xs = np.meshgrid(np.arange(ny), np.arange(nx), indexing="ij")
    positions = np.stack([ys.ravel(), xs.ravel()], axis=1)
    return features, positions


@dataclass(frozen=True)
class Detection:
    """One detector output.

    Attributes:
        x: left edge in original-image pixels.
        y: top edge.
        width: box width.
        height: box height.
        score: classifier margin (higher = more confident).
    """

    x: float
    y: float
    width: float
    height: float
    score: float

    def as_box(self) -> np.ndarray:
        """``[x, y, w, h]``."""
        return np.array([self.x, self.y, self.width, self.height])


class EednBinaryScorer:
    """Adapt a 2-class Eedn network to the scorer protocol.

    The score is the logit margin ``logit[positive] - logit[negative]``.

    Args:
        network: trained 2-output network.
        positive_class: index of the "person" output.
    """

    def __init__(self, network: EednNetwork, positive_class: int = 1) -> None:
        self.network = network
        self.positive_class = positive_class

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Margins for a ``(n, f)`` feature matrix."""
        logits = self.network.forward(np.asarray(features, dtype=np.float64))
        negative = 1 - self.positive_class
        return logits[:, self.positive_class] - logits[:, negative]


class SpikingBinaryScorer:
    """Scorer running the Eedn classifier in spiking operation mode.

    The score is the spike-count margin across the evaluation window,
    matching how a deployed TrueNorth classifier would be read out.

    Args:
        evaluator: a configured :class:`~repro.eedn.spiking.SpikingEvaluator`.
        positive_class: index of the "person" output.
    """

    def __init__(self, evaluator: SpikingEvaluator, positive_class: int = 1) -> None:
        self.evaluator = evaluator
        self.positive_class = positive_class

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Spike-count margins for a ``(n, f)`` feature matrix in [0, 1]."""
        result = self.evaluator.evaluate(np.clip(features, 0.0, 1.0))
        negative = 1 - self.positive_class
        return (
            result.counts[:, self.positive_class] - result.counts[:, negative]
        ).astype(np.float64)


class TrueNorthBinaryScorer:
    """Scorer running the Eedn classifier on actual neurosynaptic cores.

    The network is deployed onto a :class:`NeurosynapticSystem` with
    :func:`~repro.eedn.mapping.deploy_dense_network`; every window of a
    feature chunk is stochastically spike-coded and pushed through the
    system in a single :meth:`Simulator.run_batch` call, so with the
    default ``"batch"`` engine the whole chunk advances through the
    crossbars with one matmul per tick. The score is the spike-count
    margin across the window, identical to what the tick-accurate
    reference engine produces (set ``engine="reference"`` to cross-check
    at ~the batch size's cost).

    Args:
        network: trained 2-output dense Eedn network.
        ticks: spike window per evaluated feature vector.
        positive_class: index of the "person" output.
        rng: seed for the stochastic input coding.
        engine: simulation engine, ``"batch"`` (default), ``"event"``
            (skips quiescent cores — fastest at sparse activity), or
            ``"reference"``; all three are bit-identical.
        coding: ``"stream"`` (default) draws every window's spike raster
            from one shared random stream, so scores depend on the order
            windows are presented in. ``"content"`` seeds each window's
            raster from a digest of its feature bytes instead: identical
            windows always produce identical rasters, regardless of call
            order, chunking, or which batch they land in. Content coding
            is what makes the scorer safe to drive through the
            ``repro.serve`` micro-batcher and its result cache.
        faults: optional :class:`repro.faults.FaultPlan` injected into
            the deployed system (identically on either engine). Plans
            with dynamic (per-spike) faults key their hashing on the
            lane a window lands in, so such scorers are not cacheable;
            any plan is folded into ``model_id`` so cached fault-free
            scores can never be replayed for a faulted model.
    """

    def __init__(
        self,
        network: EednNetwork,
        ticks: int = 16,
        positive_class: int = 1,
        rng: RngLike = 0,
        engine: str = "batch",
        coding: str = "stream",
        faults=None,
    ) -> None:
        if ticks < 1:
            raise ValueError(f"ticks must be >= 1, got {ticks}")
        if coding not in ("stream", "content"):
            raise ValueError(
                f"coding must be 'stream' or 'content', got {coding!r}"
            )
        self.deployed = deploy_dense_network(network)
        self.ticks = ticks
        self.positive_class = positive_class
        self.engine = engine
        self.coding = coding
        self.faults = faults
        self._dense_layers = [
            layer for layer in network.layers if isinstance(layer, TrinaryDense)
        ]
        self._encoder = StochasticEncoder(ticks)
        if isinstance(rng, (int, np.integer)):
            self._entropy = int(rng)
        else:
            self._entropy = int(resolve_rng(rng).integers(0, 2**63))
        self._rng = resolve_rng(rng)
        self._simulator = Simulator(
            self.deployed.system, rng=rng, engine=engine, faults=faults
        )
        self._n_in = self.deployed.system.input_ports["in"].width
        # Stage s of the deployed pipeline fires s route-delays after the
        # input tick, so the last data spikes leave the output stage at
        # tick (ticks - 1) + (stages - 1).
        self._total_ticks = ticks + self.deployed.stages - 1

    @property
    def cacheable(self) -> bool:
        """Whether equal feature rows always yield equal scores.

        True only under content coding — the deployed classifier itself
        is deterministic (no stochastic neurons), so the input raster is
        the only source of randomness — and only when no dynamic
        (per-spike) fault is injected: dynamic fault hashing keys on the
        lane a window lands in, so equal windows in different batch
        positions can score differently. ``repro.serve.InferenceService``
        consults this flag before enabling its result cache.
        """
        if self.faults is not None and self.faults.has_dynamic:
            return False
        return self.coding == "content"

    @property
    def model_id(self) -> str:
        """Stable identity digest for content-addressed result caching.

        Covers everything a score depends on besides the window bytes:
        the deployed layer weights and biases, the spike window, the
        class readout, and the coding entropy. Two scorers with equal
        ``model_id`` score equal windows identically (given content
        coding); the simulation engine is deliberately excluded because
        every engine is bit-identical.
        """
        digest = hashlib.blake2b(digest_size=16)
        for layer in self.deployed_layers():
            digest.update(np.ascontiguousarray(layer[0], dtype=np.int64).tobytes())
            digest.update(np.ascontiguousarray(layer[1], dtype=np.float64).tobytes())
        digest.update(
            f"|ticks={self.ticks}|pos={self.positive_class}"
            f"|coding={self.coding}|entropy={self._entropy}".encode()
        )
        if self.faults is not None and self.faults:
            digest.update(f"|faults={self.faults.digest()}".encode())
        return f"truenorth-{digest.hexdigest()}"

    def deployed_layers(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """``(deployed_weights, bias)`` per dense layer, stage order."""
        return [
            (layer.deployed_weights(), layer.bias) for layer in self._dense_layers
        ]

    def _content_rng(self, row: np.ndarray) -> np.random.Generator:
        """Generator seeded from the scorer entropy and the row bytes."""
        digest = hashlib.blake2b(
            np.ascontiguousarray(row, dtype=np.float64).tobytes(), digest_size=8
        ).digest()
        word = int.from_bytes(digest, "big")
        return np.random.default_rng(
            np.random.SeedSequence([self._entropy, word])
        )

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Spike-count margins for a ``(n, f)`` feature matrix in [0, 1]."""
        x = np.clip(np.asarray(features, dtype=np.float64), 0.0, 1.0)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[1] != self._n_in:
            raise ValueError(f"expected {self._n_in} features, got {x.shape[1]}")
        if x.shape[0] == 0:
            return np.zeros(0)
        rasters = np.zeros((x.shape[0], self._total_ticks, self._n_in), dtype=bool)
        for lane, row in enumerate(x):
            lane_rng = (
                self._content_rng(row) if self.coding == "content" else self._rng
            )
            rasters[lane, : self.ticks] = self._encoder.encode(row, rng=lane_rng)
        result = self._simulator.run_batch(self._total_ticks, {"in": rasters})
        counts = result.spike_counts("out")
        negative = 1 - self.positive_class
        return (counts[:, self.positive_class] - counts[:, negative]).astype(
            np.float64
        )


class SlidingWindowDetector:
    """Multi-scale sliding-window detector.

    The extractor computes one cell-histogram grid per pyramid level;
    windows are slid at cell granularity (8 px at scale 1). Features are
    either normalised block descriptors (``feature_mode="blocks"``, the
    SVM pipelines of Figure 4) or raw cell histograms
    (``feature_mode="cells"``, the normalisation-free neuromorphic
    pipelines of Figure 5).

    Args:
        extractor: any object exposing ``cell_grid(image)`` and a
            ``config`` with ``cell_size``/``block_size``/``block_stride``/
            ``normalization`` attributes (all descriptors in this package
            qualify).
        scorer: object exposing ``decision_function((n, f)) -> (n,)``.
        feature_mode: ``"blocks"`` or ``"cells"``.
        window_shape: detection window in pixels.
        scale_factor: pyramid step.
        max_levels: pyramid depth cap (15 in the paper).
        score_threshold: minimum margin to emit a detection.
        nms_epsilon: NMS overlap threshold (0.2 in the paper).
        cell_scale: multiplier applied to cell histograms in ``"cells"``
            mode (use ``1/64`` to map count histograms into [0, 1] for
            spiking classifiers).
        chunk_size: windows scored per classifier call.
    """

    def __init__(
        self,
        extractor,
        scorer,
        feature_mode: str = "blocks",
        window_shape: Tuple[int, int] = (128, 64),
        scale_factor: float = 1.1,
        max_levels: int = 15,
        score_threshold: float = 0.0,
        nms_epsilon: float = 0.2,
        cell_scale: float = 1.0,
        chunk_size: int = 1024,
    ) -> None:
        if feature_mode not in ("blocks", "cells"):
            raise ValueError(
                f"feature_mode must be 'blocks' or 'cells', got {feature_mode!r}"
            )
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.extractor = extractor
        self.scorer = scorer
        self.feature_mode = feature_mode
        self.window_shape = window_shape
        self.scale_factor = scale_factor
        self.max_levels = max_levels
        self.score_threshold = score_threshold
        self.nms_epsilon = nms_epsilon
        self.cell_scale = cell_scale
        self.chunk_size = chunk_size

        config = extractor.config
        self.cell_size = int(config.cell_size)
        self.block_size = int(getattr(config, "block_size", 2))
        self.block_stride = int(getattr(config, "block_stride", 1))
        self.normalization = str(getattr(config, "normalization", "none"))
        self.window_cells = (
            window_shape[0] // self.cell_size,
            window_shape[1] // self.cell_size,
        )

    # ------------------------------------------------------------------
    def detect(self, image: np.ndarray) -> List[Detection]:
        """All surviving detections in ``image``, NMS applied."""
        boxes, scores, _ = self._scan(image, collect_features=False)
        if boxes.shape[0] == 0:
            return []
        with span("detect.nms", candidates=int(boxes.shape[0])):
            kept = non_maximum_suppression(
                boxes, scores, epsilon=self.nms_epsilon
            )
        obs = get_registry()
        obs.counter(
            "detect_nms_survivors_total", help="detections kept by NMS"
        ).inc(len(kept))
        obs.counter(
            "detect_nms_suppressed_total", help="detections removed by NMS"
        ).inc(int(boxes.shape[0]) - len(kept))
        return [
            Detection(
                x=float(boxes[i, 0]),
                y=float(boxes[i, 1]),
                width=float(boxes[i, 2]),
                height=float(boxes[i, 3]),
                score=float(scores[i]),
            )
            for i in kept
        ]

    def detect_boxes(self, image: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Detections as ``(boxes (n, 4), scores (n,))`` arrays."""
        detections = self.detect(image)
        if not detections:
            return np.zeros((0, 4)), np.zeros(0)
        boxes = np.stack([d.as_box() for d in detections])
        scores = np.array([d.score for d in detections])
        return boxes, scores

    def hard_negative_features(
        self, images: Sequence[np.ndarray], per_image_cap: int = 64
    ) -> np.ndarray:
        """Features of windows wrongly scored positive on negative images.

        Used as the scanner of
        :class:`repro.svm.mining.HardNegativeMiner`.

        Args:
            images: person-free images.
            per_image_cap: keep at most this many top-scoring windows per
                image.

        Returns:
            ``(n, f)`` feature matrix (possibly empty).
        """
        collected: List[np.ndarray] = []
        for image in images:
            _, scores, features = self._scan(image, collect_features=True)
            if scores.size == 0:
                continue
            order = np.argsort(scores)[::-1][:per_image_cap]
            collected.append(features[order])
        if not collected:
            return np.zeros((0, self._feature_length()))
        return np.vstack(collected)

    def window_features(self, window: np.ndarray) -> np.ndarray:
        """The feature vector of one full window image (training path)."""
        grid = self.extractor.cell_grid(window)
        return self._grid_features(grid)[0][0]

    # ------------------------------------------------------------------
    def _feature_length(self) -> int:
        wy, wx = self.window_cells
        bins = self._n_bins()
        if self.feature_mode == "cells":
            return wy * wx * bins
        nby = (wy - self.block_size) // self.block_stride + 1
        nbx = (wx - self.block_size) // self.block_stride + 1
        return nby * nbx * self.block_size**2 * bins

    def _n_bins(self) -> int:
        config = self.extractor.config
        return int(getattr(config, "n_bins", 18))

    def _grid_features(
        self, cell_grid: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Window features and window cell-positions for one level.

        Returns ``(features (n, f), positions (n, 2))`` where positions
        are (cell_y, cell_x) of each window's top-left cell.
        """
        wy, wx = self.window_cells
        if self.feature_mode == "cells":
            source = cell_grid * self.cell_scale
            win_y, win_x = wy, wx
        else:
            source = normalize_blocks(
                cell_grid,
                block_size=self.block_size,
                stride=self.block_stride,
                method=self.normalization,
            )
            win_y = (wy - self.block_size) // self.block_stride + 1
            win_x = (wx - self.block_size) // self.block_stride + 1
        return sliding_window_features(source, (win_y, win_x))

    def _scan(
        self, image: np.ndarray, collect_features: bool
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Score every window of every level; threshold and gather."""
        boxes: List[np.ndarray] = []
        scores: List[float] = []
        feature_rows: List[np.ndarray] = []
        pyramid = ImagePyramid(
            image,
            window_shape=self.window_shape,
            scale_factor=self.scale_factor,
            max_levels=self.max_levels,
        )
        window_h, window_w = self.window_shape
        obs = get_registry()
        levels_scanned = 0
        windows_scored = 0
        for level in pyramid.levels():
            with span("pyramid.level", scale=level.scale):
                grid = self.extractor.cell_grid(level.image)
                features, positions = self._grid_features(grid)
                if features.shape[0] == 0:
                    continue
                levels_scanned += 1
                windows_scored += int(features.shape[0])
                level_scores = np.empty(features.shape[0])
                for start in range(0, features.shape[0], self.chunk_size):
                    chunk = features[start : start + self.chunk_size]
                    level_scores[start : start + self.chunk_size] = (
                        self.scorer.decision_function(chunk)
                    )
            hits = np.where(level_scores > self.score_threshold)[0]
            for index in hits:
                cy, cx = positions[index]
                boxes.append(
                    np.array(
                        [
                            cx * self.cell_size * level.scale,
                            cy * self.cell_size * level.scale,
                            window_w * level.scale,
                            window_h * level.scale,
                        ]
                    )
                )
                scores.append(float(level_scores[index]))
                if collect_features:
                    feature_rows.append(features[index])
        obs.counter(
            "detect_levels_total", help="pyramid levels scanned"
        ).inc(levels_scanned)
        obs.counter(
            "detect_windows_scored_total", help="windows scored by the scorer"
        ).inc(windows_scored)
        box_arr = np.stack(boxes) if boxes else np.zeros((0, 4))
        score_arr = np.asarray(scores)
        feature_arr = (
            np.stack(feature_rows)
            if collect_features and feature_rows
            else (np.zeros((0, self._feature_length())) if collect_features else None)
        )
        return box_arr, score_arr, feature_arr


__all__ = [
    "Detection",
    "EednBinaryScorer",
    "SlidingWindowDetector",
    "SpikingBinaryScorer",
    "TrueNorthBinaryScorer",
    "sliding_window_features",
]
