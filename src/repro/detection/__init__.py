"""Multi-scale sliding-window pedestrian detection and its evaluation.

Implements the methodology of the paper's Section 4:

- an image pyramid with 1.1x scale steps
  (:mod:`repro.detection.pyramid`), including the full-HD cell-grid
  arithmetic behind Section 5.2 (57,749 cells per frame across six
  scales);
- 64x128 windows slid at cell (8 px) granularity over per-level cell
  grids (:mod:`repro.detection.pipeline`);
- greedy non-maximum suppression with overlap 0.2
  (:mod:`repro.detection.nms`);
- miss rate versus false-positives-per-image evaluation with 0.5-IoU
  matching and the log-average miss rate summary of Dollar et al.
  (:mod:`repro.detection.evaluate`).
"""

from repro.detection.pyramid import (
    FULL_HD_CELL_GRIDS,
    ImagePyramid,
    full_hd_cell_count,
)
from repro.detection.nms import non_maximum_suppression
from repro.detection.evaluate import (
    DetectionCurve,
    evaluate_detections,
    log_average_miss_rate,
)
from repro.detection.pipeline import (
    Detection,
    EednBinaryScorer,
    SlidingWindowDetector,
    SpikingBinaryScorer,
    TrueNorthBinaryScorer,
    sliding_window_features,
)

__all__ = [
    "Detection",
    "DetectionCurve",
    "EednBinaryScorer",
    "FULL_HD_CELL_GRIDS",
    "ImagePyramid",
    "SlidingWindowDetector",
    "SpikingBinaryScorer",
    "TrueNorthBinaryScorer",
    "evaluate_detections",
    "full_hd_cell_count",
    "log_average_miss_rate",
    "non_maximum_suppression",
    "sliding_window_features",
]
