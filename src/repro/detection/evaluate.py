"""Miss rate versus false-positives-per-image evaluation.

"Detection candidates are evaluated as a function of false positives per
image versus miss rate as proposed by Dollar et al, which is a proxy for
precision-recall curves. In determining true positives, the ratio of a
detection's overlapped region to ground truth images has to be larger
than or equal to 0.5" (paper, Section 4).
"""

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.detection.nms import box_iou

MATCH_IOU = 0.5
"""Minimum IoU for a detection to count as a true positive."""


@dataclass
class DetectionCurve:
    """A miss-rate / FPPI trade-off curve.

    Attributes:
        fppi: false positives per image at each operating point
            (descending score thresholds).
        miss_rate: miss rate (1 - recall) at each operating point.
        thresholds: score thresholds producing each point.
        n_images: images evaluated.
        n_ground_truth: total annotated persons.
    """

    fppi: np.ndarray
    miss_rate: np.ndarray
    thresholds: np.ndarray
    n_images: int
    n_ground_truth: int

    def log_average_miss_rate(self) -> float:
        """Summary score; see :func:`log_average_miss_rate`."""
        return log_average_miss_rate(self.fppi, self.miss_rate)

    def miss_rate_at(self, fppi_target: float) -> float:
        """Miss rate at the largest FPPI not exceeding the target."""
        eligible = self.fppi <= fppi_target
        if not eligible.any():
            return 1.0
        return float(self.miss_rate[eligible].min())


def _match_image(
    boxes: np.ndarray, scores: np.ndarray, truth: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Greedy score-ordered matching within one image.

    Returns per-detection ``is_true_positive`` flags and the count of
    matched ground-truth boxes.
    """
    n = boxes.shape[0]
    tp = np.zeros(n, dtype=bool)
    if n == 0 or truth.shape[0] == 0:
        return tp, np.zeros(truth.shape[0], dtype=bool)
    iou = box_iou(boxes, truth)
    taken = np.zeros(truth.shape[0], dtype=bool)
    for det in np.argsort(scores)[::-1]:
        candidates = np.where(~taken & (iou[det] >= MATCH_IOU))[0]
        if candidates.size:
            best = candidates[np.argmax(iou[det][candidates])]
            taken[best] = True
            tp[det] = True
    return tp, taken


def evaluate_detections(
    detections_per_image: Sequence[Tuple[np.ndarray, np.ndarray]],
    ground_truth_per_image: Sequence[np.ndarray],
) -> DetectionCurve:
    """Build the miss-rate / FPPI curve for a set of evaluated images.

    Args:
        detections_per_image: per image, ``(boxes, scores)`` with boxes
            ``(n, 4)`` as ``(x, y, w, h)``; pass empty arrays for images
            with no detections.
        ground_truth_per_image: per image, ``(m, 4)`` annotation boxes.

    Returns:
        A :class:`DetectionCurve` swept over all observed scores.
    """
    if len(detections_per_image) != len(ground_truth_per_image):
        raise ValueError(
            f"{len(detections_per_image)} detection lists but "
            f"{len(ground_truth_per_image)} ground-truth lists"
        )
    n_images = len(detections_per_image)
    if n_images == 0:
        raise ValueError("need at least one image")

    all_scores: List[np.ndarray] = []
    all_tp: List[np.ndarray] = []
    n_truth = 0
    for (boxes, scores), truth in zip(detections_per_image, ground_truth_per_image):
        boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
        scores = np.asarray(scores, dtype=np.float64).reshape(-1)
        truth = np.asarray(truth, dtype=np.float64).reshape(-1, 4)
        n_truth += truth.shape[0]
        tp, _ = _match_image(boxes, scores, truth)
        all_scores.append(scores)
        all_tp.append(tp)

    scores = np.concatenate(all_scores) if all_scores else np.zeros(0)
    tp = np.concatenate(all_tp) if all_tp else np.zeros(0, dtype=bool)

    order = np.argsort(scores)[::-1]
    scores = scores[order]
    tp = tp[order]
    cum_tp = np.cumsum(tp)
    cum_fp = np.cumsum(~tp)

    if n_truth == 0:
        raise ValueError("no ground-truth boxes; the miss rate is undefined")
    if scores.size == 0:
        return DetectionCurve(
            fppi=np.array([0.0]),
            miss_rate=np.array([1.0]),
            thresholds=np.array([np.inf]),
            n_images=n_images,
            n_ground_truth=n_truth,
        )

    fppi = cum_fp / n_images
    miss_rate = 1.0 - cum_tp / n_truth
    return DetectionCurve(
        fppi=fppi,
        miss_rate=miss_rate,
        thresholds=scores,
        n_images=n_images,
        n_ground_truth=n_truth,
    )


def log_average_miss_rate(
    fppi: np.ndarray, miss_rate: np.ndarray, points: int = 9
) -> float:
    """Dollar et al.'s summary: geometric mean of the miss rate sampled
    at ``points`` log-spaced FPPI values in [1e-2, 1e0].

    Curve points below the smallest achieved FPPI contribute the curve's
    first (worst) miss rate, the standard convention.

    Args:
        fppi: FPPI values (ascending with cumulative detections).
        miss_rate: matching miss rates.
        points: sample count (9 in the reference protocol).

    Returns:
        The log-average miss rate in [0, 1]; lower is better.
    """
    f = np.asarray(fppi, dtype=np.float64)
    m = np.asarray(miss_rate, dtype=np.float64)
    if f.shape != m.shape or f.ndim != 1 or f.size == 0:
        raise ValueError("fppi and miss_rate must be equal-length 1-D arrays")
    samples = np.logspace(-2.0, 0.0, points)
    values = []
    for target in samples:
        eligible = f <= target
        values.append(m[eligible].min() if eligible.any() else 1.0)
    values = np.maximum(np.asarray(values), 1e-10)
    return float(np.exp(np.mean(np.log(values))))


__all__ = [
    "DetectionCurve",
    "MATCH_IOU",
    "evaluate_detections",
    "log_average_miss_rate",
]
