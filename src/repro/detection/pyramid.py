"""Image pyramids and the paper's full-HD cell arithmetic."""

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.obs import get_registry
from repro.utils.images import resize_bilinear

FULL_HD_CELL_GRIDS: Tuple[Tuple[int, int], ...] = (
    (240, 135),
    (160, 90),
    (106, 60),
    (71, 40),
    (47, 26),
    (31, 17),
)
"""Cells (width x height) per scaling layer for a full-HD frame.

Section 5.2: "the number of cells in each layer being {240x135, 160x90,
106x60, 71x40, 47x26, 31x17}, a total of 57749 cells per image."
"""


def full_hd_cell_count() -> int:
    """Total cells per full-HD frame over the six scaling layers (57,749)."""
    return sum(w * h for w, h in FULL_HD_CELL_GRIDS)


def cells_per_second(frames_per_second: float = 26.0) -> float:
    """System cell throughput needed at a given frame rate.

    The paper's target of 26 fps full HD yields ~1.5M cells/second.
    """
    if frames_per_second <= 0:
        raise ValueError(f"frames_per_second must be positive, got {frames_per_second}")
    return full_hd_cell_count() * frames_per_second


@dataclass(frozen=True)
class PyramidLevel:
    """One level of an image pyramid.

    Attributes:
        image: the rescaled image.
        scale: detector-to-original scale factor — a box found at
            ``(x, y, w, h)`` in this level maps to
            ``(x * scale, y * scale, w * scale, h * scale)`` in the
            original image.
    """

    image: np.ndarray
    scale: float


class ImagePyramid:
    """Downscale an image by repeated 1/1.1 steps until the window no
    longer fits.

    "Each SVM model infers person detection from 15 HoG windows, where
    each window size increases by 1.1x" (paper, Section 4) — growing the
    window is equivalent to shrinking the image.

    Args:
        image: 2-D grayscale image.
        window_shape: ``(height, width)`` of the detection window.
        scale_factor: per-level factor (> 1).
        max_levels: cap on levels (15 in the paper; ``None`` = until the
            window stops fitting).
    """

    def __init__(
        self,
        image: np.ndarray,
        window_shape: Tuple[int, int] = (128, 64),
        scale_factor: float = 1.1,
        max_levels: int = 15,
    ) -> None:
        if scale_factor <= 1.0:
            raise ValueError(f"scale_factor must be > 1, got {scale_factor}")
        arr = np.asarray(image, dtype=np.float64)
        if arr.ndim != 2:
            raise ValueError(f"expected 2-D grayscale image, got {arr.shape}")
        self.image = arr
        self.window_shape = window_shape
        self.scale_factor = float(scale_factor)
        self.max_levels = max_levels

    def levels(self) -> List[PyramidLevel]:
        """All pyramid levels, finest (scale 1) first."""
        result: List[PyramidLevel] = []
        scale = 1.0
        height, width = self.image.shape
        wh, ww = self.window_shape
        while (
            (self.max_levels is None or len(result) < self.max_levels)
            and height >= wh
            and width >= ww
        ):
            if scale == 1.0:
                level_image = self.image
            else:
                level_image = resize_bilinear(self.image, (height, width))
            result.append(PyramidLevel(image=level_image, scale=scale))
            scale *= self.scale_factor
            height = int(round(self.image.shape[0] / scale))
            width = int(round(self.image.shape[1] / scale))
        get_registry().counter(
            "pyramid_levels_built_total", help="pyramid levels constructed"
        ).inc(len(result))
        return result

    def __iter__(self) -> Iterator[PyramidLevel]:
        return iter(self.levels())


__all__ = [
    "FULL_HD_CELL_GRIDS",
    "ImagePyramid",
    "PyramidLevel",
    "cells_per_second",
    "full_hd_cell_count",
]
