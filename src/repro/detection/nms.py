"""Greedy non-maximum suppression.

"The detection windows are then narrowed by performing non-maximum
suppression (NMS) with epsilon = 0.2" (paper, Section 4): a detection is
suppressed when it overlaps a higher-scored kept detection by more than
the epsilon threshold.
"""

from typing import List

import numpy as np


def box_iou(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """Pairwise intersection-over-union of ``(x, y, w, h)`` boxes.

    Args:
        boxes_a: ``(n, 4)`` boxes.
        boxes_b: ``(m, 4)`` boxes.

    Returns:
        ``(n, m)`` IoU matrix.
    """
    a = np.atleast_2d(np.asarray(boxes_a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(boxes_b, dtype=np.float64))
    ax1, ay1 = a[:, 0], a[:, 1]
    ax2, ay2 = a[:, 0] + a[:, 2], a[:, 1] + a[:, 3]
    bx1, by1 = b[:, 0], b[:, 1]
    bx2, by2 = b[:, 0] + b[:, 2], b[:, 1] + b[:, 3]

    inter_w = np.maximum(
        0.0, np.minimum(ax2[:, None], bx2[None, :]) - np.maximum(ax1[:, None], bx1[None, :])
    )
    inter_h = np.maximum(
        0.0, np.minimum(ay2[:, None], by2[None, :]) - np.maximum(ay1[:, None], by1[None, :])
    )
    intersection = inter_w * inter_h
    area_a = (a[:, 2] * a[:, 3])[:, None]
    area_b = (b[:, 2] * b[:, 3])[None, :]
    union = area_a + area_b - intersection
    with np.errstate(divide="ignore", invalid="ignore"):
        iou = np.where(union > 0, intersection / union, 0.0)
    # Guard against floating-point excursions just above 1.
    return np.clip(iou, 0.0, 1.0)


def non_maximum_suppression(
    boxes: np.ndarray, scores: np.ndarray, epsilon: float = 0.2
) -> List[int]:
    """Indices of detections surviving greedy NMS, by descending score.

    Args:
        boxes: ``(n, 4)`` boxes as ``(x, y, w, h)``.
        scores: ``(n,)`` detection scores.
        epsilon: IoU above which a lower-scored detection is suppressed.

    Returns:
        Kept indices into the input arrays, highest score first.
    """
    box_arr = np.atleast_2d(np.asarray(boxes, dtype=np.float64))
    score_arr = np.asarray(scores, dtype=np.float64).reshape(-1)
    if box_arr.shape[0] != score_arr.shape[0]:
        raise ValueError(
            f"{box_arr.shape[0]} boxes but {score_arr.shape[0]} scores"
        )
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
    if box_arr.shape[0] == 0:
        return []

    # Stable sort: numpy's default introsort breaks ties in a
    # platform-dependent order, which makes the kept set of tied-score
    # detections nondeterministic. Sorting the negated scores with
    # kind="stable" keeps tied detections in input order.
    order = np.argsort(-score_arr, kind="stable")
    iou = box_iou(box_arr, box_arr)
    kept: List[int] = []
    suppressed = np.zeros(box_arr.shape[0], dtype=bool)
    for index in order:
        if suppressed[index]:
            continue
        kept.append(int(index))
        suppressed |= iou[index] > epsilon
    return kept


__all__ = ["box_iou", "non_maximum_suppression"]
