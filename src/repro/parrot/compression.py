"""Structured compression of the Parrot network for power efficiency.

The paper's stated future work is the "optimization of the combined
Parrot HoG and Eedn network designs for better power efficiency". The
dominant knob is the hidden width: every pruned hidden unit removes
synapses from both layers, and once the width crosses a crossbar
partial-sum boundary (multiples of 128 effective lines) whole cores
disappear from each of the 57,749 replicated cell modules.

:func:`prune_hidden_units` removes the least-important units (importance
= the product of a unit's trinary input and output L1 masses, the
standard structured-pruning saliency); :func:`compress_to_cores` searches
for the widest network that fits a per-cell core budget.
"""

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.eedn.layers import ThresholdActivation, TrinaryDense, trinarize
from repro.eedn.mapping import core_count
from repro.eedn.network import EednNetwork


@dataclass(frozen=True)
class CompressionResult:
    """Outcome of one compression step.

    Attributes:
        network: the pruned network (fresh layers; the input network is
            untouched).
        kept_units: indices of the surviving hidden units, ascending.
        cores_per_cell: TrueNorth cores of the pruned per-cell module.
    """

    network: EednNetwork
    kept_units: Tuple[int, ...]
    cores_per_cell: int


def _split_dense(network: EednNetwork) -> Tuple[TrinaryDense, TrinaryDense]:
    dense = [layer for layer in network.layers if isinstance(layer, TrinaryDense)]
    if len(dense) != 2:
        raise ValueError(
            f"parrot compression expects a 2-dense-layer network, found {len(dense)}"
        )
    return dense[0], dense[1]


def hidden_unit_importance(network: EednNetwork) -> np.ndarray:
    """Saliency of each hidden unit.

    A unit matters when it both *receives* signal (input trinary mass)
    and *influences* outputs (output trinary mass); the saliency is the
    product of the two L1 masses, with a small epsilon so dead inputs
    rank below weakly connected ones deterministically.

    Args:
        network: a 2-dense-layer parrot-style network.

    Returns:
        ``(hidden,)`` non-negative saliencies.
    """
    first, second = _split_dense(network)
    input_mass = np.abs(trinarize(first.weights)).sum(axis=0)
    output_mass = np.abs(trinarize(second.weights)).sum(axis=1)
    return (input_mass + 1e-6) * (output_mass + 1e-6)


def prune_hidden_units(network: EednNetwork, keep: int) -> CompressionResult:
    """Keep the ``keep`` most salient hidden units.

    Args:
        network: a 2-dense-layer network (dense, threshold, dense).
        keep: surviving hidden width (>= 1).

    Returns:
        A :class:`CompressionResult` with a brand-new network.
    """
    first, second = _split_dense(network)
    if not 1 <= keep <= first.n_out:
        raise ValueError(f"keep must be in [1, {first.n_out}], got {keep}")
    saliency = hidden_unit_importance(network)
    kept = np.sort(np.argsort(saliency)[::-1][:keep])

    threshold_layers = [
        layer for layer in network.layers if isinstance(layer, ThresholdActivation)
    ]
    ste_window = threshold_layers[0].ste_window if threshold_layers else 1.0

    pruned_first = TrinaryDense(first.n_in, keep, rng=0)
    pruned_first.weights[...] = first.weights[:, kept]
    pruned_first.bias[...] = first.bias[kept]
    pruned_second = TrinaryDense(keep, second.n_out, rng=0)
    pruned_second.weights[...] = second.weights[kept, :]
    pruned_second.bias[...] = second.bias.copy()

    pruned = EednNetwork(
        [pruned_first, ThresholdActivation(0.0, ste_window=ste_window), pruned_second]
    )
    cores, _ = core_count(pruned, (first.n_in,))
    return CompressionResult(
        network=pruned, kept_units=tuple(int(k) for k in kept), cores_per_cell=cores
    )


def compress_to_cores(
    network: EednNetwork, max_cores_per_cell: int
) -> CompressionResult:
    """The widest pruning of ``network`` within a per-cell core budget.

    Args:
        network: a 2-dense-layer network.
        max_cores_per_cell: core budget for one cell module.

    Returns:
        A :class:`CompressionResult` whose ``cores_per_cell`` is within
        budget.

    Raises:
        ValueError: when even a single hidden unit exceeds the budget.
    """
    first, _ = _split_dense(network)
    low, high = 1, first.n_out
    best: CompressionResult = prune_hidden_units(network, 1)
    if best.cores_per_cell > max_cores_per_cell:
        raise ValueError(
            f"even one hidden unit needs {best.cores_per_cell} cores > "
            f"budget {max_cores_per_cell}"
        )
    while low <= high:
        mid = (low + high) // 2
        candidate = prune_hidden_units(network, mid)
        if candidate.cores_per_cell <= max_cores_per_cell:
            best = candidate
            low = mid + 1
        else:
            high = mid - 1
    return best


def power_per_window(
    cores_per_cell: int, window_cells: int = 128, core_watts: float = 16e-6
) -> float:
    """Extraction power of one 64x128 window at a given module size."""
    if cores_per_cell < 0 or window_cells < 0:
        raise ValueError("core and cell counts must be non-negative")
    return cores_per_cell * window_cells * core_watts


__all__ = [
    "CompressionResult",
    "compress_to_cores",
    "hidden_unit_importance",
    "power_per_window",
    "prune_hidden_units",
]
