"""How faithfully does the parrot mimic the reference extractor?"""

from dataclasses import dataclass

import numpy as np

from repro.napprox.software import NApproxConfig, NApproxDescriptor, N_DIRECTIONS
from repro.parrot.datagen import _oriented_pattern
from repro.parrot.extractor import ParrotExtractor
from repro.utils.rng import RngLike, resolve_rng


@dataclass(frozen=True)
class FidelityReport:
    """Parrot-vs-reference histogram agreement.

    Attributes:
        correlation: Pearson correlation across all (cell, bin) values.
        mean_absolute_error: mean |difference| in vote counts.
        dominant_bin_agreement: fraction of gradient-bearing cells where
            both sides agree on the strongest bin (within one bin,
            cyclically).
        n_cells: cells evaluated.
    """

    correlation: float
    mean_absolute_error: float
    dominant_bin_agreement: float
    n_cells: int


def parrot_fidelity(
    extractor: ParrotExtractor,
    n_cells: int = 400,
    rng: RngLike = 0,
) -> FidelityReport:
    """Measure parrot fidelity on fresh oriented patterns.

    Args:
        extractor: the parrot extractor (analog or spiking).
        n_cells: held-out cells to evaluate.
        rng: pattern randomness (independent of training data when seeded
            differently).

    Returns:
        A :class:`FidelityReport`.
    """
    if n_cells < 2:
        raise ValueError(f"n_cells must be >= 2, got {n_cells}")
    generator = resolve_rng(rng)
    reference = NApproxDescriptor(NApproxConfig(quantized=False, normalization="none"))

    cells = np.stack([_oriented_pattern(generator).ravel() for _ in range(n_cells)])
    parrot_hist = extractor.cell_histograms_batch(cells)
    reference_hist = np.stack(
        [
            reference.pixel_votes(cell.reshape(8, 8))
            .reshape(-1, N_DIRECTIONS)
            .sum(axis=0)
            for cell in cells
        ]
    ).astype(np.float64)

    flat_p = parrot_hist.ravel()
    flat_r = reference_hist.ravel()
    if flat_p.std() == 0.0 or flat_r.std() == 0.0:
        correlation = 0.0
    else:
        correlation = float(np.corrcoef(flat_p, flat_r)[0, 1])

    edgy = reference_hist.sum(axis=1) > 3.0
    if edgy.any():
        winners_p = parrot_hist[edgy].argmax(axis=1)
        winners_r = reference_hist[edgy].argmax(axis=1)
        distance = np.minimum(
            (winners_p - winners_r) % N_DIRECTIONS,
            (winners_r - winners_p) % N_DIRECTIONS,
        )
        agreement = float((distance <= 1).mean())
    else:
        agreement = 0.0

    return FidelityReport(
        correlation=correlation,
        mean_absolute_error=float(np.abs(parrot_hist - reference_hist).mean()),
        dominant_bin_agreement=agreement,
        n_cells=n_cells,
    )


__all__ = ["FidelityReport", "parrot_fidelity"]
