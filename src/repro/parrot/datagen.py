"""Randomly generated labelled training data for the Parrot extractor.

Figure 3 of the paper shows the scheme: samples are oriented patterns
labelled by angle class, generated "with different ratio of 1's and 0's
so that the feature extractor can learn to deal with samples with
offsets". Because HoG is a well-defined function of the pixels, every
sample's exact target histogram is computed with the reference NApprox
model — no manual labelling.
"""

from dataclasses import dataclass

import numpy as np

from repro.napprox.software import NApproxConfig, NApproxDescriptor, N_DIRECTIONS
from repro.utils.rng import RngLike, resolve_rng

CELL_PIXELS = 64
"""The parrot network sees all 8x8 pixels of a cell (paper, Section 3.2)."""


@dataclass
class ParrotDataset:
    """Training material for the parrot network.

    Attributes:
        inputs: ``(n, 64)`` cell pixels in [0, 1].
        angle_labels: ``(n,)`` dominant-orientation class (0..17), the
            hard labels shown in Figure 3.
        targets: ``(n, 18)`` soft targets — the cell's reference HoG
            histogram scaled to [0, 1] (votes / 64).
    """

    inputs: np.ndarray
    angle_labels: np.ndarray
    targets: np.ndarray

    def __len__(self) -> int:
        return self.inputs.shape[0]


def _oriented_pattern(rng: np.random.Generator) -> np.ndarray:
    """One random oriented sample: an edge, stripe set, or offset fill."""
    ys, xs = np.mgrid[0:8, 0:8] / 7.0
    kind = rng.random()
    angle = rng.uniform(0.0, 2.0 * np.pi)
    ramp = np.cos(angle) * xs - np.sin(angle) * ys
    if kind < 0.45:
        # Step edge with random phase ("different ratios of 1s and 0s").
        phase = rng.uniform(ramp.min(), ramp.max())
        image = (ramp > phase).astype(np.float64)
    elif kind < 0.80:
        # Stripes of random frequency and phase.
        freq = rng.uniform(1.5, 4.0)
        phase = rng.uniform(0.0, 2.0 * np.pi)
        image = (np.sin(freq * np.pi * ramp + phase) > 0).astype(np.float64)
    elif kind < 0.92:
        # Smooth ramp (soft gradient rather than a hard edge).
        image = (ramp - ramp.min()) / max(float(ramp.max() - ramp.min()), 1e-9)
    else:
        # Near-flat fill: teaches the network that no gradient means no
        # histogram mass.
        image = np.full((8, 8), rng.uniform(0.0, 1.0))
    # Contrast spans the full range detection cells exhibit (soft,
    # blurred edges down to ~0.1) plus a density offset and light noise.
    contrast = rng.uniform(0.1, 1.0)
    offset = rng.uniform(0.0, 1.0 - contrast)
    image = image * contrast + offset
    image = image + rng.normal(0.0, 0.02, size=(8, 8))
    return np.clip(image, 0.0, 1.0)


def generate_parrot_samples(
    count: int, rng: RngLike = None, quantized_reference: bool = False
) -> ParrotDataset:
    """Generate ``count`` labelled samples.

    Args:
        count: samples to generate.
        rng: randomness source.
        quantized_reference: compute targets with the quantised NApprox
            model instead of the full-precision one.

    Returns:
        A :class:`ParrotDataset`.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    generator = resolve_rng(rng)
    reference = NApproxDescriptor(
        NApproxConfig(quantized=quantized_reference, normalization="none")
    )
    inputs = np.empty((count, CELL_PIXELS), dtype=np.float64)
    labels = np.empty(count, dtype=np.int64)
    targets = np.empty((count, N_DIRECTIONS), dtype=np.float64)
    for index in range(count):
        image = _oriented_pattern(generator)
        votes = reference.pixel_votes(image)
        histogram = votes.reshape(-1, N_DIRECTIONS).sum(axis=0).astype(np.float64)
        inputs[index] = image.ravel()
        targets[index] = histogram / CELL_PIXELS
        labels[index] = int(np.argmax(histogram)) if histogram.sum() else 0
    return ParrotDataset(inputs=inputs, angle_labels=labels, targets=targets)


__all__ = ["CELL_PIXELS", "ParrotDataset", "generate_parrot_samples"]
