"""The Parrot feature extractor: trained network, descriptor interface."""

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from repro.coding.stochastic import StochasticEncoder
from repro.eedn.network import EednNetwork
from repro.eedn.mapping import core_count, deploy_dense_network
from repro.eedn.spiking import SpikingEvaluator
from repro.hog.blocks import block_grid_shape, normalize_blocks
from repro.napprox.software import N_DIRECTIONS
from repro.parrot.trainer import sigmoid_rates
from repro.truenorth.simulator import Simulator
from repro.utils.images import rgb_to_grayscale, to_float_image
from repro.utils.rng import RngLike, resolve_rng


@dataclass(frozen=True)
class ParrotFeatureConfig:
    """Descriptor-side configuration of the parrot extractor.

    Attributes:
        cell_size: cell edge in pixels (the parrot network is per-cell).
        block_size: block edge in cells (for optional normalisation).
        block_stride: block stride in cells.
        normalization: block normalisation; the neuromorphic experiments
            use ``"none"`` (Section 5).
        spikes: ``None`` for analog evaluation, or the stochastic-coding
            window (1..64) of Figure 6.
    """

    cell_size: int = 8
    block_size: int = 2
    block_stride: int = 1
    normalization: str = "none"
    spikes: Optional[int] = None

    @property
    def n_bins(self) -> int:
        """Histogram bins (18, matching NApprox)."""
        return N_DIRECTIONS

    def feature_length(self, window_shape: Tuple[int, int]) -> int:
        """Descriptor length for a ``(height, width)`` pixel window."""
        n_cells_y = window_shape[0] // self.cell_size
        n_cells_x = window_shape[1] // self.cell_size
        if self.normalization == "none" and self.block_size == 1:
            return n_cells_y * n_cells_x * self.n_bins
        n_blocks_y, n_blocks_x = block_grid_shape(
            n_cells_y, n_cells_x, self.block_size, self.block_stride
        )
        return n_blocks_y * n_blocks_x * self.block_size**2 * self.n_bins


class ParrotExtractor:
    """Cell-wise HoG mimicry with the package-wide extractor interface.

    Args:
        network: the trained parrot network (64 -> hidden -> 18).
        config: descriptor configuration; ``config.spikes`` selects the
            input representation (``None`` = analog).
        rng: randomness for stochastic spike coding.
        backend: ``"numpy"`` (default) evaluates spiking mode with the
            vectorized :class:`SpikingEvaluator`; ``"truenorth"`` deploys
            the network onto real neurosynaptic cores and batches every
            cell through the vectorized batch simulation engine (hard
            output thresholds; requires ``config.spikes``).
        engine: simulation engine for the ``"truenorth"`` backend,
            ``"batch"`` (default) or ``"reference"``.
    """

    def __init__(
        self,
        network: EednNetwork,
        config: ParrotFeatureConfig = ParrotFeatureConfig(),
        rng: RngLike = 0,
        backend: str = "numpy",
        engine: str = "batch",
    ) -> None:
        if backend not in ("numpy", "truenorth"):
            raise ValueError(
                f"backend must be 'numpy' or 'truenorth', got {backend!r}"
            )
        self.network = network
        self.config = config
        self.backend = backend
        self.engine = engine
        self._rng = rng
        self._evaluator: Optional[SpikingEvaluator] = None
        self._simulator: Optional[Simulator] = None
        if config.spikes is not None and config.spikes < 1:
            raise ValueError(f"spikes must be >= 1, got {config.spikes}")
        if backend == "truenorth":
            if config.spikes is None:
                raise ValueError(
                    "the 'truenorth' backend needs spike coding; set config.spikes"
                )
            self._deployed = deploy_dense_network(network)
            self._simulator = Simulator(self._deployed.system, rng=rng, engine=engine)
            self._encoder = StochasticEncoder(config.spikes)
            self._encoder_rng = resolve_rng(rng)
            self._total_ticks = config.spikes + self._deployed.stages - 1
        elif config.spikes is not None:
            self._evaluator = SpikingEvaluator(network, ticks=config.spikes, rng=rng)

    def with_normalization(self, method: str) -> "ParrotExtractor":
        """A copy with a different block normalisation."""
        return ParrotExtractor(
            self.network,
            replace(self.config, normalization=method),
            rng=self._rng,
            backend=self.backend,
            engine=self.engine,
        )

    def with_spikes(self, spikes: Optional[int]) -> "ParrotExtractor":
        """A copy at a different input spike precision."""
        return ParrotExtractor(
            self.network,
            replace(self.config, spikes=spikes),
            rng=self._rng,
            backend=self.backend if spikes is not None else "numpy",
            engine=self.engine,
        )

    # ------------------------------------------------------------------
    def cell_histograms_batch(self, cells: np.ndarray) -> np.ndarray:
        """Histogram estimates for ``(n, 64)`` flattened cells.

        Returns vote-count estimates in ``[0, 64]`` per bin (rate x 64),
        commensurate with the NApprox count histograms.
        """
        x = np.asarray(cells, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.config.cell_size**2:
            raise ValueError(
                f"cells must be (n, {self.config.cell_size ** 2}), got {x.shape}"
            )
        if self._simulator is not None:
            rates = self._truenorth_rates(np.clip(x, 0.0, 1.0))
        elif self._evaluator is None:
            logits = self.network.forward(x)
            rates = sigmoid_rates(logits)
        else:
            rates = self._evaluator.evaluate(np.clip(x, 0.0, 1.0)).rates
        return rates * float(self.config.cell_size**2)

    def _truenorth_rates(self, cells: np.ndarray) -> np.ndarray:
        """Output rates of ``(n, 64)`` cells run on neurosynaptic cores."""
        ticks = int(self.config.spikes)
        if cells.shape[0] == 0:
            return np.zeros((0, N_DIRECTIONS))
        rasters = np.zeros(
            (cells.shape[0], self._total_ticks, cells.shape[1]), dtype=bool
        )
        for lane, row in enumerate(cells):
            rasters[lane, :ticks] = self._encoder.encode(row, rng=self._encoder_rng)
        result = self._simulator.run_batch(self._total_ticks, {"in": rasters})
        return result.spike_counts("out") / float(ticks)

    def cell_grid(self, image: np.ndarray) -> np.ndarray:
        """Per-cell histograms of shape ``(cy, cx, 18)``."""
        gray = to_float_image(rgb_to_grayscale(to_float_image(image)))
        cs = self.config.cell_size
        cy = gray.shape[0] // cs
        cx = gray.shape[1] // cs
        if cy == 0 or cx == 0:
            return np.zeros((cy, cx, N_DIRECTIONS))
        trimmed = gray[: cy * cs, : cx * cs]
        cells = (
            trimmed.reshape(cy, cs, cx, cs)
            .transpose(0, 2, 1, 3)
            .reshape(cy * cx, cs * cs)
        )
        histograms = self.cell_histograms_batch(cells)
        return histograms.reshape(cy, cx, N_DIRECTIONS)

    def from_cells(self, cells: np.ndarray) -> np.ndarray:
        """Assemble the flat descriptor from a per-cell histogram grid."""
        blocks = normalize_blocks(
            cells,
            block_size=self.config.block_size,
            stride=self.config.block_stride,
            method=self.config.normalization,
        )
        return blocks.ravel()

    def compute(self, image: np.ndarray) -> np.ndarray:
        """The flat descriptor of a whole image treated as one window."""
        return self.from_cells(self.cell_grid(image))

    def feature_length(self, window_shape: Tuple[int, int]) -> int:
        """Descriptor length for a pixel window of ``window_shape``."""
        return self.config.feature_length(window_shape)

    # ------------------------------------------------------------------
    def cores_per_cell(self) -> int:
        """TrueNorth cores per cell module under the standard mapping.

        The paper reports 8 cores per 8x8 cell (1024 for a 64x128 window
        of 128 cells).
        """
        total, _ = core_count(self.network, (self.config.cell_size**2,))
        return total

    def cores_per_window(self, window_shape: Tuple[int, int] = (128, 64)) -> int:
        """Extractor cores for a full detection window."""
        cells = (window_shape[0] // self.config.cell_size) * (
            window_shape[1] // self.config.cell_size
        )
        return cells * self.cores_per_cell()

    def __repr__(self) -> str:
        mode = (
            "analog"
            if self.config.spikes is None
            else f"{self.config.spikes}-spike stochastic"
        )
        return f"ParrotExtractor({mode}, norm={self.config.normalization!r})"


__all__ = ["ParrotExtractor", "ParrotFeatureConfig"]
