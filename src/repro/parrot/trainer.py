"""Training the Parrot network against soft HoG-histogram targets.

The paper notes "the distribution of confidence scores matching the HoG
histograms is more important than the particular classification", so the
trainer optimises a per-bin regression: the network's output rates (a
sigmoid squash of the logits in analog training, spike rates at
deployment) should match the reference histogram scaled to [0, 1].
"""

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.eedn.layers import ThresholdActivation, TrinaryDense
from repro.eedn.network import EednNetwork
from repro.eedn.train import TrainConfig, train_network
from repro.napprox.software import N_DIRECTIONS
from repro.parrot.datagen import CELL_PIXELS, ParrotDataset, generate_parrot_samples
from repro.utils.rng import RngLike, resolve_rng

SIGMOID_SCALE = 4.0
"""Logit divisor of the analog output squash; approximates the spread of
the per-tick spiking logits so analog rates track deployed spike rates."""


def sigmoid_rates(logits: np.ndarray, scale: float = SIGMOID_SCALE) -> np.ndarray:
    """Analog output rates: ``sigmoid(logits / scale)``."""
    return 1.0 / (1.0 + np.exp(-np.asarray(logits, dtype=np.float64) / scale))


def rate_matching_loss(
    logits: np.ndarray, targets: np.ndarray, scale: float = SIGMOID_SCALE
) -> Tuple[float, np.ndarray]:
    """Per-bin binary cross-entropy between sigmoid rates and targets.

    BCE is the matching loss for a sigmoid output: its logit gradient is
    simply ``(rate - target) / scale``, so training does not stall when
    rates saturate (a plain MSE's gradient vanishes there).

    Args:
        logits: ``(batch, bins)`` raw outputs.
        targets: ``(batch, bins)`` rate targets in [0, 1].

    Returns:
        ``(loss, grad)`` with ``grad`` = d loss / d logits.
    """
    z = np.asarray(logits, dtype=np.float64)
    t = np.asarray(targets, dtype=np.float64)
    if z.shape != t.shape:
        raise ValueError(f"logits {z.shape} and targets {t.shape} must match")
    rates = np.clip(sigmoid_rates(z, scale), 1e-9, 1.0 - 1e-9)
    # Sum over bins, mean over the batch, so the gradient is exactly
    # (rate - target) / scale / batch.
    per_example = -(t * np.log(rates) + (1.0 - t) * np.log(1.0 - rates)).sum(axis=1)
    loss = float(per_example.mean())
    grad = (rates - t) / scale / z.shape[0]
    return loss, grad


@dataclass
class ParrotTrainer:
    """Configuration and factory for parrot training runs.

    Attributes:
        hidden: hidden-layer width; 512 reproduces the paper's 8-cores-
            per-cell resource footprint under the standard mapping.
        n_samples: synthetic training samples to generate.
        epochs: training epochs.
        learning_rate: SGD step size.
        rng: master randomness (data, init, shuffling).
    """

    hidden: int = 512
    n_samples: int = 16000
    epochs: int = 50
    learning_rate: float = 0.05
    rng: RngLike = 0

    def run(self) -> Tuple[EednNetwork, ParrotDataset, dict]:
        """Generate data, build and train the network.

        Returns:
            ``(network, dataset, diagnostics)``; diagnostics include the
            final regression loss and the hard angle-classification
            accuracy (a sanity proxy, not the objective).
        """
        return train_parrot(
            hidden=self.hidden,
            n_samples=self.n_samples,
            epochs=self.epochs,
            learning_rate=self.learning_rate,
            rng=self.rng,
        )


def train_parrot(
    hidden: int = 512,
    n_samples: int = 16000,
    epochs: int = 50,
    learning_rate: float = 0.05,
    rng: RngLike = 0,
    dataset: Optional[ParrotDataset] = None,
    stochastic_inputs: bool = True,
) -> Tuple[EednNetwork, ParrotDataset, dict]:
    """Train the 2-layer parrot network.

    Args:
        hidden: hidden-layer width.
        n_samples: synthetic samples (ignored when ``dataset`` given).
        epochs: training epochs.
        learning_rate: SGD step size.
        rng: master randomness.
        dataset: pre-generated training data (optional).
        stochastic_inputs: train on per-batch Bernoulli binarisations of
            the pixels — the single-tick statistics of stochastic spike
            coding — so deployed spike rates match the trained
            expectations ("Parrot HoG operates with stochastic input
            signals", paper Section 1). Disable for analog-only use.

    Returns:
        ``(network, dataset, diagnostics)``.
    """
    generator = resolve_rng(rng)
    if dataset is None:
        dataset = generate_parrot_samples(n_samples, rng=generator)
    network = EednNetwork(
        [
            TrinaryDense(CELL_PIXELS, hidden, rng=generator),
            ThresholdActivation(0.0, ste_window=2.0),
            TrinaryDense(hidden, N_DIRECTIONS, rng=generator),
        ]
    )
    result = train_network(
        network,
        dataset.inputs,
        dataset.targets,
        TrainConfig(
            epochs=epochs,
            learning_rate=learning_rate,
            lr_decay=0.97,
            batch_size=64,
        ),
        loss_fn=rate_matching_loss,
        rng=generator,
        augment_fn=(
            (lambda batch, g: (g.random(batch.shape) < batch).astype(np.float64))
            if stochastic_inputs
            else None
        ),
    )
    predictions = network.predict(dataset.inputs)
    edgy = dataset.targets.sum(axis=1) > 0.05  # cells with real gradients
    angle_accuracy = (
        float((predictions[edgy] == dataset.angle_labels[edgy]).mean())
        if edgy.any()
        else 0.0
    )
    distance = np.minimum(
        (predictions - dataset.angle_labels) % N_DIRECTIONS,
        (dataset.angle_labels - predictions) % N_DIRECTIONS,
    )
    diagnostics = {
        "final_loss": result.losses[-1],
        "angle_accuracy": angle_accuracy,
        "angle_within_one_bin": float((distance[edgy] <= 1).mean()) if edgy.any() else 0.0,
    }
    return network, dataset, diagnostics


__all__ = [
    "ParrotTrainer",
    "SIGMOID_SCALE",
    "rate_matching_loss",
    "sigmoid_rates",
    "train_parrot",
]
