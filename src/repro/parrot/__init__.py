"""Parrot HoG: a trained network that mimics the HoG feature extractor.

Instead of programming HoG operations, the paper trains a small Eedn
classifier to *behave like* the extractor (the "Parrot transformation" of
Esmaeilzadeh et al.): neurons of each orientation class output the
confidence that the cell matches that orientation, producing an
equivalent feature vector (paper, Section 3.2).

- :mod:`repro.parrot.datagen` generates the randomly generated labelled
  training data of Figure 3 — automatic labelling is possible because
  HoG is a well-defined function of the pixels;
- :mod:`repro.parrot.trainer` trains the 2-layer per-cell network
  against soft HoG-histogram targets;
- :mod:`repro.parrot.extractor` exposes the trained network with the
  package-wide feature-extractor interface, in analog mode or at any
  stochastic spike precision (1..32 spikes, Figure 6);
- :mod:`repro.parrot.fidelity` quantifies how well parrot histograms
  track the reference extractor.
"""

from repro.parrot.datagen import ParrotDataset, generate_parrot_samples
from repro.parrot.trainer import ParrotTrainer, train_parrot
from repro.parrot.extractor import ParrotExtractor, ParrotFeatureConfig
from repro.parrot.fidelity import FidelityReport, parrot_fidelity
from repro.parrot.compression import (
    CompressionResult,
    compress_to_cores,
    prune_hidden_units,
)

__all__ = [
    "CompressionResult",
    "FidelityReport",
    "ParrotDataset",
    "ParrotExtractor",
    "ParrotFeatureConfig",
    "ParrotTrainer",
    "compress_to_cores",
    "generate_parrot_samples",
    "parrot_fidelity",
    "prune_hidden_units",
    "train_parrot",
]
