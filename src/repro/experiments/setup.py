"""Shared experiment scaffolding: data splits and detector training."""

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.datasets import Scene, SyntheticPersonDataset
from repro.detection import (
    DetectionCurve,
    SlidingWindowDetector,
    evaluate_detections,
)
from repro.eedn.layers import ThresholdActivation, TrinaryDense
from repro.eedn.network import EednNetwork
from repro.eedn.train import TrainConfig, TrainResult, train_network
from repro.svm import HardNegativeMiner, LinearSVM
from repro.utils.rng import RngLike, resolve_rng

CELL_COUNT_SCALE = 1.0 / 64.0
"""Maps count histograms (votes in [0, 64]) to [0, 1] for Eedn inputs."""


@dataclass
class ExperimentData:
    """One reproducible train/test split.

    Attributes:
        positive_windows: ``(p, 128, 64)`` normalised person crops.
        negative_windows: ``(n, 128, 64)`` person-free crops.
        negative_images: person-free scenes for hard-negative mining.
        test_scenes: annotated evaluation scenes.
    """

    positive_windows: np.ndarray
    negative_windows: np.ndarray
    negative_images: List[np.ndarray]
    test_scenes: List[Scene]

    def ground_truth(self) -> List[np.ndarray]:
        """Per-scene ``(m, 4)`` annotation arrays."""
        return [
            np.stack([a.as_array() for a in scene.annotations])
            if scene.annotations
            else np.zeros((0, 4))
            for scene in self.test_scenes
        ]


def make_experiment_data(
    n_positive: int = 150,
    n_negative: int = 300,
    n_negative_images: int = 10,
    n_test_scenes: int = 20,
    scene_shape: Tuple[int, int] = (200, 260),
    rng: RngLike = 7,
) -> ExperimentData:
    """Generate the standard split used by the figure reproductions.

    The INRIA proportions (2,416 positives / 12,180 negatives) are scaled
    down so the full pipeline runs in CI time; pass larger counts for a
    closer reproduction.

    Args:
        n_positive: positive training windows.
        n_negative: initial negative training windows.
        n_negative_images: scenes reserved for hard-negative mining.
        n_test_scenes: annotated evaluation scenes.
        scene_shape: test/mining scene size.
        rng: master seed.
    """
    dataset = SyntheticPersonDataset(rng=rng)
    return ExperimentData(
        positive_windows=dataset.positive_windows(n_positive),
        negative_windows=dataset.negative_windows(n_negative),
        negative_images=dataset.negative_images(n_negative_images, scene_shape),
        test_scenes=dataset.test_scenes(n_test_scenes, scene_shape, max_people=2),
    )


def window_feature_matrix(
    extractor, windows: np.ndarray, feature_mode: str = "blocks"
) -> np.ndarray:
    """Stack the descriptor of every window image."""
    detector = SlidingWindowDetector(extractor, None, feature_mode=feature_mode)
    return np.stack([detector.window_features(window) for window in windows])


def train_svm_detector(
    extractor,
    data: ExperimentData,
    C: float = 0.1,
    mining_rounds: int = 1,
    score_threshold: float = -1.0,
    rng: RngLike = 0,
) -> Tuple[SlidingWindowDetector, HardNegativeMiner]:
    """Train an SVM with hard-negative mining for the given extractor.

    Args:
        extractor: any descriptor with the package extractor interface.
        data: the experiment split.
        C: SVM regularisation.
        mining_rounds: bootstrapping rounds over the negative images.
        score_threshold: detector operating threshold (low, so curves
            sweep a wide FPPI range).
        rng: SVM solver randomness.

    Returns:
        ``(detector, miner)`` — the miner carries the mining report.
    """
    positives = window_feature_matrix(extractor, data.positive_windows)
    negatives = window_feature_matrix(extractor, data.negative_windows)
    seed_rng = resolve_rng(rng)
    seed = int(seed_rng.integers(0, 2**31 - 1))

    def factory() -> LinearSVM:
        return LinearSVM(C=C, epochs=20, rng=seed)

    def scan(model: LinearSVM) -> np.ndarray:
        scanner = SlidingWindowDetector(extractor, model, score_threshold=0.0)
        return scanner.hard_negative_features(data.negative_images, per_image_cap=40)

    miner = HardNegativeMiner(factory, rounds=mining_rounds)
    model = miner.fit(positives, negatives, scan if mining_rounds else None)
    detector = SlidingWindowDetector(
        extractor, model, score_threshold=score_threshold
    )
    return detector, miner


def train_eedn_classifier(
    extractor,
    data: ExperimentData,
    hidden: int = 512,
    epochs: int = 30,
    learning_rate: float = 0.01,
    rng: RngLike = 1,
) -> Tuple[EednNetwork, TrainResult]:
    """Train the Eedn pedestrian classifier on window cell features.

    Features are the raw (unnormalised) cell histograms scaled to [0, 1]
    — "the experiments elide block normalization when using the
    neuromorphic classifier" (paper, Section 5).

    Args:
        extractor: feature extractor (NApprox or Parrot).
        data: the experiment split.
        hidden: hidden width of the classifier.
        epochs: training epochs.
        learning_rate: SGD step.
        rng: randomness.

    Returns:
        ``(network, train_result)``.
    """
    generator = resolve_rng(rng)
    positives = window_feature_matrix(extractor, data.positive_windows, "cells")
    negatives = window_feature_matrix(extractor, data.negative_windows, "cells")
    features = np.vstack([positives, negatives]) * CELL_COUNT_SCALE
    labels = np.concatenate(
        [np.ones(len(positives), dtype=np.int64), np.zeros(len(negatives), dtype=np.int64)]
    )
    network = EednNetwork(
        [
            TrinaryDense(features.shape[1], hidden, rng=generator),
            ThresholdActivation(0.0, ste_window=2.0),
            TrinaryDense(hidden, 2, rng=generator),
        ]
    )
    result = train_network(
        network,
        features,
        labels,
        TrainConfig(
            epochs=epochs,
            learning_rate=learning_rate,
            lr_decay=0.97,
            logit_scale=8.0,
        ),
        rng=generator,
    )
    return network, result


def detection_curve(
    detector: SlidingWindowDetector, data: ExperimentData
) -> DetectionCurve:
    """Run the detector over the test scenes and build the curve."""
    detections = [detector.detect_boxes(scene.image) for scene in data.test_scenes]
    return evaluate_detections(detections, data.ground_truth())


__all__ = [
    "CELL_COUNT_SCALE",
    "ExperimentData",
    "detection_curve",
    "make_experiment_data",
    "train_eedn_classifier",
    "train_svm_detector",
    "window_feature_matrix",
]
