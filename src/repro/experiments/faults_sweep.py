"""Detection robustness under injected hardware faults.

The paper's pipelines assume a healthy TrueNorth substrate; this sweep
asks the question the fault model (``docs/FAULT_MODEL.md``) exists to
answer: *how fast does detection quality degrade as the chip breaks?*
For each fault rate it deploys the NApprox- and Parrot-fed Eedn window
classifiers onto simulated neurosynaptic cores, injects a
:class:`~repro.faults.FaultPlan` at that rate, and measures the
window-level miss rate on held-out positive windows at a fixed
false-positive operating point (:data:`TARGET_FPR`), plus the raw
false-positive rate on held-out negatives. The software SVM baseline is
evaluated once — chip faults cannot touch it — and serves as the flat
reference line.

Because rate-parameterised faults are **nested across rates** (same
seed, higher rate = strict superset of fault sites), the degradation
curves are monotone by construction up to sampling noise; averaging
over several fault seeds and anchoring the top of the sweep at rate 1.0
(no routed spike survives, every margin collapses to an
input-independent constant, miss rate 1.0 at the fixed-FPR operating
point) gives the monotone curves ``python -m repro faults --check``
asserts.

To keep the classifier deployable through
:func:`~repro.eedn.mapping.deploy_dense_network` (trinary weights need
a +/- axon pair per input line, so a stage accepts at most 128 inputs),
window cell grids are reduced before classification: orientation bins
merged 18 -> 6 and cells average-pooled ``(16, 8) -> (4, 4)``, giving
4 x 4 x 6 = 96 features (see :func:`pooled_window_features`).
"""

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets import SyntheticPersonDataset
from repro.detection.pipeline import TrueNorthBinaryScorer
from repro.eedn.layers import ThresholdActivation, TrinaryDense
from repro.eedn.network import EednNetwork
from repro.eedn.train import TrainConfig, train_network
from repro.faults import (
    DroppedSpikes,
    DuplicatedSpikes,
    FaultPlan,
    RandomDeadCores,
    RandomStuckNeurons,
    ThresholdDrift,
    WeightBitFlips,
)
from repro.svm import LinearSVM
from repro.utils.rng import RngLike, resolve_rng

#: Sweepable fault kinds and the plan each rate maps to.
FAULT_KINDS = ("drop", "dup", "dead", "stuck", "flip", "drift")

#: A ``drift`` rate of 1.0 maps to this threshold-drift scale.
DRIFT_SCALE = 64.0

#: Calibration target: the 95th percentile of the *training* pooled
#: counts is mapped to this firing probability. Extractor outputs span
#: orders of magnitude (NApprox cell counts average ~3.6, a
#: small-budget parrot's ~0.02), and content coding clips features to
#: [0, 1] per-tick firing probabilities — without calibration one
#: extractor's features saturate while the other's never spike.
FEATURE_TARGET = 0.8


def build_fault_plan(kind: str, rate: float, seed: int = 0) -> Optional[FaultPlan]:
    """The :class:`FaultPlan` for one sweep point.

    Args:
        kind: one of :data:`FAULT_KINDS` — ``drop`` / ``dup`` are
            per-delivery spike-transport faults, ``dead`` kills a
            fraction of cores, ``stuck`` silences a fraction of
            neurons, ``flip`` XORs bit 1 of that fraction of connected
            synaptic weights, ``drift`` shifts fire thresholds by up to
            ``rate * DRIFT_SCALE``.
        rate: fault intensity in ``[0, 1]``.
        seed: fault-plan seed (vary it to average out site placement).

    Returns:
        The plan, or ``None`` at rate 0 (the clean baseline).

    Raises:
        ValueError: on an unknown ``kind``.
    """
    if kind not in FAULT_KINDS:
        raise ValueError(f"fault kind must be one of {FAULT_KINDS}, got {kind!r}")
    if rate == 0.0:
        return None
    spec = {
        "drop": lambda: DroppedSpikes(rate),
        "dup": lambda: DuplicatedSpikes(rate),
        "dead": lambda: RandomDeadCores(rate),
        "stuck": lambda: RandomStuckNeurons(rate, mode="silent"),
        "flip": lambda: WeightBitFlips(rate, bit=1),
        "drift": lambda: ThresholdDrift(rate * DRIFT_SCALE),
    }[kind]()
    return FaultPlan(faults=(spec,), seed=seed)


def pooled_window_features(
    extractor,
    windows: np.ndarray,
    pool: Tuple[int, int] = (4, 2),
    bin_merge: int = 3,
) -> np.ndarray:
    """Pooled raw cell-count features for window images.

    Orientation bins are summed in groups of ``bin_merge`` first, then
    cells are average-pooled spatially. The defaults turn a
    ``(16, 8, 18)`` cell grid into ``4 * 4 * 6 = 96`` features — six
    orientation bins and a 4 x 4 spatial layout, which keeps even the
    noisy parrot approximation separable while fitting the 128-input
    deployment budget of :func:`~repro.eedn.mapping.deploy_dense_network`.

    Args:
        extractor: any descriptor exposing ``cell_grid(image)``.
        windows: ``(n, 128, 64)`` window stack.
        pool: cells averaged per pooled feature, ``(y, x)``.
        bin_merge: adjacent orientation bins summed per merged bin
            (must divide the extractor's bin count).

    Returns:
        ``(n, pooled_cells * merged_bins)`` matrix of pooled counts —
        unscaled; see :func:`calibrated_scale` for mapping into the
        [0, 1] firing-probability range content coding expects.
    """
    rows: List[np.ndarray] = []
    py, px = pool
    for window in windows:
        grid = np.asarray(extractor.cell_grid(window), dtype=np.float64)
        gy, gx, bins = grid.shape
        if bin_merge > 1:
            grid = grid.reshape(gy, gx, bins // bin_merge, bin_merge).sum(axis=-1)
        ny, nx = gy // py, gx // px
        pooled = (
            grid[: ny * py, : nx * px]
            .reshape(ny, py, nx, px, grid.shape[2])
            .mean(axis=(1, 3))
        )
        rows.append(pooled.reshape(-1))
    return np.stack(rows)


def calibrated_scale(train_counts: np.ndarray, target: float = FEATURE_TARGET) -> float:
    """Per-extractor scale mapping pooled counts into [0, 1] features.

    Args:
        train_counts: pooled counts of the *training* windows only (the
            calibration must not see evaluation data).
        target: firing probability assigned to the counts' 95th
            percentile.

    Returns:
        A positive multiplier; features above the calibration point
        saturate at the coder's [0, 1] clip.
    """
    reference = float(np.quantile(train_counts, 0.95))
    if reference <= 0.0:
        return 1.0
    return target / reference


@dataclass
class FaultSweepResult:
    """One fault-kind sweep across rates and approaches.

    Attributes:
        fault_kind: the swept fault kind (see :data:`FAULT_KINDS`).
        rates: swept fault rates, ascending.
        fault_seeds: fault-plan seeds averaged per rate.
        ticks: spike window of the deployed scorers.
        hidden: hidden width of the deployed classifiers.
        miss_rates: approach -> per-rate positive-window miss rate.
        false_positive_rates: approach -> per-rate negative FP rate.
        mean_margins: approach -> per-rate mean positive margin.
    """

    fault_kind: str
    rates: List[float]
    fault_seeds: List[int]
    ticks: int
    hidden: int
    miss_rates: Dict[str, List[float]] = field(default_factory=dict)
    false_positive_rates: Dict[str, List[float]] = field(default_factory=dict)
    mean_margins: Dict[str, List[float]] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        """JSON-ready payload (``BENCH_faults.json``)."""
        return {
            "fault_kind": self.fault_kind,
            "rates": self.rates,
            "fault_seeds": self.fault_seeds,
            "ticks": self.ticks,
            "hidden": self.hidden,
            "approaches": {
                name: {
                    "miss_rate": self.miss_rates[name],
                    "false_positive_rate": self.false_positive_rates[name],
                    "mean_margin": self.mean_margins[name],
                }
                for name in self.miss_rates
            },
        }

    def check_monotone(
        self,
        approaches: Sequence[str] = ("NApprox", "Parrot"),
        tolerance: float = 0.06,
    ) -> List[str]:
        """Verify the degradation curves are monotone non-decreasing.

        Args:
            approaches: curve names that must degrade monotonically
                (the software SVM baseline is exempt — faults cannot
                reach it).
            tolerance: permitted per-step dip (sampling noise).

        Returns:
            Human-readable violation strings (empty = all curves pass).
        """
        violations: List[str] = []
        for name in approaches:
            curve = self.miss_rates.get(name)
            if curve is None:
                violations.append(f"{name}: no curve recorded")
                continue
            for i in range(1, len(curve)):
                if curve[i] < curve[i - 1] - tolerance:
                    violations.append(
                        f"{name}: miss rate fell {curve[i - 1]:.3f} -> "
                        f"{curve[i]:.3f} between rates {self.rates[i - 1]} "
                        f"and {self.rates[i]}"
                    )
            if len(curve) >= 2 and curve[-1] < curve[0]:
                violations.append(
                    f"{name}: no net degradation across the sweep "
                    f"({curve[0]:.3f} -> {curve[-1]:.3f})"
                )
        return violations


def _train_window_classifier(
    features: np.ndarray,
    labels: np.ndarray,
    hidden: int,
    epochs: int,
    rng: np.random.Generator,
) -> EednNetwork:
    """The small deployable Eedn window classifier (72 -> hidden -> 2)."""
    network = EednNetwork(
        [
            TrinaryDense(features.shape[1], hidden, rng=rng),
            ThresholdActivation(0.0, ste_window=2.0),
            TrinaryDense(hidden, 2, rng=rng),
        ]
    )
    train_network(
        network,
        features,
        labels,
        TrainConfig(
            epochs=epochs, learning_rate=0.01, lr_decay=0.97, logit_scale=8.0
        ),
        rng=rng,
    )
    return network


#: Operating point for the miss-rate metric: the decision threshold is
#: set so at most this fraction of *evaluation negatives* score above
#: it, then the miss rate is measured on positives at that threshold
#: (the paper's miss-rate-versus-FPPI methodology, collapsed to one
#: point). This keeps the metric meaningful when faults destroy the
#: signal: a scorer whose output has collapsed to a constant cannot
#: separate any positive from the negatives, so its miss rate is 1.0
#: regardless of where the constant landed.
TARGET_FPR = 0.1


def _window_metrics(
    scorer, pos: np.ndarray, neg: np.ndarray, target_fpr: float = TARGET_FPR
) -> Tuple[float, float, float]:
    """``(miss at TARGET_FPR, raw FP rate at margin 0, mean positive margin)``."""
    pos_margin = np.asarray(scorer.decision_function(pos), dtype=np.float64)
    neg_margin = np.asarray(scorer.decision_function(neg), dtype=np.float64)
    threshold = float(np.quantile(neg_margin, 1.0 - target_fpr))
    return (
        float((pos_margin <= threshold).mean()),
        float((neg_margin > 0.0).mean()),
        float(pos_margin.mean()),
    )


def run(
    rates: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0),
    fault_kind: str = "drop",
    approaches: Sequence[str] = ("NApprox", "Parrot", "SVM"),
    hidden: int = 48,
    ticks: int = 12,
    fault_seeds: Sequence[int] = (0, 1, 2, 3, 4),
    n_train: int = 70,
    n_eval: int = 40,
    epochs: int = 25,
    parrot_spikes: int = 64,
    parrot_params: Optional[Dict] = None,
    rng: RngLike = 0,
) -> FaultSweepResult:
    """Run the fault-rate sweep.

    Args:
        rates: fault rates to sweep (keep 0.0 first for the clean
            anchor; the monotonicity check compares adjacent points).
        fault_kind: which fault to sweep (:data:`FAULT_KINDS`).
        approaches: subset of ``("NApprox", "Parrot", "SVM")``.
        hidden: classifier hidden width (2 * hidden axons must fit one
            core, so <= 128).
        ticks: stochastic-coding window of the deployed scorer.
        fault_seeds: plan seeds averaged at each nonzero rate.
        n_train: training windows per class.
        n_eval: held-out evaluation windows per class.
        epochs: classifier training epochs.
        parrot_spikes: spike precision of the parrot extractor.
        parrot_params: overrides for
            :func:`~repro.parrot.trainer.train_parrot` (the default is
            a reduced-size parrot so the sweep stays CI-sized).
        rng: master seed for data, training, and input coding.

    Returns:
        A :class:`FaultSweepResult` covering every requested approach.
    """
    rates = [float(r) for r in rates]
    master = resolve_rng(rng)
    data_seed = int(master.integers(0, 2**31 - 1))
    dataset = SyntheticPersonDataset(rng=data_seed)
    pos_windows = dataset.positive_windows(n_train + n_eval)
    neg_windows = dataset.negative_windows(n_train + n_eval)
    labels = np.concatenate(
        [np.ones(n_train, dtype=np.int64), np.zeros(n_train, dtype=np.int64)]
    )

    result = FaultSweepResult(
        fault_kind=fault_kind,
        rates=rates,
        fault_seeds=[int(s) for s in fault_seeds],
        ticks=ticks,
        hidden=hidden,
    )

    extractors = {}
    if "NApprox" in approaches or "SVM" in approaches:
        from repro.napprox import NApproxConfig, NApproxDescriptor

        extractors["NApprox"] = NApproxDescriptor(
            NApproxConfig(quantized=True, window=64, normalization="none")
        )
    if "Parrot" in approaches:
        from repro.parrot import ParrotExtractor, ParrotFeatureConfig, train_parrot

        params = {"hidden": 256, "n_samples": 6000, "epochs": 20, "rng": rng}
        params.update(parrot_params or {})
        parrot_net, _, _ = train_parrot(**params)
        extractors["Parrot"] = ParrotExtractor(
            parrot_net,
            ParrotFeatureConfig(normalization="none", spikes=parrot_spikes),
            rng=rng,
        )

    features = {}
    for name, extractor in extractors.items():
        pos_counts = pooled_window_features(extractor, pos_windows)
        neg_counts = pooled_window_features(extractor, neg_windows)
        scale = calibrated_scale(
            np.vstack([pos_counts[:n_train], neg_counts[:n_train]])
        )
        features[name] = (
            np.clip(pos_counts * scale, 0.0, 1.0),
            np.clip(neg_counts * scale, 0.0, 1.0),
        )

    for name in approaches:
        if name == "SVM":
            continue
        pos_feats, neg_feats = features[name]
        train_x = np.vstack([pos_feats[:n_train], neg_feats[:n_train]])
        network = _train_window_classifier(
            train_x, labels, hidden, epochs, resolve_rng(rng)
        )
        eval_pos = pos_feats[n_train:]
        eval_neg = neg_feats[n_train:]
        miss_curve, fp_curve, margin_curve = [], [], []
        for rate in rates:
            seeds = [0] if rate == 0.0 else list(fault_seeds)
            metrics = []
            for seed in seeds:
                scorer = TrueNorthBinaryScorer(
                    network,
                    ticks=ticks,
                    rng=rng,
                    engine="batch",
                    coding="content",
                    faults=build_fault_plan(fault_kind, rate, seed=seed),
                )
                metrics.append(_window_metrics(scorer, eval_pos, eval_neg))
            miss_curve.append(float(np.mean([m[0] for m in metrics])))
            fp_curve.append(float(np.mean([m[1] for m in metrics])))
            margin_curve.append(float(np.mean([m[2] for m in metrics])))
        result.miss_rates[name] = miss_curve
        result.false_positive_rates[name] = fp_curve
        result.mean_margins[name] = margin_curve

    if "SVM" in approaches:
        pos_feats, neg_feats = features["NApprox"]
        svm = LinearSVM(C=0.1, epochs=20, rng=int(master.integers(0, 2**31 - 1)))
        svm.fit(
            np.vstack([pos_feats[:n_train], neg_feats[:n_train]]),
            np.where(labels == 1, 1.0, -1.0),
        )
        miss, fp, margin = _window_metrics(
            svm, pos_feats[n_train:], neg_feats[n_train:]
        )
        # Software evaluation: chip faults cannot reach it — flat curve.
        result.miss_rates["SVM"] = [miss] * len(rates)
        result.false_positive_rates["SVM"] = [fp] * len(rates)
        result.mean_margins["SVM"] = [margin] * len(rates)

    return result


def write_json(result: FaultSweepResult, path: str) -> None:
    """Write the sweep payload to ``path`` (``BENCH_faults.json``)."""
    with open(path, "w") as handle:
        json.dump(result.as_dict(), handle, indent=2)
        handle.write("\n")


def format_report(result: FaultSweepResult) -> str:
    """Render the sweep as a fixed-width text table."""
    lines = [
        f"Fault-rate sweep: kind={result.fault_kind}, "
        f"ticks={result.ticks}, hidden={result.hidden}, "
        f"seeds={result.fault_seeds}",
        "",
        "rate      " + "".join(f"{name:>10s}" for name in result.miss_rates),
    ]
    for i, rate in enumerate(result.rates):
        row = f"{rate:<10.3f}" + "".join(
            f"{result.miss_rates[name][i]:>10.3f}" for name in result.miss_rates
        )
        lines.append(row)
    lines.append("")
    lines.append(
        f"(window-level miss rate at the {TARGET_FPR:.0%} false-positive"
    )
    lines.append(" operating point; SVM runs in software, so its flat curve")
    lines.append(" is the fault-free reference line)")
    return "\n".join(lines)


__all__ = [
    "DRIFT_SCALE",
    "FAULT_KINDS",
    "FEATURE_TARGET",
    "TARGET_FPR",
    "FaultSweepResult",
    "build_fault_plan",
    "calibrated_scale",
    "format_report",
    "pooled_window_features",
    "run",
    "write_json",
]
