"""Experiment harnesses regenerating every table and figure of the paper.

Each module exposes a ``run(...)`` returning structured results plus a
``format_report(...)`` that renders the paper-vs-measured comparison; the
``benchmarks/`` directory wraps these in pytest-benchmark entry points
and EXPERIMENTS.md records representative outputs.

- :mod:`repro.experiments.setup` — shared data splits and detector
  training;
- :mod:`repro.experiments.fig4` — SVM-classifier miss-rate/FPPI curves
  (FPGA vs NApprox(fp) vs NApprox);
- :mod:`repro.experiments.fig5` — Eedn-classifier curves (NApprox vs
  Parrot, plus the Absorbed failure);
- :mod:`repro.experiments.fig6` — Parrot input-precision sweep;
- :mod:`repro.experiments.table2` — the deployment power model;
- :mod:`repro.experiments.absorbed_exp` — the Absorbed convergence study.
"""

from repro.experiments.setup import ExperimentData, make_experiment_data

__all__ = ["ExperimentData", "make_experiment_data"]
