"""Figure 5: Eedn-classifier curves for NApprox and Parrot features.

The paper's findings (Section 5.1):

- NApprox and Parrot "have very similar miss rate versus false positive
  tradeoffs, implying that they produce features of similar quality";
- "the Parrot HoG uses substantially fewer resources than NApprox";
- the same-budget monolithic (Absorbed) network "always makes blind
  decisions".

Block normalisation is elided (costly on TrueNorth) — the classifiers
see raw cell histograms.
"""

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis import format_curve_table, format_sig, format_table
from repro.detection import (
    DetectionCurve,
    EednBinaryScorer,
    SlidingWindowDetector,
)
from repro.eedn.mapping import core_count
from repro.experiments.setup import (
    ExperimentData,
    detection_curve,
    make_experiment_data,
    train_eedn_classifier,
    CELL_COUNT_SCALE,
)
from repro.napprox import NApproxConfig, NApproxDescriptor
from repro.parrot import ParrotExtractor, ParrotFeatureConfig, train_parrot
from repro.utils.rng import RngLike


@dataclass
class Fig5Result:
    """Curves and resource usage for the Figure 5 comparison.

    Attributes:
        curves: approach name -> detection curve.
        extractor_cores_per_window: approach -> extraction cores for one
            64x128 window (0 for NApprox's per-cell modules counted
            separately; see ``napprox_module_cores``).
        classifier_cores: estimated cores of the shared Eedn classifier.
        napprox_module_cores: cores of one NApprox cell module.
        parrot_spikes: the parrot input representation used.
    """

    curves: Dict[str, DetectionCurve]
    extractor_cores_per_window: Dict[str, int]
    classifier_cores: int
    napprox_module_cores: int
    parrot_spikes: int


def run(
    data: Optional[ExperimentData] = None,
    parrot_spikes: int = 32,
    classifier_hidden: int = 512,
    rng: RngLike = 0,
) -> Fig5Result:
    """Train the shared-architecture Eedn classifiers and evaluate.

    The same classifier architecture ("We use the same Eedn network for
    the three cases") is trained once per feature extractor.

    Args:
        data: experiment split.
        parrot_spikes: stochastic-coding window for parrot extraction
            (32 in Figure 5).
        classifier_hidden: classifier hidden width.
        rng: randomness.

    Returns:
        A :class:`Fig5Result`.
    """
    if data is None:
        data = make_experiment_data()

    napprox = NApproxDescriptor(
        NApproxConfig(quantized=True, window=64, normalization="none")
    )
    parrot_net, _, _ = train_parrot(rng=rng)
    parrot = ParrotExtractor(
        parrot_net,
        ParrotFeatureConfig(normalization="none", spikes=parrot_spikes),
        rng=rng,
    )

    curves: Dict[str, DetectionCurve] = {}
    cores: Dict[str, int] = {}
    classifier_cores = 0
    for name, extractor in (("NApprox", napprox), ("Parrot", parrot)):
        network, _ = train_eedn_classifier(
            extractor, data, hidden=classifier_hidden, rng=rng
        )
        feature_len = network.layers[0].n_in
        classifier_cores, _ = core_count(network, (feature_len,))
        scorer = EednBinaryScorer(network)
        detector = SlidingWindowDetector(
            extractor,
            scorer,
            feature_mode="cells",
            cell_scale=CELL_COUNT_SCALE,
            score_threshold=0.0,
        )
        curves[name] = detection_curve(detector, data)
        if isinstance(extractor, ParrotExtractor):
            cores[name] = extractor.cores_per_window()
        else:
            cores[name] = 0  # filled from the corelet module count below

    from repro.napprox.corelet_impl import NApproxCellCorelet
    from repro.truenorth.system import NeurosynapticSystem

    footprint = NApproxCellCorelet().build(NeurosynapticSystem("probe"))
    cells_per_window = (128 // 8) * (64 // 8)
    cores["NApprox"] = footprint.core_count * cells_per_window

    return Fig5Result(
        curves=curves,
        extractor_cores_per_window=cores,
        classifier_cores=classifier_cores,
        napprox_module_cores=footprint.core_count,
        parrot_spikes=parrot_spikes,
    )


def format_report(result: Fig5Result) -> str:
    """Render the Figure 5 comparison as text."""
    lines = [
        "Figure 5 reproduction: pedestrian detection with Eedn classifiers",
        f"(no block normalisation; Parrot at {result.parrot_spikes}-spike "
        "stochastic coding)",
        "",
        format_curve_table(
            {
                name: (curve.fppi, curve.miss_rate)
                for name, curve in result.curves.items()
            }
        ),
        "",
        format_table(
            ["approach", "log-average miss rate", "extractor cores / window"],
            [
                [
                    name,
                    format_sig(curve.log_average_miss_rate()),
                    str(result.extractor_cores_per_window[name]),
                ]
                for name, curve in result.curves.items()
            ],
        ),
        "",
        f"Shared Eedn classifier: ~{result.classifier_cores} cores "
        "(paper: 2864 for its 18-layer full-scale network).",
        "Paper's claim: similar curves despite divergent extractor",
        "resources (paper: 26 cores/cell NApprox vs 8 cores/cell Parrot;",
        f"here: {result.napprox_module_cores} cores/cell NApprox corelet).",
    ]
    return "\n".join(lines)


__all__ = ["Fig5Result", "format_report", "run"]
