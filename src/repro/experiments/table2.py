"""Table 2: estimated power of the feature-extraction approaches."""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis import format_sig, format_table
from repro.power import (
    PowerEstimate,
    generate_table2,
    power_ratio_parrot_vs_napprox,
)

PAPER_VALUES_WATTS: Dict[str, float] = {
    "FPGA (logic only)": 1.12,
    "FPGA (system)": 8.6,
    "NApprox 64-spike": 40.0,
    "Parrot 32-spike": 6.15,
    "Parrot 4-spike": 0.768,
    "Parrot 1-spike": 0.192,
}
"""The power numbers Table 2 of the paper reports."""


@dataclass
class Table2Result:
    """Model rows plus the paper's headline ratios.

    Attributes:
        rows: computed estimates in the paper's row order.
        ratio_32: NApprox/Parrot power ratio at 32 spikes (~6.5x).
        ratio_1: NApprox/Parrot power ratio at 1 spike (~208x).
        measured_napprox_cores: this repo's corelet module size, when
            measured (None otherwise).
    """

    rows: List[PowerEstimate]
    ratio_32: float
    ratio_1: float
    measured_napprox_cores: Optional[int] = None


def run(measure_corelet: bool = True) -> Table2Result:
    """Compute the Table 2 model (and optionally this repo's corelet size).

    Args:
        measure_corelet: also build the NApprox cell corelet and record
            its actual core count.

    Returns:
        A :class:`Table2Result`.
    """
    measured = None
    if measure_corelet:
        from repro.napprox.corelet_impl import NApproxCellCorelet
        from repro.truenorth.system import NeurosynapticSystem

        measured = NApproxCellCorelet().build(NeurosynapticSystem("probe")).core_count
    return Table2Result(
        rows=generate_table2(),
        ratio_32=power_ratio_parrot_vs_napprox(32),
        ratio_1=power_ratio_parrot_vs_napprox(1),
        measured_napprox_cores=measured,
    )


def format_report(result: Table2Result) -> str:
    """Render the Table 2 comparison, paper vs model."""
    paper = list(PAPER_VALUES_WATTS.values())
    rows = []
    for estimate, paper_watts in zip(result.rows, paper):
        rows.append(
            [
                estimate.approach,
                estimate.signal_resolution,
                str(estimate.total_cores) if estimate.total_cores else "-",
                str(estimate.chips) if estimate.chips else "-",
                format_sig(estimate.power_watts),
                format_sig(paper_watts),
            ]
        )
    lines = [
        "Table 2 reproduction: estimated power for HoG feature extraction",
        "",
        format_table(
            ["approach", "signal", "cores", "chips", "model W", "paper W"],
            rows,
        ),
        "",
        f"Parrot vs NApprox power ratio: {format_sig(result.ratio_32)}x at "
        f"32 spikes, {format_sig(result.ratio_1)}x at 1 spike "
        "(paper: 6.5x-208x).",
    ]
    if result.measured_napprox_cores is not None:
        lines.append(
            f"This repo's NApprox corelet uses {result.measured_napprox_cores} "
            "cores per cell module (paper: 26)."
        )
    return "\n".join(lines)


__all__ = ["PAPER_VALUES_WATTS", "Table2Result", "format_report", "run"]
