"""Section 5.1: the Absorbed approach's convergence failure."""

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.absorbed import AbsorbedOutcome, training_size_sweep
from repro.analysis import format_sig, format_table
from repro.datasets import SyntheticPersonDataset
from repro.utils.rng import RngLike, resolve_rng


@dataclass
class AbsorbedStudy:
    """The training-set-size sweep.

    Attributes:
        sizes: training-set sizes swept.
        outcomes: per-size experiment outcomes.
    """

    sizes: List[int]
    outcomes: List[AbsorbedOutcome]


def run(
    sizes: Sequence[int] = (100, 300, 1000),
    n_test: int = 200,
    rng: RngLike = 0,
) -> AbsorbedStudy:
    """Train the monolithic network at several training-set sizes.

    Args:
        sizes: training-set sizes (balanced positives/negatives pooled).
        n_test: held-out windows.
        rng: master randomness.

    Returns:
        An :class:`AbsorbedStudy`.
    """
    generator = resolve_rng(rng)
    pool_size = max(sizes)
    dataset = SyntheticPersonDataset(rng=generator)
    half_pool = pool_size // 2 + 1
    half_test = n_test // 2

    positives = dataset.positive_windows(half_pool + half_test)
    negatives = dataset.negative_windows(half_pool + half_test)
    windows = np.concatenate([positives[:half_pool], negatives[:half_pool]])
    labels = np.concatenate(
        [np.ones(half_pool, dtype=np.int64), np.zeros(half_pool, dtype=np.int64)]
    )
    test_windows = np.concatenate([positives[half_pool:], negatives[half_pool:]])
    test_labels = np.concatenate(
        [
            np.ones(len(positives) - half_pool, dtype=np.int64),
            np.zeros(len(negatives) - half_pool, dtype=np.int64),
        ]
    )
    outcomes = training_size_sweep(
        windows, labels, test_windows, test_labels, sizes=tuple(sizes), rng=generator
    )
    return AbsorbedStudy(sizes=list(sizes), outcomes=outcomes)


def format_report(study: AbsorbedStudy) -> str:
    """Render the convergence study as text."""
    rows = [
        [
            str(size),
            format_sig(outcome.test_accuracy),
            format_sig(outcome.test_majority_fraction),
            "BLIND" if outcome.blind else ("useful" if outcome.useful else "weak"),
            str(outcome.cores),
        ]
        for size, outcome in zip(study.sizes, study.outcomes)
    ]
    return "\n".join(
        [
            "Section 5.1 reproduction: Absorbed (monolithic) convergence",
            "",
            format_table(
                [
                    "train windows",
                    "test accuracy",
                    "majority fraction",
                    "verdict",
                    "est. cores",
                ],
                rows,
            ),
            "",
            "Paper's claim: with the training set that sufficed for the",
            "HoG-feature classifiers, the monolithic raw-pixel network",
            "makes blind (all-one-class) decisions; more data is needed",
            "for a network sized for 64x128-pixel inputs.",
        ]
    )


__all__ = ["AbsorbedStudy", "format_report", "run"]
