"""Figure 4: SVM-classifier miss-rate/FPPI curves for three extractors.

The paper's finding: "the quality of TrueNorth NApprox HoG, high
precision software NApprox HoG, and the original FPGA implementation
provide comparable precision-recall characteristics when a
resource-equivalent SVM is used as the classifier." All three use 2x2-
cell L2 block normalisation.
"""

from dataclasses import dataclass
from typing import Dict


from repro.analysis import format_curve_table, format_sig, format_table
from repro.detection import DetectionCurve
from repro.experiments.setup import (
    ExperimentData,
    detection_curve,
    make_experiment_data,
    train_svm_detector,
)
from repro.hog import FpgaHogConfig, FpgaHogDescriptor
from repro.napprox import NApproxConfig, NApproxDescriptor
from repro.utils.rng import RngLike


@dataclass
class Fig4Result:
    """Curves for the three Figure 4 extractors.

    Attributes:
        curves: extractor name -> detection curve.
        mined: extractor name -> hard negatives mined per round.
    """

    curves: Dict[str, DetectionCurve]
    mined: Dict[str, list]

    def log_average_miss_rates(self) -> Dict[str, float]:
        """LAMR per extractor (lower is better)."""
        return {
            name: curve.log_average_miss_rate()
            for name, curve in self.curves.items()
        }


def run(
    data: ExperimentData = None,
    mining_rounds: int = 1,
    rng: RngLike = 0,
) -> Fig4Result:
    """Train and evaluate the three Figure 4 pipelines.

    Args:
        data: experiment split (a default small split is generated when
            omitted).
        mining_rounds: hard-negative bootstrapping rounds per model.
        rng: solver randomness.

    Returns:
        A :class:`Fig4Result`.
    """
    if data is None:
        data = make_experiment_data()
    extractors = {
        "FPGA-HoG": FpgaHogDescriptor(FpgaHogConfig(normalization="l2")),
        "NApprox(fp)": NApproxDescriptor(
            NApproxConfig(quantized=False, normalization="l2")
        ),
        "NApprox": NApproxDescriptor(
            NApproxConfig(quantized=True, window=64, normalization="l2")
        ),
    }
    curves: Dict[str, DetectionCurve] = {}
    mined: Dict[str, list] = {}
    for name, extractor in extractors.items():
        detector, miner = train_svm_detector(
            extractor, data, mining_rounds=mining_rounds, rng=rng
        )
        curves[name] = detection_curve(detector, data)
        mined[name] = list(miner.report.mined_per_round)
    return Fig4Result(curves=curves, mined=mined)


def format_report(result: Fig4Result) -> str:
    """Render the Figure 4 comparison as text."""
    lines = [
        "Figure 4 reproduction: pedestrian detection with SVM classifiers",
        "(all extractors use 2x2-cell L2 block normalisation)",
        "",
        format_curve_table(
            {
                name: (curve.fppi, curve.miss_rate)
                for name, curve in result.curves.items()
            }
        ),
        "",
        format_table(
            ["extractor", "log-average miss rate", "hard negatives mined"],
            [
                [
                    name,
                    format_sig(curve.log_average_miss_rate()),
                    str(result.mined[name]),
                ]
                for name, curve in result.curves.items()
            ],
        ),
        "",
        "Paper's claim: the three curves are comparable (no extractor",
        "dominates); check that the LAMR spread above is small.",
    ]
    return "\n".join(lines)


__all__ = ["Fig4Result", "format_report", "run"]
