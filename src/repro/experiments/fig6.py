"""Figure 6: Parrot input precision versus accuracy and miss rate.

The paper sweeps the stochastic-coding representation from 32 spikes
down to 1 and plots classifier accuracy and miss rate on the validation
set of the parrot training data. Lower precision trades accuracy for
throughput (and therefore power — Table 2).
"""

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.analysis import format_sig, format_table
from repro.napprox.software import N_DIRECTIONS
from repro.parrot import (
    ParrotExtractor,
    ParrotFeatureConfig,
    generate_parrot_samples,
    parrot_fidelity,
    train_parrot,
)
from repro.power import module_throughput_cells_per_second
from repro.utils.rng import RngLike, resolve_rng


@dataclass
class PrecisionPoint:
    """One sweep point.

    Attributes:
        spikes: window length of the stochastic representation.
        classifier_accuracy: dominant-orientation accuracy on held-out
            validation cells (within one cyclic bin, the paper's
            "classifier accuracy" proxy for the parrot-as-classifier).
        histogram_correlation: parrot-vs-reference histogram correlation.
        miss_rate_proxy: 1 - dominant-bin agreement on gradient-bearing
            cells (rises as precision drops, like the paper's miss rate).
        throughput_cells_per_second: per-module throughput at this
            precision.
    """

    spikes: int
    classifier_accuracy: float
    histogram_correlation: float
    miss_rate_proxy: float
    throughput_cells_per_second: int


@dataclass
class Fig6Result:
    """The full precision sweep.

    Attributes:
        points: one entry per precision, descending spikes.
        analog_reference: the same metrics evaluated without spike coding.
    """

    points: List[PrecisionPoint]
    analog_reference: PrecisionPoint


def _evaluate(
    extractor: ParrotExtractor,
    validation_inputs: np.ndarray,
    validation_labels: np.ndarray,
    validation_mass: np.ndarray,
    fidelity_rng: RngLike,
    spikes_label: int,
) -> PrecisionPoint:
    histograms = extractor.cell_histograms_batch(validation_inputs)
    edgy = validation_mass > 0.05
    predictions = histograms.argmax(axis=1)
    distance = np.minimum(
        (predictions - validation_labels) % N_DIRECTIONS,
        (validation_labels - predictions) % N_DIRECTIONS,
    )
    accuracy = float((distance[edgy] <= 1).mean()) if edgy.any() else 0.0
    fidelity = parrot_fidelity(extractor, n_cells=200, rng=fidelity_rng)
    return PrecisionPoint(
        spikes=spikes_label,
        classifier_accuracy=accuracy,
        histogram_correlation=fidelity.correlation,
        miss_rate_proxy=1.0 - fidelity.dominant_bin_agreement,
        throughput_cells_per_second=module_throughput_cells_per_second(
            max(spikes_label, 1)
        ),
    )


def run(
    spike_windows: Sequence[int] = (32, 16, 8, 4, 2, 1),
    n_validation: int = 600,
    rng: RngLike = 0,
) -> Fig6Result:
    """Train one parrot network and sweep its input representation.

    Args:
        spike_windows: precisions to evaluate (descending recommended).
        n_validation: held-out validation cells.
        rng: master randomness.

    Returns:
        A :class:`Fig6Result`.
    """
    generator = resolve_rng(rng)
    network, _, _ = train_parrot(rng=generator)
    validation = generate_parrot_samples(n_validation, rng=generator)
    mass = validation.targets.sum(axis=1)

    base = ParrotExtractor(network, ParrotFeatureConfig(), rng=generator)
    analog = _evaluate(
        base, validation.inputs, validation.angle_labels, mass, 99, spikes_label=1000
    )
    points = [
        _evaluate(
            base.with_spikes(spikes),
            validation.inputs,
            validation.angle_labels,
            mass,
            99,
            spikes_label=spikes,
        )
        for spikes in spike_windows
    ]
    return Fig6Result(points=points, analog_reference=analog)


def format_report(result: Fig6Result) -> str:
    """Render the Figure 6 sweep as text."""
    rows = [
        [
            "analog",
            format_sig(result.analog_reference.classifier_accuracy),
            format_sig(result.analog_reference.histogram_correlation),
            format_sig(result.analog_reference.miss_rate_proxy),
            "-",
        ]
    ]
    rows.extend(
        [
            f"{point.spikes}-spike",
            format_sig(point.classifier_accuracy),
            format_sig(point.histogram_correlation),
            format_sig(point.miss_rate_proxy),
            str(point.throughput_cells_per_second),
        ]
        for point in result.points
    )
    return "\n".join(
        [
            "Figure 6 reproduction: parrot precision vs quality",
            "",
            format_table(
                [
                    "representation",
                    "classifier accuracy",
                    "histogram corr",
                    "miss-rate proxy",
                    "cells/s/module",
                ],
                rows,
            ),
            "",
            "Paper's claim: quality degrades gracefully from 32-spike to",
            "1-spike while throughput rises 31 -> 1000 cells/s/module.",
        ]
    )


__all__ = ["Fig6Result", "PrecisionPoint", "format_report", "run"]
