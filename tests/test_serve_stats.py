"""Tests for the :class:`ServiceStats` facade over the metrics registry."""

import math
import threading

import pytest

from repro.obs import MetricsRegistry
from repro.serve.stats import ServiceStats


class TestFacade:
    def test_counters_roundtrip(self):
        stats = ServiceStats()
        stats.count("submitted")
        stats.count("submitted", 2)
        assert stats.counter("submitted") == 3
        assert stats.counter("never_touched") == 0

    def test_backed_by_registry_metrics(self):
        registry = MetricsRegistry()
        stats = ServiceStats(registry=registry)
        stats.count("completed", 4)
        stats.record_batch(8)
        stats.record_latency(0.01)
        assert registry.get("serve_completed_total").value == 4
        assert registry.get("serve_batch_size").count == 1
        assert registry.get("serve_latency_seconds").count == 1

    def test_private_registries_are_isolated(self):
        a, b = ServiceStats(), ServiceStats()
        a.count("submitted")
        assert b.counter("submitted") == 0

    def test_custom_prefix(self):
        registry = MetricsRegistry()
        stats = ServiceStats(registry=registry, prefix="edge")
        stats.count("submitted")
        assert registry.get("edge_submitted_total").value == 1
        assert stats.counter("submitted") == 1

    def test_queue_gauge_bound(self):
        stats = ServiceStats()
        assert stats.queue_depth == 0
        stats.bind_queue(lambda: 5)
        assert stats.queue_depth == 5

    def test_cache_hit_rate(self):
        stats = ServiceStats()
        assert stats.cache_hit_rate == 0.0
        stats.count("cache_hits", 3)
        stats.count("cache_misses", 1)
        assert stats.cache_hit_rate == 0.75

    def test_latency_percentile(self):
        stats = ServiceStats()
        for ms in range(1, 101):
            stats.record_latency(ms / 1e3)
        assert stats.latency_percentile(50) == pytest.approx(0.0505)

    def test_latency_window_validated(self):
        with pytest.raises(ValueError):
            ServiceStats(latency_window=0)

    def test_snapshot_keeps_legacy_shape(self):
        stats = ServiceStats()
        stats.count("submitted", 2)
        stats.count("cache_hits")
        stats.count("cache_misses")
        stats.record_batch(2)
        stats.record_batch(2)
        stats.record_batch(4)
        stats.record_latency(0.002)
        snap = stats.snapshot()
        assert snap["counters"]["submitted"] == 2
        assert snap["batch_size_histogram"] == {"2": 2, "4": 1}
        assert snap["mean_batch_size"] == pytest.approx(8 / 3)
        assert snap["cache_hit_rate"] == 0.5
        assert snap["latency_ms"]["count"] == 1
        assert snap["latency_ms"]["p50"] == pytest.approx(2.0)
        assert snap["queue_depth"] == 0
        assert snap["spans"] == {}


class TestConcurrentWriters:
    def test_snapshot_never_torn_under_concurrent_writes(self):
        """Counters, batches, and latencies written from many threads
        while snapshots are taken must stay internally consistent."""
        stats = ServiceStats()
        n_threads, per_thread = 6, 400
        stop = threading.Event()
        snapshots = []
        errors = []

        def writer(seed):
            for i in range(per_thread):
                stats.count("submitted")
                stats.record_batch((seed + i) % 8 + 1)
                stats.record_latency(0.001 * ((seed + i) % 50 + 1))
                stats.count("completed")

        def reader():
            while not stop.is_set():
                try:
                    snapshots.append(stats.snapshot())
                except Exception as exc:  # torn state shows up here
                    errors.append(exc)
                    return

        reader_thread = threading.Thread(target=reader)
        writers = [
            threading.Thread(target=writer, args=(seed,))
            for seed in range(n_threads)
        ]
        reader_thread.start()
        for t in writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        reader_thread.join()

        assert errors == []
        total = n_threads * per_thread
        assert stats.counter("submitted") == total
        assert stats.counter("completed") == total
        final = stats.snapshot()
        assert sum(final["batch_size_histogram"].values()) == total
        assert final["latency_ms"]["count"] == total
        for snap in snapshots + [final]:
            # Monotonic internal consistency: histogram mass never
            # exceeds the dispatched-batch count, percentiles finite.
            assert snap["counters"].get("submitted", 0) >= snap[
                "counters"
            ].get("completed", 0) - total  # both monotone, bounded
            for key in ("p50", "p99", "max"):
                assert math.isfinite(snap["latency_ms"][key])
            assert math.isfinite(snap["mean_batch_size"])
            assert 0.0 <= snap["cache_hit_rate"] <= 1.0

    def test_concurrent_counts_lose_nothing(self):
        stats = ServiceStats()
        n_threads, per_thread = 8, 2500

        def worker():
            for _ in range(per_thread):
                stats.count("submitted")

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.counter("submitted") == n_threads * per_thread
