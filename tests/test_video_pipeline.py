"""Tests for the streaming frame pipeline: caching, degradation, parity."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.detection.pipeline import TrueNorthBinaryScorer
from repro.eedn.layers import ThresholdActivation, TrinaryDense
from repro.eedn.network import EednNetwork
from repro.obs import MetricsRegistry
from repro.serve import InferenceService, ShardedInferenceService
from repro.video import (
    VideoConfig,
    VideoPipeline,
    VideoPipelineConfig,
    pool_feature_rows,
    synthesize_sequence,
)

#: Toy geometry: 32x16 windows of 8-pixel cells -> (4, 2) window cells,
#: pooled (4, 2) with 18 bins merged by 3 -> 6 features per window.
TOY_CONFIG = dict(
    window_shape=(32, 16), scale_factor=1.2, max_levels=4, pool=(4, 2),
    bin_merge=3,
)


class _MeanExtractor:
    """Cell grid of 8x8 block means, broadcast across 18 bins."""

    def __init__(self):
        self.config = SimpleNamespace(cell_size=8, n_bins=18)

    def cell_grid(self, image):
        cy, cx = image.shape[0] // 8, image.shape[1] // 8
        blocks = image[: cy * 8, : cx * 8].reshape(cy, 8, cx, 8).mean(axis=(1, 3))
        return np.repeat(blocks[:, :, None], 18, axis=2)


def _dot_model(matrix):
    # Row-at-a-time on purpose: batched BLAS matmul rounds differently
    # per batch shape, and the serve contract (like the real integer-
    # exact scorers) is that scores do not depend on batch composition.
    weights = np.linspace(-1.0, 1.0, matrix.shape[1])
    return np.array([float(np.dot(row, weights)) for row in matrix])


def _sequence(motion, n_frames=3):
    return synthesize_sequence(
        VideoConfig(
            shape=(64, 80), n_frames=n_frames, motion=motion, person_height=40
        ),
        rng=2,
    )


def _run(sequence, clock=None, registry=None, service_kwargs=None, **overrides):
    config = VideoPipelineConfig(**{**TOY_CONFIG, **overrides})
    with InferenceService(_dot_model, **(service_kwargs or {})) as service:
        pipeline = VideoPipeline(
            _MeanExtractor(), service, config, registry=registry, clock=clock
        )
        return pipeline.run(sequence)


class _SteppingClock:
    """Advances a fixed amount per call — deterministic deadlines."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestPoolFeatureRows:
    def test_shape(self):
        rows = np.arange(2 * 4 * 2 * 18, dtype=np.float64).reshape(2, -1)
        pooled = pool_feature_rows(rows, (4, 2), 18, pool=(4, 2), bin_merge=3)
        assert pooled.shape == (2, 6)

    def test_constant_input_pools_to_merged_sum(self):
        rows = np.full((1, 4 * 2 * 18), 0.5)
        pooled = pool_feature_rows(rows, (4, 2), 18, pool=(4, 2), bin_merge=3)
        # Bins sum in groups of 3, cells average: 3 * 0.5 everywhere.
        assert np.allclose(pooled, 1.5)

    def test_bad_bin_merge_rejected(self):
        with pytest.raises(ValueError, match="bin_merge"):
            pool_feature_rows(np.zeros((1, 4 * 2 * 18)), (4, 2), 18, bin_merge=5)


class TestCacheLocality:
    def test_static_sequence_hits_cache_after_first_frame(self):
        report = _run(_sequence("static", n_frames=3))
        first, rest = report.frames[0], report.frames[1:]
        assert first.cache_misses > 0
        for frame in rest:
            assert frame.cache_misses == 0
            assert frame.cache_hit_rate == 1.0
        assert len({f.windows_scored for f in report.frames}) == 1

    def test_full_motion_rarely_hits(self):
        # Fresh per-frame noise defeats cross-frame reuse; the only hits
        # left are intra-frame duplicates (saturated windows), which
        # stay far below the static sequence's near-total reuse.
        full = _run(_sequence("full", n_frames=3))
        static = _run(_sequence("static", n_frames=3))
        assert full.cache_hit_rate < 0.2
        assert static.cache_hit_rate - full.cache_hit_rate > 0.4

    def test_report_aggregates(self):
        report = _run(_sequence("static", n_frames=3))
        assert report.windows_scored == sum(
            f.windows_scored for f in report.frames
        )
        assert report.fps > 0
        assert report.degraded_frames == 0


class TestDeadlineDegradation:
    def test_deadline_drops_levels_deterministically(self):
        sequence = _sequence("static", n_frames=2)
        runs = [
            _run(sequence, clock=_SteppingClock(), deadline_ms=1.0)
            for _ in range(2)
        ]
        for report in runs:
            for frame in report.frames:
                assert frame.levels_scored == 1
                assert frame.levels_dropped == frame.levels_total - 1
                assert frame.degraded
        # Bit-identical across repeats: same levels, same detections.
        assert [f.detections_key() for f in runs[0].frames] == [
            f.detections_key() for f in runs[1].frames
        ]

    def test_min_levels_always_scored(self):
        report = _run(
            _sequence("static", n_frames=1),
            clock=_SteppingClock(),
            deadline_ms=1.0,
            min_levels=2,
        )
        assert report.frames[0].levels_scored == 2

    def test_no_deadline_scores_everything(self):
        report = _run(_sequence("static", n_frames=1))
        frame = report.frames[0]
        assert frame.levels_scored == frame.levels_total > 1
        assert frame.levels_dropped == 0
        assert not frame.degraded

    def test_degraded_counter_increments(self):
        registry = MetricsRegistry()
        _run(
            _sequence("static", n_frames=2),
            clock=_SteppingClock(),
            registry=registry,
            deadline_ms=1.0,
        )
        assert registry.counter("video_degraded_frames_total").value == 2
        assert registry.counter("video_frames_total").value == 2
        assert registry.counter("video_levels_dropped_total").value > 0

    def test_degraded_frame_keeps_coarsest_scale(self):
        # The one surviving level is the coarsest: every detection the
        # degraded frame emits carries the largest pyramid scale.
        full = _run(_sequence("static", n_frames=1))
        degraded = _run(
            _sequence("static", n_frames=1),
            clock=_SteppingClock(),
            deadline_ms=1.0,
            score_threshold=-1e9,
        )
        frame = degraded.frames[0]
        assert frame.levels_scored == 1
        max_width = max(d.width for d in frame.detections)
        assert frame.windows_scored < full.frames[0].windows_scored
        assert max_width > TOY_CONFIG["window_shape"][1]


class TestFanOut:
    def test_chunked_fanout_matches_unchunked(self):
        sequence = _sequence("walk", n_frames=2)
        small = _run(
            sequence,
            service_kwargs=dict(queue_capacity=8),
            max_inflight=4,
            score_threshold=-1e9,
        )
        large = _run(sequence, max_inflight=1_000_000, score_threshold=-1e9)
        assert [f.detections_key() for f in small.frames] == [
            f.detections_key() for f in large.frames
        ]
        assert small.windows_scored == large.windows_scored

    def test_config_validation(self):
        with pytest.raises(ValueError, match="min_levels"):
            VideoPipeline(
                _MeanExtractor(), None, VideoPipelineConfig(min_levels=0)
            )
        with pytest.raises(ValueError, match="max_inflight"):
            VideoPipeline(
                _MeanExtractor(), None, VideoPipelineConfig(max_inflight=0)
            )


class TestEngineAndWorkerParity:
    """NMS output must be bit-identical across engines and shard counts."""

    @staticmethod
    def _scorers():
        network = EednNetwork(
            [
                TrinaryDense(6, 4, rng=5),
                ThresholdActivation(0.0, ste_window=2.0),
                TrinaryDense(4, 2, rng=6),
            ]
        )
        return {
            engine: TrueNorthBinaryScorer(
                network, ticks=2, rng=0, engine=engine, coding="content"
            )
            for engine in ("reference", "batch", "event")
        }

    def _keys(self, scorer, sequence, workers=0):
        config = VideoPipelineConfig(**TOY_CONFIG, score_threshold=-1e9)
        if workers:
            service = ShardedInferenceService(scorer, workers=workers)
        else:
            service = InferenceService(scorer)
        with service:
            pipeline = VideoPipeline(_MeanExtractor(), service, config)
            report = pipeline.run(sequence)
        return [frame.detections_key() for frame in report.frames]

    def test_engines_bit_identical(self):
        sequence = _sequence("static", n_frames=2)
        keys = {
            engine: self._keys(scorer, sequence)
            for engine, scorer in self._scorers().items()
        }
        assert keys["reference"] == keys["batch"] == keys["event"]
        assert any(len(k) for k in keys["batch"])

    def test_workers_bit_identical(self):
        sequence = _sequence("static", n_frames=2)
        scorer = self._scorers()["batch"]
        in_process = self._keys(scorer, sequence)
        sharded = self._keys(scorer, sequence, workers=2)
        assert in_process == sharded
