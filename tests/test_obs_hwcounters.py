"""Hardware-counter telemetry: the ledger, the collector, the energy.

Covers the ``repro.obs.hwcounters`` unit surface (DESIGN.md §12) —
:class:`RunActivity` slicing/stacking/rollups, the thread-local
:func:`collect` scopes, :func:`record_run`'s registry publication and
the global disable switch — plus the end-to-end energy-attribution
contract: per-request energy of the Parrot 8x8-cell module agrees
across engines.
"""

import numpy as np
import pytest

from repro.obs import MetricsRegistry, hwcounters
from repro.obs.hwcounters import ActivityCollector, RunActivity
from repro.obs.metrics import set_registry
from repro.parrot import ParrotExtractor, ParrotFeatureConfig
from repro.truenorth.energy import (
    SPIKE_EVENT_JOULES,
    STATIC_CORE_WATTS,
    SYNAPTIC_EVENT_JOULES,
    TICK_SECONDS,
    activity_energy_joules,
)
from repro.truenorth.simulator import Simulator

from tests.engine_systems import CASES_BY_NAME, batched_inputs


def make_activity(batch=3, ticks=4, n_cores=2, engine="batch", seed=0):
    """A synthetic but self-consistent ledger for unit tests."""
    rng = np.random.default_rng(seed)
    core_spikes = rng.integers(0, 50, size=(batch, n_cores))
    core_events = rng.integers(0, 200, size=(batch, n_cores))
    spikes = core_spikes.sum(axis=1)
    per_tick = rng.multinomial(1, [1.0 / ticks] * ticks, size=batch)
    return RunActivity(
        engine=engine,
        ticks=ticks,
        batch=batch,
        n_cores=n_cores,
        core_ids=np.arange(n_cores, dtype=np.int64) * 7,
        spikes=spikes,
        synaptic_events=core_events.sum(axis=1),
        router_hops=rng.integers(0, 90, size=batch),
        dropped_spikes=rng.integers(0, 5, size=batch),
        duplicated_spikes=rng.integers(0, 5, size=batch),
        active_core_ticks=rng.integers(0, ticks * n_cores, size=batch),
        core_spikes=core_spikes,
        core_synaptic_events=core_events,
        spikes_per_tick=per_tick * spikes[:, None],
    )


class TestRunActivity:
    def test_membrane_updates_is_derived(self):
        activity = make_activity(batch=3, ticks=4, n_cores=2)
        np.testing.assert_array_equal(
            activity.membrane_updates, np.full(3, 4 * 2 * 256)
        )

    def test_lane_slices_every_field(self):
        activity = make_activity(batch=3)
        lane = activity.lane(1)
        assert lane.batch == 1
        assert lane.spikes[0] == activity.spikes[1]
        np.testing.assert_array_equal(
            lane.core_spikes[0], activity.core_spikes[1]
        )
        np.testing.assert_array_equal(
            lane.spikes_per_tick[0], activity.spikes_per_tick[1]
        )

    def test_lane_out_of_range(self):
        with pytest.raises(IndexError, match="lane"):
            make_activity(batch=2).lane(2)

    def test_stack_concatenates_lanes(self):
        parts = [make_activity(batch=1, seed=s) for s in range(3)]
        stacked = RunActivity.stack(parts)
        assert stacked.batch == 3
        np.testing.assert_array_equal(
            stacked.spikes, np.concatenate([p.spikes for p in parts])
        )
        np.testing.assert_array_equal(
            stacked.core_spikes,
            np.concatenate([p.core_spikes for p in parts]),
        )

    def test_stack_rejects_mismatched_runs(self):
        with pytest.raises(ValueError, match="identical"):
            RunActivity.stack(
                [make_activity(ticks=4), make_activity(ticks=5)]
            )
        with pytest.raises(ValueError, match="at least one"):
            RunActivity.stack([])

    def test_totals_sums_lanes(self):
        activity = make_activity(batch=3, ticks=4, n_cores=2)
        totals = activity.totals()
        assert totals["spikes"] == int(activity.spikes.sum())
        assert totals["membrane_updates"] == 3 * 4 * 2 * 256
        assert totals["lane_ticks"] == 3 * 4

    def test_lane_energy_matches_model(self):
        activity = make_activity(batch=2, ticks=6, n_cores=3)
        expected = (
            STATIC_CORE_WATTS * 3 * 6 * TICK_SECONDS
            + activity.spikes * SPIKE_EVENT_JOULES
            + activity.synaptic_events * SYNAPTIC_EVENT_JOULES
        )
        np.testing.assert_allclose(activity.lane_energy_joules(), expected)
        np.testing.assert_allclose(
            activity.lane_power_watts(), expected / (6 * TICK_SECONDS)
        )

    def test_top_cores_orders_by_spikes(self):
        activity = make_activity(batch=2, n_cores=2)
        table = activity.top_cores(5)
        assert len(table) == 2
        assert table[0]["spikes"] >= table[1]["spikes"]
        spikes = activity.core_spikes.sum(axis=0)
        hottest = int(np.argmax(spikes))
        assert table[0]["core"] == int(activity.core_ids[hottest])
        with pytest.raises(ValueError, match="n"):
            activity.top_cores(-1)


class TestCollector:
    def test_collect_scopes_and_nesting(self):
        inner_run = make_activity(batch=1)
        outer_run = make_activity(batch=2)
        with hwcounters.collect() as outer:
            hwcounters.record_run(outer_run)
            with hwcounters.collect() as inner:
                hwcounters.record_run(inner_run)
        assert len(outer.runs) == 2 and outer.lanes == 3
        assert len(inner.runs) == 1 and inner.lanes == 1

    def test_lane_values_concatenate_across_runs(self):
        collector = ActivityCollector()
        collector.record(make_activity(batch=2, seed=1))
        collector.record(make_activity(batch=1, seed=2))
        values = collector.lane_values("spikes")
        assert values.shape == (3,)
        assert collector.lane_energy_joules().shape == (3,)
        assert collector.totals()["spikes"] == int(values.sum())

    def test_lane_values_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="lane field"):
            ActivityCollector().lane_values("watts")

    def test_empty_collector(self):
        collector = ActivityCollector()
        assert collector.lanes == 0
        assert collector.lane_values("spikes").size == 0
        assert collector.lane_energy_joules().size == 0
        assert collector.totals()["spikes"] == 0
        assert collector.core_totals() == {}

    def test_core_totals_aggregate_by_core_id(self):
        collector = ActivityCollector()
        run = make_activity(batch=2, n_cores=2)
        collector.record(run)
        collector.record(run)
        totals = collector.core_totals()
        assert set(totals) == set(int(c) for c in run.core_ids)
        first = int(run.core_ids[0])
        assert totals[first]["spikes"] == 2 * int(run.core_spikes[:, 0].sum())


class TestRecordRun:
    def setup_method(self):
        self._saved = MetricsRegistry()
        set_registry(self._saved)

    def teardown_method(self):
        set_registry(MetricsRegistry())
        hwcounters.configure(True)

    def test_registry_counters_bumped_exactly(self):
        activity = make_activity(batch=3)
        hwcounters.record_run(activity)
        totals = activity.totals()
        registry = self._saved
        assert registry.get("hw_spikes_total").value == totals["spikes"]
        assert (
            registry.get("hw_synaptic_events_total").value
            == totals["synaptic_events"]
        )
        assert (
            registry.get("hw_membrane_updates_total").value
            == totals["membrane_updates"]
        )

    def test_disabled_record_run_is_noop(self):
        hwcounters.configure(False)
        with hwcounters.collect() as collector:
            hwcounters.record_run(make_activity())
        assert collector.runs == []
        assert self._saved.get("hw_spikes_total") is None

    @pytest.mark.parametrize("engine", ["batch", "event"])
    def test_disabled_engine_skips_the_ledger(self, engine):
        case = CASES_BY_NAME["pattern_match"]
        inputs = batched_inputs(
            case.build(), case.ticks, 2, case.input_seed, case.density
        )
        hwcounters.configure(False)
        off = Simulator(
            case.build(), rng=case.sim_seed, engine=engine
        ).run_batch(case.ticks, inputs)
        hwcounters.configure(True)
        on = Simulator(
            case.build(), rng=case.sim_seed, engine=engine
        ).run_batch(case.ticks, inputs)
        assert off.activity is None
        assert on.activity is not None
        # The ledger is telemetry: switching it off must not change
        # the simulation itself.
        np.testing.assert_array_equal(off.total_spikes, on.total_spikes)


class TestParrotEnergyParity:
    def test_per_cell_energy_agrees_across_engines(self, tiny_parrot):
        """Parrot 8x8-cell per-request energy within 1% across engines.

        Counter parity makes the ledgers bit-identical, so the derived
        per-lane (= per-cell) energy agrees far inside the 1 % band the
        acceptance criterion asks for.
        """
        network, _, _ = tiny_parrot
        cells = np.random.default_rng(11).random((4, 64))
        energies = {}
        for engine in ("batch", "event", "reference"):
            extractor = ParrotExtractor(
                network,
                ParrotFeatureConfig(spikes=4),
                rng=7,
                backend="truenorth",
                engine=engine,
            )
            with hwcounters.collect() as collector:
                extractor.cell_histograms_batch(cells)
            energies[engine] = collector.lane_energy_joules()
        for engine, joules in energies.items():
            assert joules.shape == (4,), engine
            assert np.all(joules > 0), engine
        np.testing.assert_allclose(
            energies["batch"], energies["reference"], rtol=0.01
        )
        # The compiled engines share one ledger implementation and are
        # counter-parity tested bit for bit, so their derived energies
        # must agree exactly, not just within tolerance.
        np.testing.assert_array_equal(energies["event"], energies["batch"])

    def test_energy_model_activity_roundtrip(self):
        spikes = np.array([10, 20])
        events = np.array([100, 50])
        joules = activity_energy_joules(spikes, events, ticks=8, cores=5)
        static = STATIC_CORE_WATTS * 5 * 8 * TICK_SECONDS
        np.testing.assert_allclose(
            joules,
            static
            + spikes * SPIKE_EVENT_JOULES
            + events * SYNAPTIC_EVENT_JOULES,
        )
        with pytest.raises(ValueError):
            activity_energy_joules(spikes, events, ticks=0, cores=5)
