"""Tests for repro.utils.images."""

import numpy as np
import pytest

from repro.utils.images import (
    crop,
    pad_reflect,
    resize_bilinear,
    rgb_to_grayscale,
    to_float_image,
    to_uint8_image,
)


class TestGrayscale:
    def test_gray_passthrough(self):
        image = np.ones((4, 5))
        assert rgb_to_grayscale(image).shape == (4, 5)

    def test_luma_weights_sum_to_one(self):
        white = np.ones((2, 2, 3))
        assert np.allclose(rgb_to_grayscale(white), 1.0)

    def test_pure_green_weight(self):
        green = np.zeros((1, 1, 3))
        green[..., 1] = 1.0
        assert np.isclose(rgb_to_grayscale(green)[0, 0], 0.587)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            rgb_to_grayscale(np.zeros((2, 2, 4)))


class TestRanges:
    def test_uint8_to_float(self):
        image = np.array([[0, 255]], dtype=np.uint8)
        assert np.allclose(to_float_image(image), [[0.0, 1.0]])

    def test_float_clipped(self):
        assert np.allclose(to_float_image(np.array([[1.5, -0.5]])), [[1.0, 0.0]])

    def test_uint8_round_trip(self):
        values = np.linspace(0, 1, 20).reshape(4, 5)
        recovered = to_float_image(to_uint8_image(values))
        assert np.abs(recovered - values).max() <= 0.5 / 255


class TestPadAndCrop:
    def test_pad_reflect_shape(self):
        assert pad_reflect(np.zeros((3, 4)), 2).shape == (7, 8)

    def test_pad_zero_is_copy(self):
        image = np.arange(6.0).reshape(2, 3)
        padded = pad_reflect(image, 0)
        padded[0, 0] = 99
        assert image[0, 0] == 0

    def test_pad_negative_rejected(self):
        with pytest.raises(ValueError):
            pad_reflect(np.zeros((3, 3)), -1)

    def test_crop_basic(self):
        image = np.arange(20).reshape(4, 5)
        region = crop(image, 1, 2, 2, 3)
        assert region.shape == (2, 3)
        assert region[0, 0] == 7

    def test_crop_out_of_bounds(self):
        with pytest.raises(ValueError):
            crop(np.zeros((4, 5)), 3, 0, 2, 2)


class TestResize:
    def test_identity(self):
        image = np.random.default_rng(0).random((8, 10))
        assert np.allclose(resize_bilinear(image, (8, 10)), image)

    def test_corner_alignment(self):
        image = np.array([[0.0, 1.0], [2.0, 3.0]])
        out = resize_bilinear(image, (4, 4))
        assert np.isclose(out[0, 0], 0.0)
        assert np.isclose(out[-1, -1], 3.0)

    def test_downscale_preserves_mean_roughly(self):
        rng = np.random.default_rng(1)
        image = rng.random((64, 64))
        out = resize_bilinear(image, (32, 32))
        assert abs(out.mean() - image.mean()) < 0.05

    def test_constant_stays_constant(self):
        image = np.full((10, 10), 0.42)
        assert np.allclose(resize_bilinear(image, (7, 13)), 0.42)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            resize_bilinear(np.zeros((4, 4)), (0, 4))

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            resize_bilinear(np.zeros((2, 2, 3)), (4, 4))
