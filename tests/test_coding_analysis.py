"""Tests for the coding noise analysis."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import RateEncoder, StochasticEncoder
from repro.coding.analysis import (
    measure_decode_noise,
    precision_sweep_noise,
    rate_decode_bound,
    required_ticks_for_std,
    stochastic_decode_std,
)


class TestClosedForms:
    def test_stochastic_std_peak_at_half(self):
        assert stochastic_decode_std(0.5, 32) == pytest.approx(
            math.sqrt(0.25 / 32)
        )

    def test_stochastic_std_zero_at_extremes(self):
        assert stochastic_decode_std(0.0, 8) == 0.0
        assert stochastic_decode_std(1.0, 8) == 0.0

    def test_rate_bound(self):
        assert rate_decode_bound(32) == pytest.approx(1 / 64)

    def test_required_ticks_inverse(self):
        ticks = required_ticks_for_std(0.5, 0.05)
        assert stochastic_decode_std(0.5, ticks) <= 0.05
        assert stochastic_decode_std(0.5, ticks - 1) > 0.05

    def test_required_ticks_degenerate_value(self):
        assert required_ticks_for_std(0.0, 0.01) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            stochastic_decode_std(1.5, 8)
        with pytest.raises(ValueError):
            stochastic_decode_std(0.5, 0)
        with pytest.raises(ValueError):
            rate_decode_bound(0)
        with pytest.raises(ValueError):
            required_ticks_for_std(0.5, 0.0)

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.integers(min_value=1, max_value=256),
    )
    @settings(max_examples=40, deadline=None)
    def test_std_shrinks_with_window(self, value, ticks):
        assert stochastic_decode_std(value, 4 * ticks) == pytest.approx(
            stochastic_decode_std(value, ticks) / 2
        )


class TestEmpirical:
    def test_stochastic_matches_binomial_prediction(self):
        report = measure_decode_noise(StochasticEncoder(64), n_values=2000, rng=0)
        assert report.empirical_rmse == pytest.approx(
            report.predicted_rmse, rel=0.1
        )

    def test_rate_coding_much_quieter(self):
        stochastic = measure_decode_noise(StochasticEncoder(32), n_values=500, rng=1)
        rate = measure_decode_noise(RateEncoder(32), n_values=500, rng=1)
        assert rate.empirical_rmse < stochastic.empirical_rmse / 3

    def test_sweep_monotone(self):
        reports = precision_sweep_noise(windows=(1, 4, 16, 64), rng=2)
        rmses = [reports[w].empirical_rmse for w in (1, 4, 16, 64)]
        assert rmses == sorted(rmses, reverse=True)

    def test_figure6_explanation(self):
        """The 1-spike code is ~5-6x noisier than the 32-spike code —
        the quantitative basis of the Figure 6 degradation."""
        reports = precision_sweep_noise(windows=(1, 32), rng=3)
        ratio = reports[1].empirical_rmse / reports[32].empirical_rmse
        assert 4.0 < ratio < 8.0  # sqrt(32) ~ 5.7
