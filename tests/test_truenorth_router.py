"""Tests for inter-core routing."""

import numpy as np
import pytest

from repro.errors import RoutingError
from repro.truenorth.router import Route, Router


class TestRouteValidation:
    def test_valid_route(self):
        Route(0, 0, 1, 10, delay=1)

    def test_neuron_out_of_range(self):
        with pytest.raises(RoutingError):
            Route(0, 256, 1, 0)

    def test_axon_out_of_range(self):
        with pytest.raises(RoutingError):
            Route(0, 0, 1, 256)

    def test_delay_bounds(self):
        with pytest.raises(RoutingError):
            Route(0, 0, 1, 0, delay=0)
        with pytest.raises(RoutingError):
            Route(0, 0, 1, 0, delay=16)


class TestFanOutRule:
    def test_single_target_per_neuron(self):
        router = Router()
        router.add_route(Route(0, 5, 1, 3))
        with pytest.raises(RoutingError, match="splitter"):
            router.add_route(Route(0, 5, 2, 4))

    def test_distinct_neurons_ok(self):
        router = Router()
        router.add_routes([Route(0, 5, 1, 3), Route(0, 6, 1, 4)])
        assert len(router.routes) == 2


class TestDelivery:
    def test_delay_respected(self):
        router = Router()
        router.add_route(Route(0, 0, 1, 7, delay=3))
        fired = np.zeros(256, dtype=bool)
        fired[0] = True
        router.submit(tick=10, src_core=0, fired=fired)
        assert router.collect(11) == {}
        assert router.collect(12) == {}
        due = router.collect(13)
        assert due[1][7]

    def test_collect_pops(self):
        router = Router()
        router.add_route(Route(0, 0, 1, 0))
        fired = np.zeros(256, dtype=bool)
        fired[0] = True
        router.submit(0, 0, fired)
        assert 1 in router.collect(1)
        assert router.collect(1) == {}

    def test_unrouted_spikes_dropped(self):
        router = Router()
        fired = np.ones(256, dtype=bool)
        router.submit(0, 0, fired)
        assert router.collect(1) == {}

    def test_inject_external(self):
        router = Router()
        router.inject(5, 2, 9)
        due = router.collect(5)
        assert due[2][9]
        assert due[2].sum() == 1

    def test_clear_drops_in_flight(self):
        router = Router()
        router.inject(5, 2, 9)
        router.clear()
        assert router.collect(5) == {}

    def test_merge_multiple_sources_one_tick(self):
        router = Router()
        router.add_route(Route(0, 0, 2, 1))
        router.add_route(Route(1, 0, 2, 3))
        fired = np.zeros(256, dtype=bool)
        fired[0] = True
        router.submit(0, 0, fired)
        router.submit(0, 1, fired)
        due = router.collect(1)
        assert due[2][1] and due[2][3]

    def test_route_lookup(self):
        router = Router()
        route = Route(3, 7, 4, 8)
        router.add_route(route)
        assert router.route_for(3, 7) == route
        with pytest.raises(KeyError):
            router.route_for(3, 8)
