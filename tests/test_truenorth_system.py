"""Tests for system assembly (cores, ports, probes)."""

import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.truenorth.system import NeurosynapticSystem


class TestCores:
    def test_ids_are_sequential(self):
        system = NeurosynapticSystem()
        a = system.new_core()
        b = system.new_core()
        assert (a.core_id, b.core_id) == (0, 1)
        assert system.core_count == 2

    def test_lookup(self):
        system = NeurosynapticSystem()
        core = system.new_core("x")
        assert system.core(core.core_id) is core

    def test_lookup_missing(self):
        with pytest.raises(ConfigurationError):
            NeurosynapticSystem().core(3)


class TestWiring:
    def test_route_needs_existing_cores(self):
        system = NeurosynapticSystem()
        system.new_core()
        with pytest.raises(RoutingError):
            system.add_route(0, 0, 1, 0)

    def test_route_registers(self):
        system = NeurosynapticSystem()
        system.new_core()
        system.new_core()
        system.add_route(0, 0, 1, 5)
        assert len(system.router.routes) == 1


class TestPorts:
    def test_input_port_fanout(self):
        system = NeurosynapticSystem()
        system.new_core()
        port = system.add_input_port("in", [[(0, 0), (0, 1)], [(0, 2)]])
        assert port.width == 2
        assert port.targets[0] == ((0, 0), (0, 1))

    def test_duplicate_port_name(self):
        system = NeurosynapticSystem()
        system.new_core()
        system.add_input_port("in", [[(0, 0)]])
        with pytest.raises(ConfigurationError):
            system.add_input_port("in", [[(0, 1)]])

    def test_input_port_validates_targets(self):
        system = NeurosynapticSystem()
        system.new_core()
        with pytest.raises(RoutingError):
            system.add_input_port("in", [[(5, 0)]])
        with pytest.raises(RoutingError):
            system.add_input_port("in2", [[(0, 300)]])

    def test_output_probe(self):
        system = NeurosynapticSystem()
        system.new_core()
        probe = system.add_output_probe("out", [(0, 0), (0, 1)])
        assert probe.width == 2

    def test_output_probe_validates(self):
        system = NeurosynapticSystem()
        system.new_core()
        with pytest.raises(RoutingError):
            system.add_output_probe("out", [(1, 0)])
        with pytest.raises(RoutingError):
            system.add_output_probe("out2", [(0, 400)])

    def test_duplicate_probe_name(self):
        system = NeurosynapticSystem()
        system.new_core()
        system.add_output_probe("out", [(0, 0)])
        with pytest.raises(ConfigurationError):
            system.add_output_probe("out", [(0, 1)])
