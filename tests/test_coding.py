"""Tests for the spike-coding schemes, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import (
    BurstEncoder,
    RateEncoder,
    StochasticEncoder,
    dequantize_counts,
    precision_bits,
    quantize_to_counts,
    quantize_uniform,
    spikes_for_bits,
)


class TestPrecisionBits:
    def test_paper_labels(self):
        # Paper: 64-spike = 6-bit, 32 = 5-bit, 4 = 2-bit, 1 = 1-bit.
        assert precision_bits(64) == 6
        assert precision_bits(32) == 5
        assert precision_bits(4) == 2
        assert precision_bits(1) == 1

    def test_inverse(self):
        assert spikes_for_bits(6) == 64

    def test_invalid(self):
        with pytest.raises(ValueError):
            precision_bits(0)
        with pytest.raises(ValueError):
            spikes_for_bits(0)


class TestRateEncoder:
    def test_round_trip_exact_for_grid_values(self):
        encoder = RateEncoder(16)
        values = np.arange(17) / 16.0
        decoded = encoder.decode(encoder.encode(values))
        assert np.allclose(decoded, values)

    def test_spikes_evenly_spread(self):
        encoder = RateEncoder(16)
        raster = encoder.encode(np.array([0.5]))
        positions = np.flatnonzero(raster[:, 0])
        gaps = np.diff(positions)
        assert gaps.min() >= 1 and gaps.max() <= 3

    def test_zero_and_one(self):
        encoder = RateEncoder(8)
        raster = encoder.encode(np.array([0.0, 1.0]))
        assert raster[:, 0].sum() == 0
        assert raster[:, 1].sum() == 8

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            RateEncoder(8).encode(np.array([1.5]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            RateEncoder(8).encode(np.zeros((2, 2)))

    @given(st.lists(st.floats(0, 1), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_decode_error_bounded(self, values):
        encoder = RateEncoder(32)
        decoded = encoder.decode(encoder.encode(np.array(values)))
        assert np.abs(decoded - np.array(values)).max() <= 0.5 / 32 + 1e-12


class TestBurstEncoder:
    def test_prefix_property(self):
        raster = BurstEncoder(10).encode(np.array([0.5]))
        column = raster[:, 0]
        # Once the burst ends, no further spikes.
        first_gap = np.argmin(column) if not column.all() else len(column)
        assert not column[first_gap:].any()

    def test_count_matches_rate(self):
        encoder = BurstEncoder(20)
        raster = encoder.encode(np.array([0.35]))
        assert raster[:, 0].sum() == 7


class TestStochasticEncoder:
    def test_deterministic_extremes(self):
        encoder = StochasticEncoder(50)
        raster = encoder.encode(np.array([0.0, 1.0]), rng=0)
        assert raster[:, 0].sum() == 0
        assert raster[:, 1].sum() == 50

    def test_mean_rate_converges(self):
        encoder = StochasticEncoder(2000)
        decoded = encoder.decode(encoder.encode(np.array([0.3]), rng=1))
        assert abs(decoded[0] - 0.3) < 0.05

    def test_seeded_reproducibility(self):
        encoder = StochasticEncoder(16)
        a = encoder.encode(np.array([0.5]), rng=7)
        b = encoder.encode(np.array([0.5]), rng=7)
        assert np.array_equal(a, b)

    def test_decode_shape_validated(self):
        with pytest.raises(ValueError):
            StochasticEncoder(8).decode(np.zeros((9, 2)))


class TestQuantize:
    def test_uniform_levels(self):
        out = quantize_uniform(np.array([0.0, 0.49, 0.51, 1.0]), 3)
        assert np.allclose(out, [0.0, 0.5, 0.5, 1.0])

    def test_uniform_needs_two_levels(self):
        with pytest.raises(ValueError):
            quantize_uniform(np.array([0.5]), 1)

    def test_counts_round_trip(self):
        counts = quantize_to_counts(np.array([0.25, 0.75]), 64)
        assert np.array_equal(counts, [16, 48])
        assert np.allclose(dequantize_counts(counts, 64), [0.25, 0.75])

    def test_dequantize_bounds(self):
        with pytest.raises(ValueError):
            dequantize_counts(np.array([65]), 64)

    @given(
        st.integers(min_value=1, max_value=128),
        st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=50, deadline=None)
    def test_quantize_counts_error_bound(self, window, value):
        counts = quantize_to_counts(np.array([value]), window)
        recovered = dequantize_counts(counts, window)
        assert abs(recovered[0] - value) <= 0.5 / window + 1e-12


class TestEncoderValidation:
    @pytest.mark.parametrize("encoder_cls", [RateEncoder, BurstEncoder, StochasticEncoder])
    def test_window_must_be_positive(self, encoder_cls):
        with pytest.raises(ValueError):
            encoder_cls(0)

    @pytest.mark.parametrize("encoder_cls", [RateEncoder, BurstEncoder, StochasticEncoder])
    def test_bits_property(self, encoder_cls):
        assert encoder_cls(64).bits == 6
