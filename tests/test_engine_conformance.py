"""Differential conformance: batch engine vs the tick-accurate reference.

The batch engine is only trustworthy if it is *bit-identical* to the
reference simulator — the software analogue of the paper's >99.5 % HW/SW
correlation methodology, tightened to exact equality. Every scenario in
``tests/engine_systems.py`` (corelet-built and randomized, deterministic
and stochastic) is run through both engines at batch sizes 1, 7, and 32
with fixed seeds, comparing full probe rasters and total spike counts.
"""

import numpy as np
import pytest

from repro.faults import (
    DeadCore,
    DroppedSpikes,
    DuplicatedSpikes,
    FaultPlan,
    RandomStuckNeurons,
    ThresholdDrift,
    WeightBitFlips,
)
from repro.truenorth.engine import BatchEngine, normalize_batch_inputs
from repro.truenorth.simulator import Simulator
from repro.utils.rng import spawn_generators

from tests.engine_systems import (
    CASES_BY_NAME,
    ENGINE_CASES,
    batched_inputs,
    shared_inputs,
)

CASE_NAMES = [case.name for case in ENGINE_CASES]
BATCH_SIZES = [1, 7, 32]

#: Fault plans exercised by the conformance tests: one per fault kind
#: plus a kitchen-sink composite, covering static (chip-level) and
#: dynamic (per-delivery) categories.
FAULT_PLANS = {
    "drop": FaultPlan((DroppedSpikes(0.3),), seed=11),
    "dup": FaultPlan((DuplicatedSpikes(0.4),), seed=12),
    "stuck_fire": FaultPlan((RandomStuckNeurons(0.1, mode="fire"),), seed=13),
    "stuck_silent": FaultPlan((RandomStuckNeurons(0.2, mode="silent"),), seed=14),
    "dead_core": FaultPlan((DeadCore(0),), seed=15),
    "bit_flips": FaultPlan((WeightBitFlips(0.2, bit=1),), seed=16),
    "drift": FaultPlan((ThresholdDrift(4.0),), seed=17),
    "composite": FaultPlan(
        (
            DroppedSpikes(0.25),
            DuplicatedSpikes(0.2),
            RandomStuckNeurons(0.05, mode="fire"),
            WeightBitFlips(0.1, bit=0),
            ThresholdDrift(2.0),
        ),
        seed=18,
    ),
}


def _case(name):
    return CASES_BY_NAME[name]


class TestSingleRunConformance:
    @pytest.mark.parametrize("name", CASE_NAMES)
    def test_run_is_bit_identical(self, name):
        case = _case(name)
        reference = Simulator(case.build(), rng=case.sim_seed)
        batch = Simulator(case.build(), rng=case.sim_seed, engine="batch")
        inputs = shared_inputs(
            reference.system, case.ticks, case.input_seed, case.density
        )

        ref = reference.run(case.ticks, inputs)
        got = batch.run(case.ticks, inputs)

        assert ref.probe_spikes.keys() == got.probe_spikes.keys()
        for probe, raster in ref.probe_spikes.items():
            np.testing.assert_array_equal(raster, got.probe_spikes[probe])
        assert ref.total_spikes == got.total_spikes

    @pytest.mark.parametrize("name", ["comparator", "random_stochastic"])
    def test_reset_false_continuation_matches(self, name):
        case = _case(name)
        reference = Simulator(case.build(), rng=case.sim_seed)
        batch = Simulator(case.build(), rng=case.sim_seed, engine="batch")
        inputs = shared_inputs(
            reference.system, case.ticks, case.input_seed, case.density
        )

        for sim in (reference, batch):
            sim.run(case.ticks, inputs)
        # The second run continues membrane potentials AND spikes still in
        # flight in the router mailbox.
        ref = reference.run(case.ticks, inputs, reset=False)
        got = batch.run(case.ticks, inputs, reset=False)
        for probe, raster in ref.probe_spikes.items():
            np.testing.assert_array_equal(raster, got.probe_spikes[probe])
        assert ref.total_spikes == got.total_spikes


class TestBatchRunConformance:
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    @pytest.mark.parametrize("name", CASE_NAMES)
    def test_run_batch_is_bit_identical(self, name, batch):
        case = _case(name)
        reference = Simulator(case.build(), rng=case.sim_seed)
        vectorized = Simulator(case.build(), rng=case.sim_seed, engine="batch")
        inputs = batched_inputs(
            reference.system, case.ticks, batch, case.input_seed, case.density
        )

        ref = reference.run_batch(case.ticks, inputs)
        got = vectorized.run_batch(case.ticks, inputs)

        assert ref.batch == got.batch == batch
        assert ref.probe_spikes.keys() == got.probe_spikes.keys()
        for probe, raster in ref.probe_spikes.items():
            np.testing.assert_array_equal(raster, got.probe_spikes[probe])
        np.testing.assert_array_equal(ref.total_spikes, got.total_spikes)

    @pytest.mark.parametrize("name", ["weighted_sum", "random_stochastic"])
    def test_lane_equals_spawned_reference_run(self, name):
        """Lane i of a batch run == a reference run seeded with spawn[i]."""
        case = _case(name)
        batch = 5
        vectorized = Simulator(case.build(), rng=case.sim_seed, engine="batch")
        inputs = batched_inputs(
            vectorized.system, case.ticks, batch, case.input_seed, case.density
        )
        result = vectorized.run_batch(case.ticks, inputs)

        lanes = spawn_generators(case.sim_seed, batch)
        for lane in range(batch):
            lane_inputs = {name_: arr[lane] for name_, arr in inputs.items()}
            ref = Simulator(case.build(), rng=lanes[lane]).run(
                case.ticks, lane_inputs
            )
            single = result.lane(lane)
            for probe, raster in ref.probe_spikes.items():
                np.testing.assert_array_equal(raster, single.probe_spikes[probe])
            assert ref.total_spikes == single.total_spikes

    def test_shared_raster_broadcasts_to_every_lane(self):
        """A 2-D raster feeds every lane; deterministic lanes agree."""
        case = _case("accumulator")
        sim = Simulator(case.build(), rng=0, engine="batch")
        inputs = shared_inputs(sim.system, case.ticks, case.input_seed, case.density)
        result = sim.run_batch(case.ticks, inputs, batch=4)
        raster = result.probe_spikes["out"]
        for lane in range(1, 4):
            np.testing.assert_array_equal(raster[0], raster[lane])

    def test_stochastic_lanes_are_independent(self):
        case = _case("single_core_stochastic")
        sim = Simulator(case.build(), rng=9, engine="batch")
        inputs = shared_inputs(sim.system, case.ticks, case.input_seed, case.density)
        result = sim.run_batch(case.ticks, inputs, batch=4)
        raster = result.probe_spikes["out"]
        assert any(
            not np.array_equal(raster[0], raster[lane]) for lane in range(1, 4)
        )


class TestFaultConformance:
    """Fault injection must not break engine equivalence.

    A FaultPlan's decisions are pure functions of (plan seed, fault
    site) — never of iteration order — so the tick-accurate reference
    and the vectorized batch engine must stay bit-identical under every
    fault kind, for single runs and for every lane of a batched run.
    """

    @pytest.mark.parametrize("plan_name", sorted(FAULT_PLANS))
    @pytest.mark.parametrize("name", ["pattern_match", "random_stochastic"])
    def test_faulted_run_is_bit_identical(self, name, plan_name):
        case = _case(name)
        plan = FAULT_PLANS[plan_name]
        reference = Simulator(case.build(), rng=case.sim_seed, faults=plan)
        batch = Simulator(
            case.build(), rng=case.sim_seed, engine="batch", faults=plan
        )
        inputs = shared_inputs(
            reference.system, case.ticks, case.input_seed, case.density
        )

        ref = reference.run(case.ticks, inputs)
        got = batch.run(case.ticks, inputs)

        assert ref.probe_spikes.keys() == got.probe_spikes.keys()
        for probe, raster in ref.probe_spikes.items():
            np.testing.assert_array_equal(raster, got.probe_spikes[probe])
        assert ref.total_spikes == got.total_spikes

    @pytest.mark.parametrize("name", CASE_NAMES)
    def test_composite_plan_all_cases(self, name):
        case = _case(name)
        plan = FAULT_PLANS["composite"]
        reference = Simulator(case.build(), rng=case.sim_seed, faults=plan)
        batch = Simulator(
            case.build(), rng=case.sim_seed, engine="batch", faults=plan
        )
        inputs = shared_inputs(
            reference.system, case.ticks, case.input_seed, case.density
        )
        ref = reference.run(case.ticks, inputs)
        got = batch.run(case.ticks, inputs)
        for probe, raster in ref.probe_spikes.items():
            np.testing.assert_array_equal(raster, got.probe_spikes[probe])
        assert ref.total_spikes == got.total_spikes

    @pytest.mark.parametrize("batch", BATCH_SIZES)
    @pytest.mark.parametrize("plan_name", ["drop", "composite"])
    def test_faulted_batch_run_is_bit_identical(self, plan_name, batch):
        case = _case("random_stochastic")
        plan = FAULT_PLANS[plan_name]
        reference = Simulator(case.build(), rng=case.sim_seed, faults=plan)
        vectorized = Simulator(
            case.build(), rng=case.sim_seed, engine="batch", faults=plan
        )
        inputs = batched_inputs(
            reference.system, case.ticks, batch, case.input_seed, case.density
        )

        ref = reference.run_batch(case.ticks, inputs)
        got = vectorized.run_batch(case.ticks, inputs)

        for probe, raster in ref.probe_spikes.items():
            np.testing.assert_array_equal(raster, got.probe_spikes[probe])
        np.testing.assert_array_equal(ref.total_spikes, got.total_spikes)

    def test_dynamic_fault_lanes_differ(self):
        """Per-delivery faults are keyed by lane, so lanes de-correlate."""
        case = _case("pattern_match")
        plan = FAULT_PLANS["drop"]
        sim = Simulator(case.build(), rng=case.sim_seed, engine="batch", faults=plan)
        inputs = shared_inputs(sim.system, case.ticks, case.input_seed, case.density)
        result = sim.run_batch(case.ticks, inputs, batch=4)
        raster = result.probe_spikes["out"]
        assert any(
            not np.array_equal(raster[0], raster[lane]) for lane in range(1, 4)
        )

    def test_static_faults_identical_across_lanes(self):
        """Chip-level faults are lane-independent by definition."""
        case = _case("pattern_match")
        plan = FAULT_PLANS["bit_flips"]
        sim = Simulator(case.build(), rng=case.sim_seed, engine="batch", faults=plan)
        inputs = shared_inputs(sim.system, case.ticks, case.input_seed, case.density)
        result = sim.run_batch(case.ticks, inputs, batch=3)
        raster = result.probe_spikes["out"]
        for lane in range(1, 3):
            np.testing.assert_array_equal(raster[0], raster[lane])

    @pytest.mark.parametrize("plan_name", ["stuck_fire", "composite"])
    def test_faults_change_the_output(self, plan_name):
        """The plans above actually inject (no silently-clean runs)."""
        case = _case("pattern_match")
        plan = FAULT_PLANS[plan_name]
        inputs = shared_inputs(
            case.build(), case.ticks, case.input_seed, case.density
        )
        clean = Simulator(case.build(), rng=case.sim_seed).run(case.ticks, inputs)
        faulted = Simulator(case.build(), rng=case.sim_seed, faults=plan).run(
            case.ticks, inputs
        )
        assert clean.total_spikes != faulted.total_spikes

    def test_dead_core_silences_its_neurons(self):
        case = _case("pattern_match")
        plan = FAULT_PLANS["dead_core"]
        sim = Simulator(case.build(), rng=case.sim_seed, faults=plan)
        inputs = shared_inputs(sim.system, case.ticks, case.input_seed, case.density)
        result = sim.run(case.ticks, inputs)
        # Every probe reads core 0 in this single-core case: total
        # silence is the only conformant outcome.
        assert result.total_spikes == 0

    @pytest.mark.parametrize("engine", ["reference", "batch"])
    def test_faulted_same_seed_runs_identical(self, engine):
        case = _case("random_stochastic")
        plan = FAULT_PLANS["composite"]
        inputs = shared_inputs(
            case.build(), case.ticks, case.input_seed, case.density
        )
        results = [
            Simulator(
                case.build(), rng=case.sim_seed, engine=engine, faults=plan
            ).run(case.ticks, inputs)
            for _ in range(2)
        ]
        for probe, raster in results[0].probe_spikes.items():
            np.testing.assert_array_equal(raster, results[1].probe_spikes[probe])
        assert results[0].total_spikes == results[1].total_spikes


class TestCounterParity:
    """The hardware-counter ledger is part of the conformance contract.

    Both engines populate a :class:`repro.obs.RunActivity` per run
    (DESIGN.md §12); every field — per-lane totals, per-core rollups,
    the per-tick spike series, and the attributed energy derived from
    them — must be bit-identical between the tick-accurate reference
    and the vectorized batch engine, clean and under fault injection.
    """

    COMPARED_FIELDS = (
        "spikes",
        "synaptic_events",
        "membrane_updates",
        "router_hops",
        "dropped_spikes",
        "duplicated_spikes",
        "active_core_ticks",
        "core_spikes",
        "core_synaptic_events",
        "spikes_per_tick",
    )

    @staticmethod
    def _activities(name, plan, batch):
        case = _case(name)
        reference = Simulator(case.build(), rng=case.sim_seed, faults=plan)
        vectorized = Simulator(
            case.build(), rng=case.sim_seed, engine="batch", faults=plan
        )
        inputs = batched_inputs(
            reference.system, case.ticks, batch, case.input_seed, case.density
        )
        ref = reference.run_batch(case.ticks, inputs)
        got = vectorized.run_batch(case.ticks, inputs)
        assert ref.activity is not None and got.activity is not None
        return ref.activity, got.activity

    def _assert_ledgers_identical(self, ref, got):
        assert (ref.ticks, ref.batch, ref.n_cores) == (
            got.ticks,
            got.batch,
            got.n_cores,
        )
        np.testing.assert_array_equal(ref.core_ids, got.core_ids)
        for field in self.COMPARED_FIELDS:
            np.testing.assert_array_equal(
                getattr(ref, field), getattr(got, field), err_msg=field
            )
        np.testing.assert_array_equal(
            ref.lane_energy_joules(), got.lane_energy_joules()
        )

    @pytest.mark.parametrize("batch", BATCH_SIZES)
    @pytest.mark.parametrize("name", CASE_NAMES)
    def test_clean_counters_bit_identical(self, name, batch):
        ref, got = self._activities(name, None, batch)
        self._assert_ledgers_identical(ref, got)

    @pytest.mark.parametrize("plan_name", sorted(FAULT_PLANS))
    def test_faulted_counters_bit_identical(self, plan_name):
        ref, got = self._activities(
            "random_stochastic", FAULT_PLANS[plan_name], 5
        )
        self._assert_ledgers_identical(ref, got)

    def test_spikes_field_matches_total_spikes(self):
        case = _case("pattern_match")
        sim = Simulator(case.build(), rng=case.sim_seed, engine="batch")
        inputs = batched_inputs(
            sim.system, case.ticks, 3, case.input_seed, case.density
        )
        result = sim.run_batch(case.ticks, inputs)
        np.testing.assert_array_equal(
            result.activity.spikes, result.total_spikes
        )

    def test_fault_hops_reconcile_with_engine_counters(self):
        """dropped/duplicated lane sums == the engine's scalar counters."""
        case = _case("random_stochastic")
        plan = FAULT_PLANS["composite"]
        sim = Simulator(
            case.build(), rng=case.sim_seed, engine="batch", faults=plan
        )
        inputs = batched_inputs(
            sim.system, case.ticks, 7, case.input_seed, case.density
        )
        result = sim.run_batch(case.ticks, inputs)
        activity = result.activity
        engine = sim._batch_engine
        assert int(activity.dropped_spikes.sum()) == engine._last_dropped
        assert int(activity.duplicated_spikes.sum()) == engine._last_duplicated
        assert int(activity.router_hops.sum()) == engine._last_delivered

    def test_lane_slices_match_single_lane_reference(self):
        """activity.lane(i) of a batch run == lane i's reference ledger."""
        case = _case("weighted_sum")
        batch = 4
        sim = Simulator(case.build(), rng=case.sim_seed, engine="batch")
        inputs = batched_inputs(
            sim.system, case.ticks, batch, case.input_seed, case.density
        )
        result = sim.run_batch(case.ticks, inputs)

        lanes = spawn_generators(case.sim_seed, batch)
        for lane in range(batch):
            lane_inputs = {name: arr[lane] for name, arr in inputs.items()}
            ref = Simulator(case.build(), rng=lanes[lane]).run(
                case.ticks, lane_inputs
            )
            self._assert_ledgers_identical(
                ref.activity, result.activity.lane(lane)
            )


class TestDeterminism:
    """Same seed, same system, same inputs => identical results.

    This is what the SeedSequence-based lane spawning buys: the two
    engines derive their stochastic streams from the seed alone, never
    from shared mutable generator state.
    """

    @pytest.mark.parametrize("engine", ["reference", "batch"])
    @pytest.mark.parametrize("name", ["random_stochastic", "single_core_stochastic"])
    def test_same_seed_runs_identical(self, name, engine):
        case = _case(name)
        inputs = shared_inputs(
            case.build(), case.ticks, case.input_seed, case.density
        )
        results = [
            Simulator(case.build(), rng=case.sim_seed, engine=engine).run(
                case.ticks, inputs
            )
            for _ in range(2)
        ]
        for probe, raster in results[0].probe_spikes.items():
            np.testing.assert_array_equal(raster, results[1].probe_spikes[probe])
        assert results[0].total_spikes == results[1].total_spikes

    @pytest.mark.parametrize("engine", ["reference", "batch"])
    def test_same_seed_batch_runs_identical(self, engine):
        case = _case("random_stochastic")
        inputs = batched_inputs(
            case.build(), case.ticks, 4, case.input_seed, case.density
        )
        results = [
            Simulator(case.build(), rng=case.sim_seed, engine=engine).run_batch(
                case.ticks, inputs
            )
            for _ in range(2)
        ]
        for probe, raster in results[0].probe_spikes.items():
            np.testing.assert_array_equal(raster, results[1].probe_spikes[probe])
        np.testing.assert_array_equal(
            results[0].total_spikes, results[1].total_spikes
        )


class TestBatchApiValidation:
    @pytest.mark.parametrize("engine", ["reference", "batch"])
    def test_run_batch_rejects_reset_false(self, engine):
        case = _case("accumulator")
        sim = Simulator(case.build(), rng=0, engine=engine)
        with pytest.raises(ValueError, match="reset"):
            sim.run_batch(4, batch=2, reset=False)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            Simulator(_case("accumulator").build(), engine="warp")

    def test_batch_size_must_be_inferable(self):
        case = _case("accumulator")
        sim = Simulator(case.build(), rng=0, engine="batch")
        inputs = shared_inputs(sim.system, 4, 0, 0.5)
        with pytest.raises(ValueError, match="batch"):
            sim.run_batch(4, inputs)

    def test_inconsistent_lane_counts_rejected(self):
        system = _case("accumulator").build()
        with pytest.raises(ValueError, match="batch"):
            normalize_batch_inputs(
                system, 4, {"in": np.zeros((3, 4, 16), dtype=bool)}, batch=2
            )

    def test_misshapen_raster_rejected(self):
        system = _case("accumulator").build()
        with pytest.raises(ValueError, match="raster"):
            normalize_batch_inputs(
                system, 4, {"in": np.zeros((4, 99), dtype=bool)}, batch=1
            )

    def test_reset_false_with_changed_batch_rejected(self):
        case = _case("accumulator")
        engine = BatchEngine(case.build())
        engine.run(2, {}, spawn_generators(0, 3))
        with pytest.raises(ValueError, match="batch"):
            engine.run(2, {}, spawn_generators(0, 2), reset=False)

    def test_zero_ticks(self):
        case = _case("accumulator")
        sim = Simulator(case.build(), rng=0, engine="batch")
        result = sim.run_batch(0, batch=2)
        assert result.probe_spikes["out"].shape == (2, 0, 4)
        np.testing.assert_array_equal(result.total_spikes, [0, 0])
