"""Differential conformance: every compiled engine vs the reference.

The compiled engines are only trustworthy if they are *bit-identical* to
the tick-accurate reference simulator — the software analogue of the
paper's >99.5 % HW/SW correlation methodology, tightened to exact
equality. The matrix here is three-way: every scenario in
``tests/engine_systems.py`` (corelet-built and randomized, deterministic
and stochastic) is run through the ``batch`` and ``event`` engines at
batch sizes 1, 7, and 32 with fixed seeds, across input densities from
all-silent to saturated, clean and under every fault kind, comparing
full probe rasters, total spike counts, and the complete
:class:`repro.obs.hwcounters.RunActivity` ledger against the reference.
Hypothesis properties extend the fixed scenarios with randomly generated
corelet systems and spike densities.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import (
    DeadCore,
    DroppedSpikes,
    DuplicatedSpikes,
    FaultPlan,
    RandomStuckNeurons,
    ThresholdDrift,
    WeightBitFlips,
)
from repro.truenorth.engine import BatchEngine, normalize_batch_inputs
from repro.truenorth.event_engine import EventEngine
from repro.truenorth.simulator import ENGINES, Simulator
from repro.utils.rng import spawn_generators

from tests.engine_systems import (
    CASES_BY_NAME,
    COMPILED_ENGINES,
    DENSITIES,
    ENGINE_CASES,
    batched_inputs,
    random_system,
    shared_inputs,
)

CASE_NAMES = [case.name for case in ENGINE_CASES]
BATCH_SIZES = [1, 7, 32]

#: Fault plans exercised by the conformance tests: one per fault kind
#: plus a kitchen-sink composite, covering static (chip-level) and
#: dynamic (per-delivery) categories.
FAULT_PLANS = {
    "drop": FaultPlan((DroppedSpikes(0.3),), seed=11),
    "dup": FaultPlan((DuplicatedSpikes(0.4),), seed=12),
    "stuck_fire": FaultPlan((RandomStuckNeurons(0.1, mode="fire"),), seed=13),
    "stuck_silent": FaultPlan((RandomStuckNeurons(0.2, mode="silent"),), seed=14),
    "dead_core": FaultPlan((DeadCore(0),), seed=15),
    "bit_flips": FaultPlan((WeightBitFlips(0.2, bit=1),), seed=16),
    "drift": FaultPlan((ThresholdDrift(4.0),), seed=17),
    "composite": FaultPlan(
        (
            DroppedSpikes(0.25),
            DuplicatedSpikes(0.2),
            RandomStuckNeurons(0.05, mode="fire"),
            WeightBitFlips(0.1, bit=0),
            ThresholdDrift(2.0),
        ),
        seed=18,
    ),
}

#: RunActivity fields the counter-parity contract compares bit for bit.
COMPARED_FIELDS = (
    "spikes",
    "synaptic_events",
    "membrane_updates",
    "router_hops",
    "dropped_spikes",
    "duplicated_spikes",
    "active_core_ticks",
    "core_spikes",
    "core_synaptic_events",
    "spikes_per_tick",
)


def _case(name):
    return CASES_BY_NAME[name]


def assert_results_identical(ref, got):
    """Probe rasters and spike totals of two runs are bit-identical."""
    assert ref.probe_spikes.keys() == got.probe_spikes.keys()
    for probe, raster in ref.probe_spikes.items():
        np.testing.assert_array_equal(raster, got.probe_spikes[probe])
    np.testing.assert_array_equal(ref.total_spikes, got.total_spikes)


def assert_ledgers_identical(ref, got):
    """Every compared RunActivity field (and the derived energy) agrees."""
    assert (ref.ticks, ref.batch, ref.n_cores) == (
        got.ticks,
        got.batch,
        got.n_cores,
    )
    np.testing.assert_array_equal(ref.core_ids, got.core_ids)
    for field in COMPARED_FIELDS:
        np.testing.assert_array_equal(
            getattr(ref, field), getattr(got, field), err_msg=field
        )
    np.testing.assert_array_equal(
        ref.lane_energy_joules(), got.lane_energy_joules()
    )


class TestSingleRunConformance:
    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    @pytest.mark.parametrize("name", CASE_NAMES)
    def test_run_is_bit_identical(self, name, engine):
        case = _case(name)
        reference = Simulator(case.build(), rng=case.sim_seed)
        compiled = Simulator(case.build(), rng=case.sim_seed, engine=engine)
        inputs = shared_inputs(
            reference.system, case.ticks, case.input_seed, case.density
        )

        ref = reference.run(case.ticks, inputs)
        got = compiled.run(case.ticks, inputs)
        assert_results_identical(ref, got)

    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    @pytest.mark.parametrize("name", ["comparator", "random_stochastic"])
    def test_reset_false_continuation_matches(self, name, engine):
        case = _case(name)
        reference = Simulator(case.build(), rng=case.sim_seed)
        compiled = Simulator(case.build(), rng=case.sim_seed, engine=engine)
        inputs = shared_inputs(
            reference.system, case.ticks, case.input_seed, case.density
        )

        for sim in (reference, compiled):
            sim.run(case.ticks, inputs)
        # The second run continues membrane potentials AND spikes still in
        # flight in the router mailbox (and, for the event engine, the
        # persisted per-core settledness used for skipping).
        ref = reference.run(case.ticks, inputs, reset=False)
        got = compiled.run(case.ticks, inputs, reset=False)
        assert_results_identical(ref, got)


class TestDensityMatrix:
    """Engines agree at every input density, silent through saturated."""

    @pytest.mark.parametrize("density", DENSITIES)
    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    @pytest.mark.parametrize("name", ["pattern_match", "random_stochastic"])
    def test_density_sweep_bit_identical(self, name, engine, density):
        case = _case(name)
        reference = Simulator(case.build(), rng=case.sim_seed)
        compiled = Simulator(case.build(), rng=case.sim_seed, engine=engine)
        inputs = shared_inputs(
            reference.system, case.ticks, case.input_seed, density
        )
        ref = reference.run(case.ticks, inputs)
        got = compiled.run(case.ticks, inputs)
        assert_results_identical(ref, got)
        assert_ledgers_identical(ref.activity, got.activity)


class TestBatchRunConformance:
    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    @pytest.mark.parametrize("name", CASE_NAMES)
    def test_run_batch_is_bit_identical(self, name, batch, engine):
        case = _case(name)
        reference = Simulator(case.build(), rng=case.sim_seed)
        vectorized = Simulator(case.build(), rng=case.sim_seed, engine=engine)
        inputs = batched_inputs(
            reference.system, case.ticks, batch, case.input_seed, case.density
        )

        ref = reference.run_batch(case.ticks, inputs)
        got = vectorized.run_batch(case.ticks, inputs)

        assert ref.batch == got.batch == batch
        assert_results_identical(ref, got)

    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    @pytest.mark.parametrize("name", ["weighted_sum", "random_stochastic"])
    def test_lane_equals_spawned_reference_run(self, name, engine):
        """Lane i of a batch run == a reference run seeded with spawn[i]."""
        case = _case(name)
        batch = 5
        vectorized = Simulator(case.build(), rng=case.sim_seed, engine=engine)
        inputs = batched_inputs(
            vectorized.system, case.ticks, batch, case.input_seed, case.density
        )
        result = vectorized.run_batch(case.ticks, inputs)

        lanes = spawn_generators(case.sim_seed, batch)
        for lane in range(batch):
            lane_inputs = {name_: arr[lane] for name_, arr in inputs.items()}
            ref = Simulator(case.build(), rng=lanes[lane]).run(
                case.ticks, lane_inputs
            )
            single = result.lane(lane)
            for probe, raster in ref.probe_spikes.items():
                np.testing.assert_array_equal(raster, single.probe_spikes[probe])
            assert ref.total_spikes == single.total_spikes

    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    def test_shared_raster_broadcasts_to_every_lane(self, engine):
        """A 2-D raster feeds every lane; deterministic lanes agree."""
        case = _case("accumulator")
        sim = Simulator(case.build(), rng=0, engine=engine)
        inputs = shared_inputs(sim.system, case.ticks, case.input_seed, case.density)
        result = sim.run_batch(case.ticks, inputs, batch=4)
        raster = result.probe_spikes["out"]
        for lane in range(1, 4):
            np.testing.assert_array_equal(raster[0], raster[lane])

    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    def test_stochastic_lanes_are_independent(self, engine):
        case = _case("single_core_stochastic")
        sim = Simulator(case.build(), rng=9, engine=engine)
        inputs = shared_inputs(sim.system, case.ticks, case.input_seed, case.density)
        result = sim.run_batch(case.ticks, inputs, batch=4)
        raster = result.probe_spikes["out"]
        assert any(
            not np.array_equal(raster[0], raster[lane]) for lane in range(1, 4)
        )


class TestFaultConformance:
    """Fault injection must not break engine equivalence.

    A FaultPlan's decisions are pure functions of (plan seed, fault
    site) — never of iteration order — so the tick-accurate reference
    and the compiled engines must stay bit-identical under every fault
    kind, for single runs and for every lane of a batched run. The
    event engine makes this a sharp test: its evaluation order differs
    from both other engines, so any order-dependence in fault hashing
    would show up here.
    """

    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    @pytest.mark.parametrize("plan_name", sorted(FAULT_PLANS))
    @pytest.mark.parametrize("name", ["pattern_match", "random_stochastic"])
    def test_faulted_run_is_bit_identical(self, name, plan_name, engine):
        case = _case(name)
        plan = FAULT_PLANS[plan_name]
        reference = Simulator(case.build(), rng=case.sim_seed, faults=plan)
        compiled = Simulator(
            case.build(), rng=case.sim_seed, engine=engine, faults=plan
        )
        inputs = shared_inputs(
            reference.system, case.ticks, case.input_seed, case.density
        )

        ref = reference.run(case.ticks, inputs)
        got = compiled.run(case.ticks, inputs)
        assert_results_identical(ref, got)

    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    @pytest.mark.parametrize("name", CASE_NAMES)
    def test_composite_plan_all_cases(self, name, engine):
        case = _case(name)
        plan = FAULT_PLANS["composite"]
        reference = Simulator(case.build(), rng=case.sim_seed, faults=plan)
        compiled = Simulator(
            case.build(), rng=case.sim_seed, engine=engine, faults=plan
        )
        inputs = shared_inputs(
            reference.system, case.ticks, case.input_seed, case.density
        )
        ref = reference.run(case.ticks, inputs)
        got = compiled.run(case.ticks, inputs)
        assert_results_identical(ref, got)

    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    @pytest.mark.parametrize("plan_name", ["drop", "composite"])
    def test_faulted_batch_run_is_bit_identical(self, plan_name, batch, engine):
        case = _case("random_stochastic")
        plan = FAULT_PLANS[plan_name]
        reference = Simulator(case.build(), rng=case.sim_seed, faults=plan)
        vectorized = Simulator(
            case.build(), rng=case.sim_seed, engine=engine, faults=plan
        )
        inputs = batched_inputs(
            reference.system, case.ticks, batch, case.input_seed, case.density
        )

        ref = reference.run_batch(case.ticks, inputs)
        got = vectorized.run_batch(case.ticks, inputs)
        assert_results_identical(ref, got)

    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    def test_dynamic_fault_lanes_differ(self, engine):
        """Per-delivery faults are keyed by lane, so lanes de-correlate."""
        case = _case("pattern_match")
        plan = FAULT_PLANS["drop"]
        sim = Simulator(case.build(), rng=case.sim_seed, engine=engine, faults=plan)
        inputs = shared_inputs(sim.system, case.ticks, case.input_seed, case.density)
        result = sim.run_batch(case.ticks, inputs, batch=4)
        raster = result.probe_spikes["out"]
        assert any(
            not np.array_equal(raster[0], raster[lane]) for lane in range(1, 4)
        )

    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    def test_static_faults_identical_across_lanes(self, engine):
        """Chip-level faults are lane-independent by definition."""
        case = _case("pattern_match")
        plan = FAULT_PLANS["bit_flips"]
        sim = Simulator(case.build(), rng=case.sim_seed, engine=engine, faults=plan)
        inputs = shared_inputs(sim.system, case.ticks, case.input_seed, case.density)
        result = sim.run_batch(case.ticks, inputs, batch=3)
        raster = result.probe_spikes["out"]
        for lane in range(1, 3):
            np.testing.assert_array_equal(raster[0], raster[lane])

    @pytest.mark.parametrize("plan_name", ["stuck_fire", "composite"])
    def test_faults_change_the_output(self, plan_name):
        """The plans above actually inject (no silently-clean runs)."""
        case = _case("pattern_match")
        plan = FAULT_PLANS[plan_name]
        inputs = shared_inputs(
            case.build(), case.ticks, case.input_seed, case.density
        )
        clean = Simulator(case.build(), rng=case.sim_seed).run(case.ticks, inputs)
        faulted = Simulator(case.build(), rng=case.sim_seed, faults=plan).run(
            case.ticks, inputs
        )
        assert clean.total_spikes != faulted.total_spikes

    def test_dead_core_silences_its_neurons(self):
        case = _case("pattern_match")
        plan = FAULT_PLANS["dead_core"]
        sim = Simulator(case.build(), rng=case.sim_seed, faults=plan)
        inputs = shared_inputs(sim.system, case.ticks, case.input_seed, case.density)
        result = sim.run(case.ticks, inputs)
        # Every probe reads core 0 in this single-core case: total
        # silence is the only conformant outcome.
        assert result.total_spikes == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_faulted_same_seed_runs_identical(self, engine):
        case = _case("random_stochastic")
        plan = FAULT_PLANS["composite"]
        inputs = shared_inputs(
            case.build(), case.ticks, case.input_seed, case.density
        )
        results = [
            Simulator(
                case.build(), rng=case.sim_seed, engine=engine, faults=plan
            ).run(case.ticks, inputs)
            for _ in range(2)
        ]
        for probe, raster in results[0].probe_spikes.items():
            np.testing.assert_array_equal(raster, results[1].probe_spikes[probe])
        assert results[0].total_spikes == results[1].total_spikes


class TestCounterParity:
    """The hardware-counter ledger is part of the conformance contract.

    Every engine populates a :class:`repro.obs.RunActivity` per run
    (DESIGN.md §12); every field — per-lane totals, per-core rollups,
    the per-tick spike series, and the attributed energy derived from
    them — must be bit-identical between the tick-accurate reference
    and each compiled engine, clean and under fault injection. For the
    event engine this doubles as the skip-correctness proof: a
    wrongly-skipped core would under-count synaptic events, active-core
    ticks, or router hops even when the rasters happen to agree.
    """

    @staticmethod
    def _activities(name, plan, batch, engine):
        case = _case(name)
        reference = Simulator(case.build(), rng=case.sim_seed, faults=plan)
        vectorized = Simulator(
            case.build(), rng=case.sim_seed, engine=engine, faults=plan
        )
        inputs = batched_inputs(
            reference.system, case.ticks, batch, case.input_seed, case.density
        )
        ref = reference.run_batch(case.ticks, inputs)
        got = vectorized.run_batch(case.ticks, inputs)
        assert ref.activity is not None and got.activity is not None
        return ref.activity, got.activity

    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    @pytest.mark.parametrize("name", CASE_NAMES)
    def test_clean_counters_bit_identical(self, name, batch, engine):
        ref, got = self._activities(name, None, batch, engine)
        assert_ledgers_identical(ref, got)

    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    @pytest.mark.parametrize("plan_name", sorted(FAULT_PLANS))
    def test_faulted_counters_bit_identical(self, plan_name, engine):
        ref, got = self._activities(
            "random_stochastic", FAULT_PLANS[plan_name], 5, engine
        )
        assert_ledgers_identical(ref, got)

    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    def test_spikes_field_matches_total_spikes(self, engine):
        case = _case("pattern_match")
        sim = Simulator(case.build(), rng=case.sim_seed, engine=engine)
        inputs = batched_inputs(
            sim.system, case.ticks, 3, case.input_seed, case.density
        )
        result = sim.run_batch(case.ticks, inputs)
        np.testing.assert_array_equal(
            result.activity.spikes, result.total_spikes
        )

    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    def test_fault_hops_reconcile_with_engine_counters(self, engine):
        """dropped/duplicated lane sums == the engine's scalar counters."""
        case = _case("random_stochastic")
        plan = FAULT_PLANS["composite"]
        sim = Simulator(
            case.build(), rng=case.sim_seed, engine=engine, faults=plan
        )
        inputs = batched_inputs(
            sim.system, case.ticks, 7, case.input_seed, case.density
        )
        result = sim.run_batch(case.ticks, inputs)
        activity = result.activity
        compiled = sim._batch_engine
        assert int(activity.dropped_spikes.sum()) == compiled._last_dropped
        assert int(activity.duplicated_spikes.sum()) == compiled._last_duplicated
        assert int(activity.router_hops.sum()) == compiled._last_delivered

    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    def test_lane_slices_match_single_lane_reference(self, engine):
        """activity.lane(i) of a batch run == lane i's reference ledger."""
        case = _case("weighted_sum")
        batch = 4
        sim = Simulator(case.build(), rng=case.sim_seed, engine=engine)
        inputs = batched_inputs(
            sim.system, case.ticks, batch, case.input_seed, case.density
        )
        result = sim.run_batch(case.ticks, inputs)

        lanes = spawn_generators(case.sim_seed, batch)
        for lane in range(batch):
            lane_inputs = {name: arr[lane] for name, arr in inputs.items()}
            ref = Simulator(case.build(), rng=lanes[lane]).run(
                case.ticks, lane_inputs
            )
            assert_ledgers_identical(
                ref.activity, result.activity.lane(lane)
            )


class TestEventEngineEdgeCases:
    """The sparsity contract at its extremes: silent, skipping, saturated."""

    def test_all_silent_touches_zero_cores(self):
        """Zero input spikes => zero cores integrated, zero activity."""
        case = _case("pattern_match")  # deterministic, leak-settled at reset
        reference = Simulator(case.build(), rng=case.sim_seed)
        event = Simulator(case.build(), rng=case.sim_seed, engine="event")
        silent = {
            name: np.zeros((case.ticks, port.width), dtype=bool)
            for name, port in event.system.input_ports.items()
        }
        ref = reference.run(case.ticks, silent)
        got = event.run(case.ticks, silent)
        assert_results_identical(ref, got)
        assert_ledgers_identical(ref.activity, got.activity)
        assert got.total_spikes == 0
        assert int(got.activity.active_core_ticks.sum()) == 0
        # The engine-internal work counter: not a single (core, tick)
        # pair was integrated.
        assert event._batch_engine.last_processed_core_ticks == 0

    def test_stochastic_cores_are_never_skipped(self):
        """Silent stochastic cores still tick (RNG stream alignment)."""
        case = _case("single_core_stochastic")
        event = Simulator(case.build(), rng=case.sim_seed, engine="event")
        silent = {
            name: np.zeros((case.ticks, port.width), dtype=bool)
            for name, port in event.system.input_ports.items()
        }
        reference = Simulator(case.build(), rng=case.sim_seed)
        ref = reference.run(case.ticks, silent)
        got = event.run(case.ticks, silent)
        assert_results_identical(ref, got)
        n_cores = len(event.system.cores)
        assert (
            event._batch_engine.last_processed_core_ticks
            == case.ticks * n_cores
        )

    def test_sparse_input_actually_skips_work(self):
        """At 1% density the event engine integrates < 60% of core-ticks.

        Not a timing assertion — a structural one: the speedup the
        density sweep in ``BENCH_engine.json`` records exists because
        work is skipped, and this pins that mechanism in tier-1.
        """
        case = _case("pattern_match")  # leak-free: quiescence is reachable
        event = Simulator(case.build(), rng=case.sim_seed, engine="event")
        inputs = shared_inputs(event.system, case.ticks, case.input_seed, 0.01)
        event.run(case.ticks, inputs)
        total = case.ticks * len(event.system.cores)
        assert 0 < event._batch_engine.last_processed_core_ticks < 0.6 * total

    @pytest.mark.parametrize("batch", [1, 7])
    def test_saturated_density_matches_batch_engine_exactly(self, batch):
        """100% input density: every counter equals the batch engine's."""
        case = _case("random_stochastic")
        vectorized = Simulator(case.build(), rng=case.sim_seed, engine="batch")
        event = Simulator(case.build(), rng=case.sim_seed, engine="event")
        inputs = batched_inputs(
            vectorized.system, case.ticks, batch, case.input_seed, 1.0
        )
        dense = vectorized.run_batch(case.ticks, inputs)
        sparse = event.run_batch(case.ticks, inputs)
        assert_results_identical(dense, sparse)
        assert_ledgers_identical(dense.activity, sparse.activity)

    def test_event_engine_backs_the_simulator_slot(self):
        """The event engine rides the compiled-engine delegation path."""
        sim = Simulator(_case("accumulator").build(), rng=0, engine="event")
        assert isinstance(sim._batch_engine, EventEngine)
        assert isinstance(sim._batch_engine, BatchEngine)


#: Hypothesis search space: small randomized corelet chains. Systems are
#: pure functions of the drawn seed (see ``random_system``), densities
#: span silent to saturated, and ticks stay small so each example runs
#: the slow reference engine too.
_PROPERTY_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
_system_seeds = st.integers(min_value=0, max_value=10**6)
_densities = st.sampled_from(DENSITIES)
_stochastic_fractions = st.sampled_from([0.0, 0.3])


class TestCrossEngineProperties:
    """Hypothesis: conformance holds for *arbitrary* corelet systems.

    The fixed cases pin known-tricky structures; these properties sample
    the space of randomized systems (mixed reset modes, leaks, floors,
    stochastic neurons, multi-delay routing) crossed with input
    densities from 0 to 100%, asserting the full contract — rasters,
    totals, and every RunActivity counter — against the reference.
    """

    @_PROPERTY_SETTINGS
    @given(
        seed=_system_seeds,
        n_cores=st.integers(min_value=1, max_value=2),
        stochastic_fraction=_stochastic_fractions,
        density=_densities,
    )
    def test_event_outputs_and_counters_match_reference(
        self, seed, n_cores, stochastic_fraction, density
    ):
        ticks = 10
        reference = Simulator(
            random_system(seed, n_cores, stochastic_fraction), rng=seed
        )
        event = Simulator(
            random_system(seed, n_cores, stochastic_fraction),
            rng=seed,
            engine="event",
        )
        inputs = shared_inputs(reference.system, ticks, seed + 1, density)
        ref = reference.run(ticks, inputs)
        got = event.run(ticks, inputs)
        assert_results_identical(ref, got)
        assert_ledgers_identical(ref.activity, got.activity)

    @_PROPERTY_SETTINGS
    @given(
        seed=_system_seeds,
        density=_densities,
        plan_name=st.sampled_from(sorted(FAULT_PLANS)),
    )
    def test_event_parity_holds_under_every_fault_kind(
        self, seed, density, plan_name
    ):
        ticks = 10
        plan = FAULT_PLANS[plan_name]
        reference = Simulator(
            random_system(seed, 2, 0.2), rng=seed, faults=plan
        )
        event = Simulator(
            random_system(seed, 2, 0.2), rng=seed, engine="event", faults=plan
        )
        inputs = shared_inputs(reference.system, ticks, seed + 1, density)
        ref = reference.run(ticks, inputs)
        got = event.run(ticks, inputs)
        assert_results_identical(ref, got)
        assert_ledgers_identical(ref.activity, got.activity)

    @_PROPERTY_SETTINGS
    @given(seed=_system_seeds, density=_densities)
    def test_compiled_engines_agree_batched(self, seed, density):
        """batch and event agree lane-for-lane on random batched runs."""
        ticks = 10
        batch = 3
        dense = Simulator(random_system(seed, 2, 0.2), rng=seed, engine="batch")
        sparse = Simulator(random_system(seed, 2, 0.2), rng=seed, engine="event")
        inputs = batched_inputs(dense.system, ticks, batch, seed + 1, density)
        got_dense = dense.run_batch(ticks, inputs)
        got_sparse = sparse.run_batch(ticks, inputs)
        assert_results_identical(got_dense, got_sparse)
        assert_ledgers_identical(got_dense.activity, got_sparse.activity)


class TestDeterminism:
    """Same seed, same system, same inputs => identical results.

    This is what the SeedSequence-based lane spawning buys: every
    engine derives its stochastic streams from the seed alone, never
    from shared mutable generator state.
    """

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("name", ["random_stochastic", "single_core_stochastic"])
    def test_same_seed_runs_identical(self, name, engine):
        case = _case(name)
        inputs = shared_inputs(
            case.build(), case.ticks, case.input_seed, case.density
        )
        results = [
            Simulator(case.build(), rng=case.sim_seed, engine=engine).run(
                case.ticks, inputs
            )
            for _ in range(2)
        ]
        for probe, raster in results[0].probe_spikes.items():
            np.testing.assert_array_equal(raster, results[1].probe_spikes[probe])
        assert results[0].total_spikes == results[1].total_spikes

    @pytest.mark.parametrize("engine", ENGINES)
    def test_same_seed_batch_runs_identical(self, engine):
        case = _case("random_stochastic")
        inputs = batched_inputs(
            case.build(), case.ticks, 4, case.input_seed, case.density
        )
        results = [
            Simulator(case.build(), rng=case.sim_seed, engine=engine).run_batch(
                case.ticks, inputs
            )
            for _ in range(2)
        ]
        for probe, raster in results[0].probe_spikes.items():
            np.testing.assert_array_equal(raster, results[1].probe_spikes[probe])
        np.testing.assert_array_equal(
            results[0].total_spikes, results[1].total_spikes
        )


class TestBatchApiValidation:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_run_batch_rejects_reset_false(self, engine):
        case = _case("accumulator")
        sim = Simulator(case.build(), rng=0, engine=engine)
        with pytest.raises(ValueError, match="reset"):
            sim.run_batch(4, batch=2, reset=False)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            Simulator(_case("accumulator").build(), engine="warp")

    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    def test_batch_size_must_be_inferable(self, engine):
        case = _case("accumulator")
        sim = Simulator(case.build(), rng=0, engine=engine)
        inputs = shared_inputs(sim.system, 4, 0, 0.5)
        with pytest.raises(ValueError, match="batch"):
            sim.run_batch(4, inputs)

    def test_inconsistent_lane_counts_rejected(self):
        system = _case("accumulator").build()
        with pytest.raises(ValueError, match="batch"):
            normalize_batch_inputs(
                system, 4, {"in": np.zeros((3, 4, 16), dtype=bool)}, batch=2
            )

    def test_misshapen_raster_rejected(self):
        system = _case("accumulator").build()
        with pytest.raises(ValueError, match="raster"):
            normalize_batch_inputs(
                system, 4, {"in": np.zeros((4, 99), dtype=bool)}, batch=1
            )

    @pytest.mark.parametrize("engine_cls", [BatchEngine, EventEngine])
    def test_reset_false_with_changed_batch_rejected(self, engine_cls):
        case = _case("accumulator")
        engine = engine_cls(case.build())
        engine.run(2, {}, spawn_generators(0, 3))
        with pytest.raises(ValueError, match="batch"):
            engine.run(2, {}, spawn_generators(0, 2), reset=False)

    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    def test_zero_ticks(self, engine):
        case = _case("accumulator")
        sim = Simulator(case.build(), rng=0, engine=engine)
        result = sim.run_batch(0, batch=2)
        assert result.probe_spikes["out"].shape == (2, 0, 4)
        np.testing.assert_array_equal(result.total_spikes, [0, 0])
