"""Differential conformance: batch engine vs the tick-accurate reference.

The batch engine is only trustworthy if it is *bit-identical* to the
reference simulator — the software analogue of the paper's >99.5 % HW/SW
correlation methodology, tightened to exact equality. Every scenario in
``tests/engine_systems.py`` (corelet-built and randomized, deterministic
and stochastic) is run through both engines at batch sizes 1, 7, and 32
with fixed seeds, comparing full probe rasters and total spike counts.
"""

import numpy as np
import pytest

from repro.truenorth.engine import BatchEngine, normalize_batch_inputs
from repro.truenorth.simulator import Simulator
from repro.utils.rng import spawn_generators

from tests.engine_systems import (
    CASES_BY_NAME,
    ENGINE_CASES,
    batched_inputs,
    shared_inputs,
)

CASE_NAMES = [case.name for case in ENGINE_CASES]
BATCH_SIZES = [1, 7, 32]


def _case(name):
    return CASES_BY_NAME[name]


class TestSingleRunConformance:
    @pytest.mark.parametrize("name", CASE_NAMES)
    def test_run_is_bit_identical(self, name):
        case = _case(name)
        reference = Simulator(case.build(), rng=case.sim_seed)
        batch = Simulator(case.build(), rng=case.sim_seed, engine="batch")
        inputs = shared_inputs(
            reference.system, case.ticks, case.input_seed, case.density
        )

        ref = reference.run(case.ticks, inputs)
        got = batch.run(case.ticks, inputs)

        assert ref.probe_spikes.keys() == got.probe_spikes.keys()
        for probe, raster in ref.probe_spikes.items():
            np.testing.assert_array_equal(raster, got.probe_spikes[probe])
        assert ref.total_spikes == got.total_spikes

    @pytest.mark.parametrize("name", ["comparator", "random_stochastic"])
    def test_reset_false_continuation_matches(self, name):
        case = _case(name)
        reference = Simulator(case.build(), rng=case.sim_seed)
        batch = Simulator(case.build(), rng=case.sim_seed, engine="batch")
        inputs = shared_inputs(
            reference.system, case.ticks, case.input_seed, case.density
        )

        for sim in (reference, batch):
            sim.run(case.ticks, inputs)
        # The second run continues membrane potentials AND spikes still in
        # flight in the router mailbox.
        ref = reference.run(case.ticks, inputs, reset=False)
        got = batch.run(case.ticks, inputs, reset=False)
        for probe, raster in ref.probe_spikes.items():
            np.testing.assert_array_equal(raster, got.probe_spikes[probe])
        assert ref.total_spikes == got.total_spikes


class TestBatchRunConformance:
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    @pytest.mark.parametrize("name", CASE_NAMES)
    def test_run_batch_is_bit_identical(self, name, batch):
        case = _case(name)
        reference = Simulator(case.build(), rng=case.sim_seed)
        vectorized = Simulator(case.build(), rng=case.sim_seed, engine="batch")
        inputs = batched_inputs(
            reference.system, case.ticks, batch, case.input_seed, case.density
        )

        ref = reference.run_batch(case.ticks, inputs)
        got = vectorized.run_batch(case.ticks, inputs)

        assert ref.batch == got.batch == batch
        assert ref.probe_spikes.keys() == got.probe_spikes.keys()
        for probe, raster in ref.probe_spikes.items():
            np.testing.assert_array_equal(raster, got.probe_spikes[probe])
        np.testing.assert_array_equal(ref.total_spikes, got.total_spikes)

    @pytest.mark.parametrize("name", ["weighted_sum", "random_stochastic"])
    def test_lane_equals_spawned_reference_run(self, name):
        """Lane i of a batch run == a reference run seeded with spawn[i]."""
        case = _case(name)
        batch = 5
        vectorized = Simulator(case.build(), rng=case.sim_seed, engine="batch")
        inputs = batched_inputs(
            vectorized.system, case.ticks, batch, case.input_seed, case.density
        )
        result = vectorized.run_batch(case.ticks, inputs)

        lanes = spawn_generators(case.sim_seed, batch)
        for lane in range(batch):
            lane_inputs = {name_: arr[lane] for name_, arr in inputs.items()}
            ref = Simulator(case.build(), rng=lanes[lane]).run(
                case.ticks, lane_inputs
            )
            single = result.lane(lane)
            for probe, raster in ref.probe_spikes.items():
                np.testing.assert_array_equal(raster, single.probe_spikes[probe])
            assert ref.total_spikes == single.total_spikes

    def test_shared_raster_broadcasts_to_every_lane(self):
        """A 2-D raster feeds every lane; deterministic lanes agree."""
        case = _case("accumulator")
        sim = Simulator(case.build(), rng=0, engine="batch")
        inputs = shared_inputs(sim.system, case.ticks, case.input_seed, case.density)
        result = sim.run_batch(case.ticks, inputs, batch=4)
        raster = result.probe_spikes["out"]
        for lane in range(1, 4):
            np.testing.assert_array_equal(raster[0], raster[lane])

    def test_stochastic_lanes_are_independent(self):
        case = _case("single_core_stochastic")
        sim = Simulator(case.build(), rng=9, engine="batch")
        inputs = shared_inputs(sim.system, case.ticks, case.input_seed, case.density)
        result = sim.run_batch(case.ticks, inputs, batch=4)
        raster = result.probe_spikes["out"]
        assert any(
            not np.array_equal(raster[0], raster[lane]) for lane in range(1, 4)
        )


class TestDeterminism:
    """Same seed, same system, same inputs => identical results.

    This is what the SeedSequence-based lane spawning buys: the two
    engines derive their stochastic streams from the seed alone, never
    from shared mutable generator state.
    """

    @pytest.mark.parametrize("engine", ["reference", "batch"])
    @pytest.mark.parametrize("name", ["random_stochastic", "single_core_stochastic"])
    def test_same_seed_runs_identical(self, name, engine):
        case = _case(name)
        inputs = shared_inputs(
            case.build(), case.ticks, case.input_seed, case.density
        )
        results = [
            Simulator(case.build(), rng=case.sim_seed, engine=engine).run(
                case.ticks, inputs
            )
            for _ in range(2)
        ]
        for probe, raster in results[0].probe_spikes.items():
            np.testing.assert_array_equal(raster, results[1].probe_spikes[probe])
        assert results[0].total_spikes == results[1].total_spikes

    @pytest.mark.parametrize("engine", ["reference", "batch"])
    def test_same_seed_batch_runs_identical(self, engine):
        case = _case("random_stochastic")
        inputs = batched_inputs(
            case.build(), case.ticks, 4, case.input_seed, case.density
        )
        results = [
            Simulator(case.build(), rng=case.sim_seed, engine=engine).run_batch(
                case.ticks, inputs
            )
            for _ in range(2)
        ]
        for probe, raster in results[0].probe_spikes.items():
            np.testing.assert_array_equal(raster, results[1].probe_spikes[probe])
        np.testing.assert_array_equal(
            results[0].total_spikes, results[1].total_spikes
        )


class TestBatchApiValidation:
    @pytest.mark.parametrize("engine", ["reference", "batch"])
    def test_run_batch_rejects_reset_false(self, engine):
        case = _case("accumulator")
        sim = Simulator(case.build(), rng=0, engine=engine)
        with pytest.raises(ValueError, match="reset"):
            sim.run_batch(4, batch=2, reset=False)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            Simulator(_case("accumulator").build(), engine="warp")

    def test_batch_size_must_be_inferable(self):
        case = _case("accumulator")
        sim = Simulator(case.build(), rng=0, engine="batch")
        inputs = shared_inputs(sim.system, 4, 0, 0.5)
        with pytest.raises(ValueError, match="batch"):
            sim.run_batch(4, inputs)

    def test_inconsistent_lane_counts_rejected(self):
        system = _case("accumulator").build()
        with pytest.raises(ValueError, match="batch"):
            normalize_batch_inputs(
                system, 4, {"in": np.zeros((3, 4, 16), dtype=bool)}, batch=2
            )

    def test_misshapen_raster_rejected(self):
        system = _case("accumulator").build()
        with pytest.raises(ValueError, match="raster"):
            normalize_batch_inputs(
                system, 4, {"in": np.zeros((4, 99), dtype=bool)}, batch=1
            )

    def test_reset_false_with_changed_batch_rejected(self):
        case = _case("accumulator")
        engine = BatchEngine(case.build())
        engine.run(2, {}, spawn_generators(0, 3))
        with pytest.raises(ValueError, match="batch"):
            engine.run(2, {}, spawn_generators(0, 2), reset=False)

    def test_zero_ticks(self):
        case = _case("accumulator")
        sim = Simulator(case.build(), rng=0, engine="batch")
        result = sim.run_batch(0, batch=2)
        assert result.probe_spikes["out"].shape == (2, 0, 4)
        np.testing.assert_array_equal(result.total_spikes, [0, 0])
