"""Unit tests for ``repro.obs`` span tracing and the trace ring buffer."""

import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    SpanRecord,
    TraceLog,
    configure,
    enabled,
    observe_span,
    span,
    span_metric_name,
    summarize_spans,
    trace_log,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture(autouse=True)
def clean_trace_log():
    trace_log().clear()
    yield
    trace_log().clear()


class TestSpan:
    def test_records_duration_histogram(self, registry):
        with span("sim.run", registry=registry):
            pass
        metric = registry.get(span_metric_name("sim.run"))
        assert metric is not None
        assert metric.count == 1
        assert metric.sum >= 0.0

    def test_metric_name_sanitized(self):
        assert span_metric_name("pyramid.level") == "span_pyramid_level_seconds"

    def test_nesting_builds_path_and_depth(self, registry):
        with span("outer", registry=registry):
            with span("inner", registry=registry):
                pass
        records = trace_log().entries()
        inner, outer = records[-2], records[-1]  # inner closes first
        assert inner.path == "outer/inner" and inner.depth == 1
        assert outer.path == "outer" and outer.depth == 0

    def test_exception_still_recorded_and_stack_unwound(self, registry):
        with pytest.raises(RuntimeError):
            with span("fails", registry=registry):
                raise RuntimeError("boom")
        assert registry.get(span_metric_name("fails")).count == 1
        with span("after", registry=registry):
            pass
        assert trace_log().entries()[-1].path == "after"  # not fails/after

    def test_attrs_carried_on_record(self, registry):
        with span("lvl", registry=registry, scale=1.1):
            pass
        assert trace_log().entries()[-1].attrs == {"scale": 1.1}

    def test_threads_have_independent_stacks(self, registry):
        paths = []

        def worker():
            with span("worker.outer", registry=registry):
                pass
            paths.append(trace_log().entries()[-1].path)

        with span("main.outer", registry=registry):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert paths == ["worker.outer"]  # no cross-thread nesting

    def test_observe_span_low_level_hook(self, registry):
        observe_span("drain", 0.25, registry=registry)
        metric = registry.get(span_metric_name("drain"))
        assert metric.count == 1
        assert metric.sum == pytest.approx(0.25)

    def test_configure_disables_recording(self, registry):
        assert enabled()
        configure(False)
        try:
            with span("quiet", registry=registry):
                pass
            observe_span("quiet2", 1.0, registry=registry)
            assert registry.get(span_metric_name("quiet")) is None
            assert registry.get(span_metric_name("quiet2")) is None
            assert trace_log().entries() == []
        finally:
            configure(True)
        assert enabled()


class TestTraceLog:
    def test_ring_buffer_bounded_and_counts_drops(self):
        log = TraceLog(maxlen=3)
        for i in range(5):
            log.append(
                SpanRecord(
                    name=f"s{i}", path=f"s{i}", duration_s=0.0,
                    depth=0, thread="t",
                )
            )
        entries = log.entries()
        assert [r.name for r in entries] == ["s2", "s3", "s4"]
        assert log.dropped == 2

    def test_rejects_bad_maxlen(self):
        with pytest.raises(ValueError):
            TraceLog(maxlen=0)

    def test_clear(self):
        log = TraceLog(maxlen=2)
        log.append(
            SpanRecord(name="s", path="s", duration_s=0.0, depth=0, thread="t")
        )
        log.clear()
        assert log.entries() == [] and log.dropped == 0

    def test_concurrent_appends_keep_seqs_contiguous(self):
        """8 threads hammering append: no lost or duplicated seqs.

        The lock assigns sequence numbers, so after the dust settles the
        retained records must carry exactly the contiguous range
        ``[dropped, total)`` and the drop counter must be exact — no
        interleaving may lose a span silently.
        """
        log = TraceLog(maxlen=64)
        per_thread = 50
        n_threads = 8

        def worker(name):
            for i in range(per_thread):
                log.append(
                    SpanRecord(
                        name=f"w{name}.{i}", path=f"w{name}.{i}",
                        duration_s=0.0, depth=0, thread=f"w{name}",
                    )
                )

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = n_threads * per_thread
        assert log.total == total
        assert log.dropped == total - 64
        seqs = [seq for seq, _ in log.records()]
        assert seqs == list(range(total - 64, total))
        # Every retained record is a distinct appended span.
        names = {record.name for _, record in log.records()}
        assert len(names) == 64


class TestSummarizeSpans:
    def test_aggregates_only_span_histograms(self, registry):
        registry.histogram("serve_latency_seconds").observe(0.1)
        with span("a.b", registry=registry):
            pass
        summary = summarize_spans(registry)
        assert set(summary) == {"span_a_b_seconds"}
        entry = summary["span_a_b_seconds"]
        assert entry["count"] == 1
        assert set(entry) == {"count", "sum", "mean", "p50", "p99", "max"}
