"""Tests for IoU and non-maximum suppression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection import non_maximum_suppression
from repro.detection.nms import box_iou


class TestIoU:
    def test_identical(self):
        box = np.array([[0, 0, 10, 10]])
        assert box_iou(box, box)[0, 0] == 1.0

    def test_disjoint(self):
        a = np.array([[0, 0, 5, 5]])
        b = np.array([[10, 10, 5, 5]])
        assert box_iou(a, b)[0, 0] == 0.0

    def test_half_overlap(self):
        a = np.array([[0, 0, 10, 10]])
        b = np.array([[0, 5, 10, 10]])
        assert np.isclose(box_iou(a, b)[0, 0], 50 / 150)

    def test_contained(self):
        a = np.array([[0, 0, 10, 10]])
        b = np.array([[2, 2, 5, 5]])
        assert np.isclose(box_iou(a, b)[0, 0], 25 / 100)

    def test_matrix_shape(self):
        a = np.zeros((3, 4))
        a[:, 2:] = 1
        b = np.zeros((2, 4))
        b[:, 2:] = 1
        assert box_iou(a, b).shape == (3, 2)

    def test_zero_area_safe(self):
        a = np.array([[0, 0, 0, 0]])
        assert box_iou(a, a)[0, 0] == 0.0

    @given(
        st.tuples(
            st.floats(0, 50), st.floats(0, 50), st.floats(1, 20), st.floats(1, 20)
        ),
        st.tuples(
            st.floats(0, 50), st.floats(0, 50), st.floats(1, 20), st.floats(1, 20)
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_symmetric_and_bounded(self, a, b):
        box_a = np.array([a])
        box_b = np.array([b])
        ab = box_iou(box_a, box_b)[0, 0]
        ba = box_iou(box_b, box_a)[0, 0]
        assert np.isclose(ab, ba)
        assert 0.0 <= ab <= 1.0


class TestNMS:
    def test_keeps_highest(self):
        boxes = np.array([[0, 0, 10, 10], [1, 1, 10, 10]])
        scores = np.array([0.5, 0.9])
        kept = non_maximum_suppression(boxes, scores, epsilon=0.2)
        assert kept == [1]

    def test_disjoint_all_kept(self):
        boxes = np.array([[0, 0, 10, 10], [100, 100, 10, 10]])
        scores = np.array([0.5, 0.9])
        kept = non_maximum_suppression(boxes, scores, epsilon=0.2)
        assert sorted(kept) == [0, 1]

    def test_order_by_score(self):
        boxes = np.array([[0, 0, 10, 10], [100, 0, 10, 10], [200, 0, 10, 10]])
        scores = np.array([0.2, 0.9, 0.5])
        kept = non_maximum_suppression(boxes, scores)
        assert kept == [1, 2, 0]

    def test_epsilon_controls_aggressiveness(self):
        boxes = np.array([[0, 0, 10, 10], [3, 0, 10, 10]])  # IoU ~0.54
        scores = np.array([0.9, 0.8])
        assert len(non_maximum_suppression(boxes, scores, epsilon=0.2)) == 1
        assert len(non_maximum_suppression(boxes, scores, epsilon=0.6)) == 2

    def test_empty(self):
        assert non_maximum_suppression(np.zeros((0, 4)), np.zeros(0)) == []

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            non_maximum_suppression(np.zeros((2, 4)), np.zeros(3))

    def test_bad_epsilon(self):
        with pytest.raises(ValueError):
            non_maximum_suppression(np.zeros((1, 4)), np.zeros(1), epsilon=1.5)

    @given(st.integers(1, 20))
    @settings(max_examples=20, deadline=None)
    def test_kept_boxes_mutually_low_overlap(self, n):
        rng = np.random.default_rng(n)
        boxes = np.column_stack(
            [
                rng.uniform(0, 50, n),
                rng.uniform(0, 50, n),
                rng.uniform(5, 20, n),
                rng.uniform(5, 20, n),
            ]
        )
        scores = rng.random(n)
        kept = non_maximum_suppression(boxes, scores, epsilon=0.3)
        iou = box_iou(boxes[kept], boxes[kept])
        np.fill_diagonal(iou, 0.0)
        assert iou.max(initial=0.0) <= 0.3 + 1e-9


class TestNmsEdgeCases:
    """Degenerate inputs the batched detection pipeline now exercises."""

    def test_single_box_always_kept(self):
        kept = non_maximum_suppression(
            np.array([[3.0, 4.0, 10.0, 20.0]]), np.array([-2.5])
        )
        assert kept == [0]

    def test_fully_overlapping_boxes_keep_only_best(self):
        boxes = np.tile(np.array([[0.0, 0.0, 10.0, 10.0]]), (5, 1))
        scores = np.array([0.1, 0.9, 0.3, 0.5, 0.2])
        assert non_maximum_suppression(boxes, scores) == [1]

    def test_fully_overlapping_tie_keeps_one(self):
        boxes = np.tile(np.array([[1.0, 1.0, 8.0, 8.0]]), (3, 1))
        scores = np.zeros(3)
        assert len(non_maximum_suppression(boxes, scores)) == 1

    def test_zero_area_boxes_do_not_suppress_each_other(self):
        boxes = np.array([[0.0, 0.0, 0.0, 0.0], [0.0, 0.0, 0.0, 0.0]])
        kept = non_maximum_suppression(boxes, np.array([1.0, 0.5]))
        assert sorted(kept) == [0, 1]

    def test_epsilon_one_keeps_partial_overlaps(self):
        boxes = np.array([[0.0, 0.0, 10.0, 10.0], [1.0, 1.0, 10.0, 10.0]])
        kept = non_maximum_suppression(boxes, np.array([1.0, 0.9]), epsilon=1.0)
        assert sorted(kept) == [0, 1]

    def test_epsilon_zero_suppresses_any_overlap(self):
        boxes = np.array([[0.0, 0.0, 10.0, 10.0], [9.0, 9.0, 10.0, 10.0]])
        kept = non_maximum_suppression(boxes, np.array([1.0, 0.9]), epsilon=0.0)
        assert kept == [0]


class TestTiedScoreDeterminism:
    def test_tied_scores_keep_input_order(self):
        """Regression: the default introsort is unstable, so tied-score
        detections could be visited (and therefore kept) in a
        platform-dependent order. The stable sort must visit ties in
        input order — here the first of three identical overlapping
        boxes wins, plus the disjoint tied box."""
        boxes = np.array(
            [
                [0, 0, 10, 10],
                [1, 0, 10, 10],   # overlaps box 0 heavily
                [2, 0, 10, 10],   # overlaps both
                [100, 0, 10, 10],  # disjoint
            ],
            dtype=float,
        )
        scores = np.full(4, 0.7)
        kept = non_maximum_suppression(boxes, scores, epsilon=0.2)
        assert kept == [0, 3]

    def test_tied_scores_deterministic_across_permuted_padding(self):
        """The kept set of the tied block must not depend on how many
        other entries the sort happens to shuffle around it."""
        rng = np.random.default_rng(0)
        tied_boxes = np.array([[0, 0, 10, 10], [1, 0, 10, 10]], dtype=float)
        tied_scores = np.array([0.5, 0.5])
        baseline = None
        for n_pad in (0, 1, 17, 64):
            far = np.column_stack(
                [
                    rng.uniform(1000, 2000, n_pad),
                    rng.uniform(1000, 2000, n_pad),
                    np.full(n_pad, 5.0),
                    np.full(n_pad, 5.0),
                ]
            ).reshape(n_pad, 4)
            boxes = np.vstack([tied_boxes, far])
            scores = np.concatenate([tied_scores, np.full(n_pad, 0.1)])
            kept = non_maximum_suppression(boxes, scores, epsilon=0.2)
            tied_kept = tuple(i for i in kept if i < 2)
            if baseline is None:
                baseline = tied_kept
            assert tied_kept == baseline == (0,)

    def test_descending_among_distinct_scores_unchanged(self):
        boxes = np.array(
            [[0, 0, 10, 10], [100, 0, 10, 10], [200, 0, 10, 10]], dtype=float
        )
        scores = np.array([0.1, 0.9, 0.5])
        assert non_maximum_suppression(boxes, scores) == [1, 2, 0]
