"""The sharded (multi-process) serving tier.

Covers the consistent-hash ring, bit-identity with in-process serving,
the shared parent-side result cache, ledger/energy re-recording across
the process boundary, per-shard circuit breakers, and worker
death/respawn. Worker processes are real forks — tests here are
intentionally small so the suite stays fast.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    QueueFullError,
    ServiceClosedError,
    TransientScorerError,
)
from repro.serve import (
    HashRing,
    InferenceService,
    NApproxCellModel,
    ShardedInferenceService,
    content_key,
    random_patch_rows,
)


class _Affine:
    """Tiny deterministic model (no engine) for fast process tests."""

    model_id = "affine-test"
    cacheable = True

    def __call__(self, matrix):
        return np.asarray(matrix)[:, 0] * 10.0 + 1.0


class _CrashOnNegative:
    """Kills its own process when a batch contains a negative value."""

    model_id = "crash-test"
    cacheable = True

    def __call__(self, matrix):
        matrix = np.asarray(matrix)
        if (matrix < 0).any():
            os.kill(os.getpid(), signal.SIGKILL)
        return matrix[:, 0] * 2.0


class _AlwaysRaises:
    model_id = "raises-test"
    cacheable = True

    def __call__(self, matrix):
        raise RuntimeError("worker-side model failure")


def _sharded(model, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("max_batch_size", 8)
    kwargs.setdefault("max_wait_ms", 1.0)
    kwargs.setdefault("result_timeout_s", 0.2)
    return ShardedInferenceService(model, **kwargs)


class TestHashRing:
    def test_routing_is_deterministic(self):
        ring = HashRing(4)
        keys = [content_key("m", np.array([float(i)])) for i in range(64)]
        first = [ring.shard_for(k) for k in keys]
        second = [HashRing(4).shard_for(k) for k in keys]
        assert first == second

    def test_covers_every_shard(self):
        ring = HashRing(4)
        keys = [content_key("m", np.array([float(i)])) for i in range(256)]
        assert {ring.shard_for(k) for k in keys} == {0, 1, 2, 3}

    def test_resize_moves_few_keys(self):
        """Consistent hashing: going 4 -> 5 shards remaps ~1/5 of keys."""
        keys = [content_key("m", np.array([float(i)])) for i in range(2000)]
        before = [HashRing(4).shard_for(k) for k in keys]
        after = [HashRing(5).shard_for(k) for k in keys]
        moved = sum(1 for a, b in zip(before, after) if a != b)
        assert moved < len(keys) * 0.45  # naive modulo would move ~80 %

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HashRing(0)
        with pytest.raises(ConfigurationError):
            HashRing(2, replicas=0)


class TestShardedService:
    def test_results_bit_identical_to_in_process(self):
        rows = np.random.default_rng(0).random((32, 3))
        with InferenceService(_Affine(), max_batch_size=8) as single:
            expected = single.score_many(rows)
        with _sharded(_Affine()) as sharded:
            got = sharded.score_many(rows)
        np.testing.assert_array_equal(expected, got)

    def test_routing_uses_the_content_ring(self):
        service = _sharded(_Affine(), workers=4)
        rows = np.random.default_rng(1).random((32, 3))
        for row in rows:
            shard = service.shard_of(row)
            key = content_key(service.model_id, row)
            assert shard == service.ring.shard_for(key)
        service.close()

    def test_shared_cache_hits_across_shards(self):
        rows = np.random.default_rng(2).random((8, 3))
        with _sharded(_Affine(), workers=2) as service:
            service.score_many(rows)  # warm
            again = service.score_many(rows)
            assert service.stats.counter("cache_hits") == 8
            # hits resolve in the parent: no new dispatches needed
            assert service.stats.counter("submitted") == 16
        with InferenceService(_Affine(), max_batch_size=8) as single:
            expected = single.score_many(rows)
        np.testing.assert_array_equal(expected, again)

    def test_uncacheable_model_disables_cache(self):
        class Uncacheable(_Affine):
            cacheable = False

        service = _sharded(Uncacheable())
        assert service.cache is None
        service.close()

    def test_queue_full_rejects_cleanly(self):
        service = _sharded(_Affine(), workers=1, queue_capacity=1)
        # never started: requests queue up and the second must bounce
        service._started = True
        service.submit(np.zeros(3))
        with pytest.raises(QueueFullError):
            service.submit(np.ones(3))
        service._started = False
        service._closed = True

    def test_closed_service_rejects_submissions(self):
        service = _sharded(_Affine())
        with pytest.raises(ServiceClosedError):
            service.submit(np.zeros(3))  # not started
        service.start()
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(np.zeros(3))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShardedInferenceService(_Affine(), workers=0)
        with pytest.raises(ConfigurationError):
            _sharded(_Affine(), queue_capacity=0)
        with pytest.raises(ConfigurationError):
            _sharded(_Affine(), result_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            _sharded(_Affine(), max_redispatches=-1)


class TestWorkerDeath:
    def test_killed_worker_is_respawned_and_batch_redispatched(self):
        """SIGKILL mid-batch: the batch still completes on the respawn."""
        with _sharded(_CrashOnNegative(), workers=1) as service:
            before = service._shards[0].process.pid
            os.kill(before, signal.SIGKILL)
            service._shards[0].process.join(timeout=5.0)
            score = service.score(np.array([3.0, 0.0, 0.0]), timeout_s=30.0)
            assert score == 6.0
            after = service._shards[0].process.pid
            assert after != before
            assert service.stats.counter("worker_deaths") == 1
            assert service.stats.counter("worker_respawns") == 1
            assert service.stats.counter("redispatches") >= 1

    def test_persistent_crash_exhausts_redispatch_budget(self):
        """A batch that kills every worker it reaches eventually fails."""
        with _sharded(
            _CrashOnNegative(),
            workers=1,
            max_redispatches=1,
            breaker_failure_threshold=0,
        ) as service:
            future = service.submit(np.array([-1.0, 0.0, 0.0]))
            with pytest.raises(TransientScorerError):
                future.result(timeout=30.0)
            assert service.stats.counter("worker_deaths") == 2
            # the shard recovered: clean requests still serve
            assert service.score(np.array([2.0, 0.0, 0.0])) == 4.0


class TestShardBreakers:
    def test_worker_exception_fails_batch_transiently(self):
        with _sharded(_AlwaysRaises(), workers=1) as service:
            with pytest.raises(TransientScorerError, match="RuntimeError"):
                service.score(np.zeros(3))
            # worker survived the exception: no death, no respawn
            assert service.stats.counter("worker_deaths") == 0

    def test_breaker_opens_after_threshold_and_cools_down(self):
        with _sharded(
            _AlwaysRaises(),
            workers=1,
            breaker_failure_threshold=2,
            breaker_reset_timeout_s=0.2,
            cache_capacity=0,
        ) as service:
            for i in range(2):
                with pytest.raises(TransientScorerError):
                    service.score(np.full(3, float(i)))
            # breaker now open: next batch fails fast without a dispatch
            dispatches = service.stats.counter("dispatches")
            with pytest.raises(CircuitOpenError):
                service.score(np.full(3, 9.0))
            assert service.stats.counter("dispatches") == dispatches
            assert service.stats.counter("breaker_opens") >= 1
            # after the cooldown, a half-open probe reaches the worker
            time.sleep(0.3)
            with pytest.raises(TransientScorerError):
                service.score(np.full(3, 11.0))
            assert service.stats.counter("dispatches") == dispatches + 1

    def test_breakers_are_per_shard(self):
        service = _sharded(_Affine(), workers=3, breaker_failure_threshold=2)
        breakers = [shard.breaker for shard in service._shards]
        assert len({id(b) for b in breakers}) == 3
        assert all(b is not None for b in breakers)
        assert all(b._clock is service.clock for b in breakers)
        service.close()


class TestEngineWorkloadParity:
    """The real engine workload across the process boundary."""

    @pytest.fixture(scope="class")
    def rows(self):
        return random_patch_rows(12, rng=7)

    def test_engine_scores_ledgers_energy_match(self, rows):
        with InferenceService(
            NApproxCellModel(window=8, engine="batch", cores_per_chip=8),
            max_batch_size=4,
            max_wait_ms=1.0,
        ) as single:
            expected = single.score_many(rows)
            single_snap = single.stats.snapshot()
        with _sharded(
            NApproxCellModel(window=8, engine="batch", cores_per_chip=8),
            workers=2,
            max_batch_size=4,
            result_timeout_s=2.0,
        ) as sharded:
            got = sharded.score_many(rows)
            shard_snap = sharded.stats.snapshot()
        np.testing.assert_array_equal(expected, got)
        for key in (
            "hw_router_hops",
            "hw_cross_chip_hops",
            "hw_intra_chip_hops",
        ):
            assert (
                single_snap["counters"][key] == shard_snap["counters"][key]
            ), key
        assert shard_snap["counters"]["hw_cross_chip_hops"] > 0
        assert single_snap["energy_nj"]["count"] == len(rows)
        assert shard_snap["energy_nj"]["count"] == len(rows)
        # per-request energies are bit-identical; totals are compared as
        # sorted multisets because each mode sums in its own batch order
        assert single_snap["energy_nj"]["total"] == pytest.approx(
            shard_snap["energy_nj"]["total"], rel=1e-12
        )


class TestShardedTracing:
    """Distributed tracing and telemetry across the fork boundary."""

    @pytest.fixture(autouse=True)
    def clean_obs_state(self):
        from repro.obs import flight_recorder, trace_log

        trace_log().clear()
        flight_recorder().clear()
        yield
        trace_log().clear()
        flight_recorder().clear()

    def test_one_assembled_trace_per_request_crosses_the_fork(self):
        """Every request yields one trace whose span tree spans the
        parent (submit, dispatch/execute) and the worker process
        (score), stitched over explicit parent ids."""
        from repro.obs.traces import (
            assemble_traces,
            to_chrome_trace,
            validate_chrome_trace,
        )

        rows = np.random.default_rng(5).random((6, 3))
        with _sharded(_Affine(), cache_capacity=0) as service:
            service.score_many(rows)
        traces = [
            trace
            for trace in assemble_traces()
            if any(event.kind == "enqueue" for event in trace.events)
        ]
        assert len(traces) == 6
        for trace in traces:
            names = {record.name for record in trace.spans}
            assert {
                "serve.submit",
                "serve.shard.execute",
                "serve.shard.worker.score",
            } <= names
            assert len(trace.pids) == 2  # parent + the scoring worker
            execute = next(
                r for r in trace.spans if r.name == "serve.shard.execute"
            )
            score = next(
                r for r in trace.spans if r.name == "serve.shard.worker.score"
            )
            # the cross-process parent/child edge
            assert score.parent_id == execute.span_id
            assert score.pid != execute.pid and execute.pid == os.getpid()
            # worker ids are namespaced per shard; parent ids are bare
            assert score.span_id.split("-")[0] == f"s{score.attrs['shard']}"
            assert "-" not in execute.span_id
            # the tree roots in the parent and nests the worker span
            tree_names = {node["name"] for node in trace.span_tree()}
            assert "serve.shard.worker.score" not in tree_names
        document = to_chrome_trace(traces)
        validate_chrome_trace(document)

    def test_worker_metrics_merge_with_shard_labels(self):
        """Worker-side registry deltas land in the parent registry
        labeled per shard, alongside the parent's unlabeled series."""
        rows = np.random.default_rng(6).random((16, 3))
        with _sharded(_Affine(), cache_capacity=0) as service:
            service.score_many(rows)
            registry = service.stats.registry
        shard_series = [
            registry.get(
                "span_serve_shard_worker_score_seconds",
                labels={"shard": str(index)},
            )
            for index in range(2)
        ]
        present = [metric for metric in shard_series if metric is not None]
        assert present, "no shard-labeled worker span histogram merged"
        assert sum(metric.snapshot()["count"] for metric in present) > 0
        exposition = registry.render_prometheus()
        assert 'span_serve_shard_worker_score_seconds_count{shard="' in (
            exposition
        )

    def test_worker_spans_ship_even_when_tracing_off(self):
        """With tracing disabled nothing ships and nothing breaks."""
        from repro.obs import tracing
        from repro.obs.traces import assemble_traces

        tracing.configure(False)
        try:
            rows = np.random.default_rng(7).random((4, 3))
            with _sharded(_Affine(), cache_capacity=0) as service:
                got = service.score_many(rows)
            assert got.shape == (4,)
            assert all(not t.spans for t in assemble_traces())
        finally:
            tracing.configure(True)
