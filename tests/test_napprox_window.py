"""Tests for window-scale NApprox deployments."""

import pytest

from repro.napprox.window import (
    WINDOW_CELLS,
    build_window_deployment,
    window_core_budget,
)


class TestBuild:
    def test_small_deployment(self):
        deployment = build_window_deployment(n_cells=3, cores_per_chip=50)
        assert len(deployment.footprints) == 3
        assert deployment.cores_per_cell == 22
        assert deployment.total_cores == 66
        assert deployment.system.core_count == 66

    def test_modules_never_split_across_chips(self):
        deployment = build_window_deployment(n_cells=4, cores_per_chip=45)
        # 45 cores per chip fit exactly two 22-core modules; intra-module
        # routes must not cross chips.
        assert deployment.placement.inter_chip_routes == 0
        assert deployment.placement.chips == 2

    def test_distinct_modules_have_distinct_cores(self):
        deployment = build_window_deployment(n_cells=2)
        a = set(deployment.footprints[0].core_ids)
        b = set(deployment.footprints[1].core_ids)
        assert not a & b

    def test_validation(self):
        with pytest.raises(ValueError):
            build_window_deployment(n_cells=0)


class TestBudget:
    def test_full_window(self):
        total, chips = window_core_budget(22)
        assert total == 22 * WINDOW_CELLS == 2816
        assert chips == 1

    def test_paper_module_size(self):
        total, chips = window_core_budget(26)
        assert total == 3328
        assert chips == 1

    def test_zero(self):
        assert window_core_budget(0) == (0, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            window_core_budget(-1)
