"""Tests for SplitterCorelet."""

import numpy as np
import pytest

from repro.corelets import compile_corelet
from repro.corelets.library import SplitterCorelet
from repro.errors import CompilationError
from repro.truenorth import Simulator


def _run(corelet, raster, ticks):
    program = compile_corelet(corelet)
    result = Simulator(program.system, rng=0).run(ticks, {"in": raster})
    return result.spike_counts("out"), program


class TestUniformFanout:
    def test_copies_counts(self):
        corelet = SplitterCorelet(2, 3)
        raster = np.zeros((6, 2), dtype=bool)
        raster[:4, 0] = True
        raster[:2, 1] = True
        counts, _ = _run(corelet, raster, 6)
        # Copy-major: [line0_c0, line1_c0, line0_c1, line1_c1, ...]
        assert list(counts) == [4, 2, 4, 2, 4, 2]

    def test_latency_one_tick(self):
        corelet = SplitterCorelet(1, 1)
        program = compile_corelet(corelet)
        raster = np.zeros((3, 1), dtype=bool)
        raster[0, 0] = True
        result = Simulator(program.system, rng=0).run(3, {"in": raster})
        assert list(np.flatnonzero(result.probe_spikes["out"][:, 0])) == [0]


class TestVariableFanout:
    def test_line_major_outputs(self):
        corelet = SplitterCorelet(2, [1, 3])
        assert corelet.output_width == 4
        raster = np.zeros((5, 2), dtype=bool)
        raster[:4, 1] = True
        counts, _ = _run(corelet, raster, 5)
        assert list(counts) == [0, 4, 4, 4]


class TestPacking:
    def test_multi_core_when_neurons_exhausted(self):
        corelet = SplitterCorelet(100, 4)  # 400 neurons > 256
        program = compile_corelet(corelet)
        assert program.core_count == 2

    def test_single_core_when_fits(self):
        program = compile_corelet(SplitterCorelet(64, 4))
        assert program.core_count == 1

    def test_rejects_impossible_line(self):
        with pytest.raises(CompilationError):
            compile_corelet(SplitterCorelet(1, 257))


class TestValidation:
    def test_bad_width(self):
        with pytest.raises(ValueError):
            SplitterCorelet(0, 2)

    def test_bad_fanout(self):
        with pytest.raises(ValueError):
            SplitterCorelet(2, 0)
        with pytest.raises(ValueError):
            SplitterCorelet(2, [1])
        with pytest.raises(ValueError):
            SplitterCorelet(2, [1, 0])
