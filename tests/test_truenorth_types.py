"""Tests for NeuronParameters and address records."""

import pytest

from repro.truenorth.types import (
    AxonAddress,
    CoreAddress,
    NeuronAddress,
    NeuronParameters,
)


class TestNeuronParameters:
    def test_defaults(self):
        params = NeuronParameters()
        assert params.threshold == 1
        assert params.weights == (0, 0, 0, 0)

    def test_weights_length_enforced(self):
        with pytest.raises(ValueError):
            NeuronParameters(weights=(1, 2, 3))

    def test_threshold_minimum(self):
        with pytest.raises(ValueError):
            NeuronParameters(threshold=0)

    def test_floor_is_magnitude(self):
        with pytest.raises(ValueError):
            NeuronParameters(floor=-1)

    def test_stochastic_bits_nonnegative(self):
        with pytest.raises(ValueError):
            NeuronParameters(stochastic_threshold_bits=-2)

    def test_frozen(self):
        params = NeuronParameters()
        with pytest.raises(Exception):
            params.threshold = 5


class TestAddresses:
    def test_core_address(self):
        assert CoreAddress(3).core_id == 3
        with pytest.raises(ValueError):
            CoreAddress(-1)

    def test_neuron_address_bounds(self):
        NeuronAddress(0, 255)
        with pytest.raises(ValueError):
            NeuronAddress(0, 256)

    def test_axon_address_bounds(self):
        AxonAddress(0, 255)
        with pytest.raises(ValueError):
            AxonAddress(0, -1)
