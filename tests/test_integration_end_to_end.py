"""Cross-module integration tests: full paper pipelines at small scale."""

import numpy as np
import pytest

from repro.detection import (
    EednBinaryScorer,
    SlidingWindowDetector,
    evaluate_detections,
)
from repro.experiments.setup import (
    CELL_COUNT_SCALE,
    detection_curve,
    train_eedn_classifier,
    train_svm_detector,
)
from repro.hog import FpgaHogDescriptor, HogDescriptor
from repro.napprox import NApproxConfig, NApproxDescriptor
from repro.parrot import ParrotExtractor, ParrotFeatureConfig


class TestSvmPipelines:
    """The Figure 4 path: extractor -> mined SVM -> detector -> curve."""

    @pytest.mark.parametrize(
        "extractor_factory",
        [
            lambda: HogDescriptor(),
            lambda: FpgaHogDescriptor(),
            lambda: NApproxDescriptor(NApproxConfig(quantized=False, normalization="l2")),
        ],
        ids=["dalal", "fpga", "napprox_fp"],
    )
    def test_pipeline_detects(self, small_split, extractor_factory):
        detector, _ = train_svm_detector(
            extractor_factory(), small_split, mining_rounds=0
        )
        curve = detection_curve(detector, small_split)
        # The tiny split is noisy; the detector must still beat a blind
        # one decisively.
        assert curve.log_average_miss_rate() < 0.9
        assert curve.n_ground_truth > 0


class TestEednPipeline:
    """The Figure 5 path: extractor -> Eedn classifier -> detector."""

    def test_napprox_eedn_pipeline(self, small_split):
        extractor = NApproxDescriptor(
            NApproxConfig(quantized=True, normalization="none")
        )
        network, result = train_eedn_classifier(
            extractor, small_split, hidden=128, epochs=12
        )
        assert result.train_accuracy[-1] > 0.7
        detector = SlidingWindowDetector(
            extractor,
            EednBinaryScorer(network),
            feature_mode="cells",
            cell_scale=CELL_COUNT_SCALE,
            score_threshold=0.0,
        )
        detections = [
            detector.detect_boxes(scene.image) for scene in small_split.test_scenes
        ]
        curve = evaluate_detections(detections, small_split.ground_truth())
        assert 0.0 <= curve.log_average_miss_rate() <= 1.0

    def test_parrot_features_feed_detector(self, tiny_parrot, small_split):
        network, _, _ = tiny_parrot
        extractor = ParrotExtractor(
            network, ParrotFeatureConfig(normalization="none"), rng=0
        )
        clf, _ = train_eedn_classifier(extractor, small_split, hidden=64, epochs=6)
        detector = SlidingWindowDetector(
            extractor,
            EednBinaryScorer(clf),
            feature_mode="cells",
            cell_scale=CELL_COUNT_SCALE,
            score_threshold=0.0,
        )
        boxes, scores = detector.detect_boxes(small_split.test_scenes[0].image)
        assert boxes.shape[1] == 4 if boxes.size else True
        assert boxes.shape[0] == scores.shape[0]


class TestCoreletToDetectionConsistency:
    """The simulated hardware and the software model feed the same
    downstream features: spot-check a full cell row."""

    def test_cell_row_agreement(self):
        from repro.napprox import NApproxCellRunner

        runner = NApproxCellRunner(window=32, rng=0)
        software = NApproxDescriptor(NApproxConfig(quantized=True, window=32))
        rng = np.random.default_rng(11)
        image = np.clip(
            np.tile(np.linspace(0.2, 0.8, 26), (10, 1))
            + rng.normal(0, 0.03, (10, 26)),
            0,
            1,
        )
        # Two horizontally adjacent cells share the border columns.
        for start in (0, 8):
            patch = image[:, start : start + 10]
            hardware = runner.extract(patch)
            model = software.cell_histogram(patch)
            assert np.abs(hardware - model).max() <= 2.0
