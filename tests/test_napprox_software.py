"""Tests for the NApprox software models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.napprox import NApproxConfig, NApproxDescriptor
from repro.napprox.software import direction_tables, winner_votes


class TestDirectionTables:
    def test_shape_and_scale(self):
        cx, cy = direction_tables(16)
        assert cx.shape == cy.shape == (18,)
        assert np.abs(cx).max() <= 16
        assert np.abs(cy).max() <= 16

    def test_bin_centers(self):
        cx, cy = direction_tables(16)
        # Bin 0 center is 10 degrees: cos positive and large, sin small.
        assert cx[0] == round(16 * np.cos(np.radians(10)))
        assert cy[0] == round(16 * np.sin(np.radians(10)))

    def test_symmetry(self):
        cx, cy = direction_tables(16)
        # Opposite directions (9 bins apart) negate.
        assert np.allclose(cx[:9], -cx[9:])
        assert np.allclose(cy[:9], -cy[9:])

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            direction_tables(0)


class TestWinnerVotes:
    def test_unique_max_wins(self):
        m = np.zeros(18)
        m[4] = 5.0
        votes = winner_votes(m)
        assert votes[4] and votes.sum() == 1

    def test_flat_profile_no_vote(self):
        assert not winner_votes(np.zeros(18)).any()
        assert not winner_votes(np.full(18, 3.0)).any()

    def test_plateau_single_vote(self):
        m = np.zeros(18)
        m[[6, 7]] = 2.0
        votes = winner_votes(m)
        assert votes.sum() == 1
        assert votes[7]  # last element of the plateau wins

    def test_wraparound_plateau(self):
        m = np.zeros(18)
        m[[17, 0]] = 2.0
        votes = winner_votes(m)
        assert votes.sum() == 1

    def test_bimodal_two_votes(self):
        m = np.zeros(18)
        m[3] = 2.0
        m[12] = 2.0
        assert winner_votes(m).sum() == 2

    def test_batched_shape(self):
        m = np.zeros((4, 7, 18))
        m[..., 2] = 1.0
        votes = winner_votes(m)
        assert votes.shape == (4, 7, 18)
        assert votes[..., 2].all()

    @given(arrays(np.int64, (18,), elements=st.integers(0, 50)))
    @settings(max_examples=50, deadline=None)
    def test_at_most_votes_at_strict_local_maxima(self, m):
        votes = winner_votes(m)
        for b in np.flatnonzero(votes):
            assert m[b] > m[(b + 1) % 18]
            assert m[(b - 1) % 18] <= m[b]


class TestFpModel:
    def test_argmax_matches_arctan(self):
        """For exact projections, the winner is the bin containing the
        gradient angle (dot products with unit vectors peak when aligned)."""
        rng = np.random.default_rng(0)
        for _ in range(50):
            angle = rng.uniform(0, 360)
            # Avoid exact bin boundaries where ties are legitimate.
            if abs((angle % 20)) < 1 or abs((angle % 20) - 20) < 1:
                continue
            ix = np.cos(np.radians(angle))
            iy = np.sin(np.radians(angle))
            theta = np.radians(np.arange(18) * 20 + 10)
            m = np.maximum(ix * np.cos(theta) + iy * np.sin(theta), 0)
            votes = winner_votes(m)
            assert votes[int(angle // 20)], angle

    def test_cell_grid_shape(self):
        descriptor = NApproxDescriptor(NApproxConfig(quantized=False))
        grid = descriptor.cell_grid(np.random.default_rng(0).random((32, 24)))
        assert grid.shape == (4, 3, 18)

    def test_votes_bounded_by_pixels(self):
        descriptor = NApproxDescriptor(NApproxConfig(quantized=False))
        grid = descriptor.cell_grid(np.random.default_rng(0).random((16, 16)))
        assert grid.sum(axis=2).max() <= 64 + 1e-9


class TestQuantizedModel:
    def test_feature_length(self):
        config = NApproxConfig()
        assert config.feature_length((128, 64)) == 7560

    def test_flat_cell_no_votes(self):
        descriptor = NApproxDescriptor(NApproxConfig(quantized=True))
        grid = descriptor.cell_grid(np.full((16, 16), 0.5))
        assert grid.sum() == 0

    def test_strong_edge_votes(self):
        descriptor = NApproxDescriptor(NApproxConfig(quantized=True))
        image = np.tile(np.linspace(0, 1, 16), (16, 1))
        grid = descriptor.cell_grid(image)
        assert grid.sum() > 0
        assert grid[0, 0].argmax() == 0  # horizontal gradient -> ~0 deg

    def test_cell_histogram_contract(self):
        descriptor = NApproxDescriptor()
        patch = np.random.default_rng(3).random((10, 10))
        histogram = descriptor.cell_histogram(patch)
        assert histogram.shape == (18,)
        assert histogram.sum() <= 64

    def test_cell_histogram_patch_size(self):
        with pytest.raises(ValueError):
            NApproxDescriptor().cell_histogram(np.zeros((8, 8)))

    def test_quantization_changes_results(self):
        image = np.random.default_rng(5).random((32, 32)) * 0.2 + 0.4
        fp = NApproxDescriptor(NApproxConfig(quantized=False)).cell_grid(image)
        qt = NApproxDescriptor(NApproxConfig(quantized=True)).cell_grid(image)
        assert not np.allclose(fp, qt)

    def test_window_affects_quantized(self):
        image = np.random.default_rng(6).random((16, 16)) * 0.3
        coarse = NApproxDescriptor(NApproxConfig(True, window=8)).cell_grid(image)
        fine = NApproxDescriptor(NApproxConfig(True, window=256)).cell_grid(image)
        assert not np.allclose(coarse, fine)

    def test_validation(self):
        with pytest.raises(ValueError):
            NApproxDescriptor(NApproxConfig(window=0))
        with pytest.raises(ValueError):
            NApproxDescriptor(NApproxConfig(magnitude_threshold=0))

    def test_with_normalization(self):
        descriptor = NApproxDescriptor()
        other = descriptor.with_normalization("none")
        assert other.config.normalization == "none"
        assert other.config.quantized == descriptor.config.quantized
