"""Tests for cell-level orientation voting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.hog.cells import cell_histograms, histogram_for_cell


class TestGrid:
    def test_shape(self):
        mag = np.ones((16, 24))
        ang = np.zeros((16, 24))
        grid = cell_histograms(mag, ang, cell_size=8, n_bins=9)
        assert grid.shape == (2, 3, 9)

    def test_partial_cells_discarded(self):
        mag = np.ones((10, 10))
        ang = np.zeros((10, 10))
        grid = cell_histograms(mag, ang, cell_size=8, n_bins=9)
        assert grid.shape == (1, 1, 9)
        assert grid.sum() == 64  # only the full cell's pixels

    def test_magnitude_voting_mass(self):
        rng = np.random.default_rng(0)
        mag = rng.random((8, 8))
        ang = rng.random((8, 8)) * 180
        grid = cell_histograms(mag, ang, n_bins=9, interpolate=True)
        assert np.isclose(grid.sum(), mag.sum())

    def test_count_voting_counts_pixels(self):
        mag = np.ones((8, 8)) * 5.0
        ang = np.full((8, 8), 45.0)
        grid = cell_histograms(mag, ang, n_bins=9, voting="count", interpolate=False)
        assert grid.sum() == 64
        assert grid[0, 0, 2] == 64  # 45 deg in bin 2 of 20-deg bins

    def test_count_threshold(self):
        mag = np.zeros((8, 8))
        mag[0, 0] = 1.0
        ang = np.zeros((8, 8))
        grid = cell_histograms(
            mag, ang, n_bins=9, voting="count", interpolate=False, count_threshold=0.5
        )
        assert grid.sum() == 1

    def test_nearest_bin_assignment(self):
        mag = np.ones((8, 8))
        ang = np.full((8, 8), 25.0)  # bin 1 of [20, 40)
        grid = cell_histograms(mag, ang, n_bins=9, interpolate=False)
        assert grid[0, 0, 1] == 64

    def test_bilinear_interpolation_splits_votes(self):
        mag = np.ones((8, 8))
        ang = np.full((8, 8), 20.0)  # exactly between bin centers 10 and 30
        grid = cell_histograms(mag, ang, n_bins=9, interpolate=True)
        assert np.isclose(grid[0, 0, 0], 32.0)
        assert np.isclose(grid[0, 0, 1], 32.0)

    def test_interpolation_wraps_cyclically(self):
        mag = np.ones((8, 8))
        ang = np.full((8, 8), 179.0)  # near the 180/0 seam
        grid = cell_histograms(mag, ang, n_bins=9, interpolate=True)
        assert grid[0, 0, 8] > 0 and grid[0, 0, 0] > 0

    def test_signed_range(self):
        mag = np.ones((8, 8))
        ang = np.full((8, 8), 270.0)
        grid = cell_histograms(mag, ang, n_bins=18, signed=True, interpolate=False)
        assert grid[0, 0, 13] == 64  # 270 deg in bin 13 of 20-deg signed bins


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            cell_histograms(np.ones((4, 4)), np.ones((4, 5)))

    def test_bad_voting(self):
        with pytest.raises(ValueError):
            cell_histograms(np.ones((8, 8)), np.ones((8, 8)), voting="area")

    def test_bad_bins(self):
        with pytest.raises(ValueError):
            cell_histograms(np.ones((8, 8)), np.ones((8, 8)), n_bins=1)


class TestSingleCell:
    def test_matches_grid_for_square(self):
        rng = np.random.default_rng(1)
        mag = rng.random((8, 8))
        ang = rng.random((8, 8)) * 180
        single = histogram_for_cell(mag, ang, n_bins=9, signed=False)
        grid = cell_histograms(mag, ang, cell_size=8, n_bins=9)
        assert np.allclose(single, grid[0, 0])


class TestProperties:
    @given(
        arrays(np.float64, (8, 8), elements=st.floats(0, 10, allow_nan=False)),
        arrays(np.float64, (8, 8), elements=st.floats(0, 179.99, allow_nan=False)),
    )
    @settings(max_examples=30, deadline=None)
    def test_mass_conserved_under_interpolation(self, mag, ang):
        grid = cell_histograms(mag, ang, n_bins=9, interpolate=True)
        assert np.isclose(grid.sum(), mag.sum(), rtol=1e-9, atol=1e-9)

    @given(
        arrays(np.float64, (8, 8), elements=st.floats(0, 10, allow_nan=False)),
        arrays(np.float64, (8, 8), elements=st.floats(0, 359.99, allow_nan=False)),
    )
    @settings(max_examples=30, deadline=None)
    def test_histograms_nonnegative(self, mag, ang):
        grid = cell_histograms(mag, ang, n_bins=18, signed=True, interpolate=True)
        assert grid.min() >= 0
