"""Tests for activity-proportional energy accounting."""

import numpy as np
import pytest

from repro.truenorth.energy import (
    STATIC_CORE_WATTS,
    estimate_energy,
    nominal_energy,
)
from repro.truenorth.power import CORE_POWER_WATTS
from repro.truenorth.simulator import SimulationResult


def _result(ticks: int, spikes: int) -> SimulationResult:
    return SimulationResult(ticks=ticks, total_spikes=spikes)


class TestCalibration:
    def test_static_floor_positive_and_below_nominal(self):
        assert 0.0 < STATIC_CORE_WATTS < CORE_POWER_WATTS

    def test_typical_activity_matches_nominal(self):
        """At the calibration activity, the split model reproduces the
        16 uW/core Table 2 figure."""
        ticks = 1000
        cores = 1
        spikes = int(400 / 100 * ticks)  # 4 firing neurons per tick
        estimate = estimate_energy(_result(ticks, spikes), cores)
        nominal = nominal_energy(cores, ticks)
        assert estimate.total_joules == pytest.approx(nominal, rel=0.02)


class TestScaling:
    def test_silent_system_pays_only_static(self):
        estimate = estimate_energy(_result(100, 0), cores=10)
        assert estimate.dynamic_joules == 0.0
        assert estimate.total_joules == estimate.static_joules

    def test_dynamic_energy_scales_with_spikes(self):
        low = estimate_energy(_result(100, 10), cores=1)
        high = estimate_energy(_result(100, 1000), cores=1)
        assert high.dynamic_joules > low.dynamic_joules * 50

    def test_average_watts_consistent(self):
        estimate = estimate_energy(_result(200, 50), cores=3)
        assert estimate.average_watts == pytest.approx(
            estimate.total_joules / 0.2
        )

    def test_explicit_synaptic_events(self):
        default = estimate_energy(_result(100, 10), cores=1)
        explicit = estimate_energy(_result(100, 10), cores=1, synaptic_events=1000)
        assert default.dynamic_joules == pytest.approx(explicit.dynamic_joules)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_energy(_result(0, 0), cores=1)
        with pytest.raises(ValueError):
            estimate_energy(_result(10, 0), cores=-1)
        with pytest.raises(ValueError):
            nominal_energy(-1, 10)


class TestAgainstSimulation:
    def test_napprox_cell_energy_sane(self):
        """One simulated NApprox cell costs microjoules, dominated by the
        static floor at this activity level."""
        from repro.napprox import NApproxCellRunner
        from repro.napprox.validation import random_cell_patch

        runner = NApproxCellRunner(window=32, rng=0)
        patch = random_cell_patch(np.random.default_rng(3))
        raster_ticks = runner._total_ticks
        runner.extract(patch)
        # Re-run to get the SimulationResult directly.
        result = SimulationResult(ticks=raster_ticks, total_spikes=2000)
        estimate = estimate_energy(result, cores=runner.core_count)
        assert 0.0 < estimate.total_joules < 1e-3
        assert estimate.static_joules > 0
