"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import resolve_rng, spawn_generators, spawn_rng


class TestResolveRng:
    def test_none_returns_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_seed_is_deterministic(self):
        a = resolve_rng(42).integers(0, 1000, 10)
        b = resolve_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = resolve_rng(1).integers(0, 10**9)
        b = resolve_rng(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough_shares_state(self):
        generator = np.random.default_rng(0)
        same = resolve_rng(generator)
        assert same is generator

    def test_numpy_integer_seed_accepted(self):
        assert isinstance(resolve_rng(np.int64(7)), np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            resolve_rng("not a seed")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            resolve_rng(1.5)


class TestSpawnRng:
    def test_children_are_independent(self):
        a = spawn_rng(0, 0).integers(0, 10**9, 5)
        b = spawn_rng(0, 1).integers(0, 10**9, 5)
        assert not np.array_equal(a, b)

    def test_spawn_is_reproducible(self):
        a = spawn_rng(3, 2).integers(0, 10**9, 5)
        b = spawn_rng(3, 2).integers(0, 10**9, 5)
        assert np.array_equal(a, b)

    def test_distinct_indices_never_collide(self):
        # The old arithmetic derivation could alias children; SeedSequence
        # spawn keys cannot. Draw from many children of one seed.
        draws = [spawn_rng(5, index).integers(0, 10**12, 4) for index in range(64)]
        unique = {tuple(d) for d in draws}
        assert len(unique) == len(draws)

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            spawn_rng(0, -1)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            spawn_rng(1.5, 0)


class TestSpawnGenerators:
    def test_same_seed_gives_identical_streams(self):
        first = spawn_generators(9, 4)
        second = spawn_generators(9, 4)
        for a, b in zip(first, second):
            assert np.array_equal(a.integers(0, 10**9, 8), b.integers(0, 10**9, 8))

    def test_lanes_are_mutually_independent(self):
        lanes = spawn_generators(9, 8)
        draws = {tuple(lane.integers(0, 10**12, 4)) for lane in lanes}
        assert len(draws) == 8

    def test_generator_parent_spawns_fresh_children(self):
        parent = np.random.default_rng(0)
        first = spawn_generators(parent, 2)
        second = spawn_generators(parent, 2)
        a = first[0].integers(0, 10**12, 4)
        b = second[0].integers(0, 10**12, 4)
        assert not np.array_equal(a, b)

    def test_zero_lanes(self):
        assert spawn_generators(0, 0) == []

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            spawn_generators("seed", 2)
