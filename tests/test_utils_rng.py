"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import resolve_rng, spawn_rng


class TestResolveRng:
    def test_none_returns_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_seed_is_deterministic(self):
        a = resolve_rng(42).integers(0, 1000, 10)
        b = resolve_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = resolve_rng(1).integers(0, 10**9)
        b = resolve_rng(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough_shares_state(self):
        generator = np.random.default_rng(0)
        same = resolve_rng(generator)
        assert same is generator

    def test_numpy_integer_seed_accepted(self):
        assert isinstance(resolve_rng(np.int64(7)), np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            resolve_rng("not a seed")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            resolve_rng(1.5)


class TestSpawnRng:
    def test_children_are_independent(self):
        a = spawn_rng(0, 0).integers(0, 10**9, 5)
        b = spawn_rng(0, 1).integers(0, 10**9, 5)
        assert not np.array_equal(a, b)

    def test_spawn_is_reproducible(self):
        a = spawn_rng(3, 2).integers(0, 10**9, 5)
        b = spawn_rng(3, 2).integers(0, 10**9, 5)
        assert np.array_equal(a, b)
