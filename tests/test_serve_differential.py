"""Differential tests: served results are bit-identical to direct calls.

The serving layer reorders, coalesces, and caches requests, so these
tests are the conformance gate for the whole subsystem: a detector (or a
raw scorer) driven through the service must produce byte-for-byte the
results of synchronous single-caller calls. The enabling property is
content-seeded coding (``TrueNorthBinaryScorer(coding="content")``) —
each window's spike raster depends only on the window bytes and the
scorer entropy, never on call order or batch composition.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.detection.pipeline import SlidingWindowDetector, TrueNorthBinaryScorer
from repro.eedn import EednNetwork, ThresholdActivation, TrinaryDense
from repro.serve import (
    InferenceService,
    NApproxCellModel,
    ServiceBackedScorer,
    ShardedInferenceService,
    random_patch_rows,
)


def _small_scorer(coding="content", engine="batch"):
    network = EednNetwork(
        [
            TrinaryDense(8, 16, rng=0),
            ThresholdActivation(0.0),
            TrinaryDense(16, 2, rng=1),
        ]
    )
    return TrueNorthBinaryScorer(
        network, ticks=8, rng=7, coding=coding, engine=engine
    )


class _TinyExtractor:
    """Test extractor: 2-bin mean/contrast cells at 8 px (fast, exact)."""

    config = SimpleNamespace(cell_size=8, n_bins=2)

    def cell_grid(self, image):
        h, w = image.shape[0] // 8, image.shape[1] // 8
        grid = np.zeros((h, w, 2))
        for y in range(h):
            for x in range(w):
                cell = image[y * 8 : (y + 1) * 8, x * 8 : (x + 1) * 8]
                grid[y, x] = (cell.mean(), cell.std())
        return grid


class TestScorerDifferential:
    def test_content_coding_is_order_independent(self):
        scorer = _small_scorer()
        rows = np.random.default_rng(0).random((12, 8))
        forward = scorer.decision_function(rows)
        backward = scorer.decision_function(rows[::-1])[::-1]
        one_by_one = np.concatenate(
            [scorer.decision_function(rows[i : i + 1]) for i in range(12)]
        )
        np.testing.assert_array_equal(forward, backward)
        np.testing.assert_array_equal(forward, one_by_one)

    def test_served_scores_bit_identical(self):
        scorer = _small_scorer()
        rows = np.random.default_rng(1).random((30, 8))
        direct = scorer.decision_function(rows)
        with InferenceService(scorer, max_batch_size=8, max_wait_ms=1.0) as svc:
            served = svc.score_many(rows)
        np.testing.assert_array_equal(direct, served)

    def test_cache_hits_are_bit_identical(self):
        scorer = _small_scorer()
        rows = np.random.default_rng(2).random((10, 8))
        duplicated = np.vstack([rows, rows, rows])
        direct = scorer.decision_function(duplicated)
        with InferenceService(scorer, max_batch_size=4) as svc:
            svc.score_many(rows)  # warm the cache deterministically
            served = svc.score_many(duplicated)
            assert svc.stats.counter("cache_hits") == 30
        np.testing.assert_array_equal(direct, served)

    def test_stream_coding_disables_the_cache(self):
        scorer = _small_scorer(coding="stream")
        assert not scorer.cacheable
        service = InferenceService(scorer, cache_capacity=128)
        assert service.cache is None


class TestEventEngineDifferential:
    """The event engine through the serving stack, vs the batch engine.

    Served scores, cache identity, and attributed energy must match the
    batch engine byte for byte — the engine choice is an implementation
    detail the serving layer (and its cache) must be unable to observe.
    """

    def test_served_scores_bit_identical_to_batch(self):
        rows = np.random.default_rng(5).random((30, 8))
        direct_batch = _small_scorer(engine="batch").decision_function(rows)
        with InferenceService(
            _small_scorer(engine="event"), max_batch_size=8, max_wait_ms=1.0
        ) as svc:
            served_event = svc.score_many(rows)
        np.testing.assert_array_equal(direct_batch, served_event)

    def test_cache_keys_match_batch_engine(self):
        """model_id excludes the engine, so caches are shared across it."""
        batch_scorer = _small_scorer(engine="batch")
        event_scorer = _small_scorer(engine="event")
        assert event_scorer.model_id == batch_scorer.model_id
        assert event_scorer.cacheable and batch_scorer.cacheable

    def test_cache_hits_are_bit_identical(self):
        scorer = _small_scorer(engine="event")
        rows = np.random.default_rng(6).random((10, 8))
        duplicated = np.vstack([rows, rows, rows])
        direct = _small_scorer(engine="batch").decision_function(duplicated)
        with InferenceService(scorer, max_batch_size=4) as svc:
            svc.score_many(rows)  # warm the cache deterministically
            served = svc.score_many(duplicated)
            assert svc.stats.counter("cache_hits") == 30
        np.testing.assert_array_equal(direct, served)

    def test_served_energy_attribution_matches_batch(self):
        """The service's per-request energy ledger agrees exactly.

        Counter parity makes the per-lane ledgers bit-identical and
        per-lane energy is independent of micro-batch composition, so
        the attributed totals must match to the bit even though the two
        services batch the request stream differently.
        """
        rows = np.random.default_rng(8).random((12, 8))
        totals = {}
        for engine in ("batch", "event"):
            with InferenceService(
                _small_scorer(engine=engine),
                max_batch_size=4,
                max_wait_ms=1.0,
            ) as svc:
                svc.score_many(rows)
                snapshot = svc.stats.snapshot()
            assert snapshot["energy_nj"]["count"] == len(rows)
            totals[engine] = snapshot["energy_nj"]["total"]
        assert totals["batch"] > 0
        assert totals["event"] == totals["batch"]

    def test_detector_through_service_matches_batch(self):
        image = np.random.default_rng(9).random((40, 40))

        def build(active_scorer):
            return SlidingWindowDetector(
                _TinyExtractor(),
                active_scorer,
                feature_mode="cells",
                window_shape=(16, 16),
                score_threshold=-1e9,
                chunk_size=5,
            )

        direct = build(_small_scorer(engine="batch")).detect(image)
        with InferenceService(
            _small_scorer(engine="event"), max_batch_size=8, max_wait_ms=1.0
        ) as svc:
            served = build(ServiceBackedScorer(svc)).detect(image)
        assert direct == served
        assert len(direct) > 0


class TestDetectorDifferential:
    def test_detector_through_service_bit_identical(self):
        """SlidingWindowDetector via the batcher == direct detection."""
        scorer = _small_scorer()
        image = np.random.default_rng(3).random((40, 40))

        def build(active_scorer):
            return SlidingWindowDetector(
                _TinyExtractor(),
                active_scorer,
                feature_mode="cells",
                window_shape=(16, 16),
                score_threshold=-1e9,
                chunk_size=5,
            )

        direct = build(scorer).detect(image)
        with InferenceService(scorer, max_batch_size=8, max_wait_ms=1.0) as svc:
            served = build(ServiceBackedScorer(svc)).detect(image)
        assert direct == served  # Detection dataclasses compare exactly
        assert len(direct) > 0

    def test_napprox_cells_through_service_bit_identical(self):
        model = NApproxCellModel(window=8, engine="batch")
        rows = random_patch_rows(6, rng=4)
        direct = model(rows)
        with InferenceService(model, max_batch_size=4, max_wait_ms=1.0) as svc:
            futures = [svc.submit(row) for row in rows]
            served = np.stack([future.result(timeout=30) for future in futures])
        np.testing.assert_array_equal(direct, served)


class TestShardedDifferential:
    """The multi-process worker tier joins the bit-identity contract.

    Which shard scores a row — and therefore which forked process, over
    which mp queue — must be unobservable in the results, the cache
    keys, and the attributed energy.
    """

    def test_sharded_scores_bit_identical_to_direct(self):
        scorer = _small_scorer()
        rows = np.random.default_rng(10).random((30, 8))
        direct = scorer.decision_function(rows)
        with ShardedInferenceService(
            scorer, workers=2, max_batch_size=8, max_wait_ms=1.0
        ) as svc:
            served = svc.score_many(rows)
        np.testing.assert_array_equal(direct, served)

    def test_sharded_matches_in_process_service(self):
        rows = np.random.default_rng(11).random((24, 8))
        with InferenceService(
            _small_scorer(), max_batch_size=8, max_wait_ms=1.0
        ) as single:
            expected = single.score_many(rows)
        with ShardedInferenceService(
            _small_scorer(), workers=3, max_batch_size=8, max_wait_ms=1.0
        ) as sharded:
            got = sharded.score_many(rows)
        np.testing.assert_array_equal(expected, got)

    def test_sharded_cache_hits_are_bit_identical(self):
        scorer = _small_scorer()
        rows = np.random.default_rng(12).random((10, 8))
        duplicated = np.vstack([rows, rows, rows])
        direct = scorer.decision_function(duplicated)
        with ShardedInferenceService(
            scorer, workers=2, max_batch_size=4
        ) as svc:
            svc.score_many(rows)  # warm the shared parent-side cache
            served = svc.score_many(duplicated)
            assert svc.stats.counter("cache_hits") == 30
        np.testing.assert_array_equal(direct, served)

    def test_sharded_energy_attribution_matches_in_process(self):
        """Worker ledgers re-recorded in the parent attribute the same
        per-request energy the in-process service measures locally."""
        rows = np.random.default_rng(13).random((12, 8))
        snapshots = {}
        for workers in (0, 2):
            if workers:
                service = ShardedInferenceService(
                    _small_scorer(), workers=workers,
                    max_batch_size=4, max_wait_ms=1.0,
                )
            else:
                service = InferenceService(
                    _small_scorer(), max_batch_size=4, max_wait_ms=1.0
                )
            with service:
                service.score_many(rows)
                snapshots[workers] = service.stats.snapshot()
        for snapshot in snapshots.values():
            assert snapshot["energy_nj"]["count"] == len(rows)
        assert snapshots[0]["energy_nj"]["total"] > 0
        assert snapshots[2]["energy_nj"]["total"] == pytest.approx(
            snapshots[0]["energy_nj"]["total"], rel=1e-12
        )

    def test_detector_through_sharded_service_bit_identical(self):
        scorer = _small_scorer()
        image = np.random.default_rng(14).random((40, 40))

        def build(active_scorer):
            return SlidingWindowDetector(
                _TinyExtractor(),
                active_scorer,
                feature_mode="cells",
                window_shape=(16, 16),
                score_threshold=-1e9,
                chunk_size=5,
            )

        direct = build(scorer).detect(image)
        with ShardedInferenceService(
            scorer, workers=2, max_batch_size=8, max_wait_ms=1.0
        ) as svc:
            served = build(ServiceBackedScorer(svc)).detect(image)
        assert direct == served
        assert len(direct) > 0

    def test_worker_telemetry_is_shard_labeled_in_parent_exposition(self):
        """Shard-side ``serve_hw_*`` counters and worker span series
        appear in the parent's exposition with a ``shard`` label, and
        the labeled hop totals sum exactly to the unlabeled fleet
        counters the parity tests compare against."""
        rows = np.random.default_rng(15).random((12, 8))
        with ShardedInferenceService(
            _small_scorer(), workers=2, max_batch_size=4, max_wait_ms=1.0
        ) as svc:
            svc.score_many(rows)
            registry = svc.stats.registry
            exposition = registry.render_prometheus()
        assert 'serve_hw_router_hops_total{shard="' in exposition
        assert (
            'span_serve_shard_worker_score_seconds_count{shard="'
            in exposition
        )
        unlabeled = registry.get("serve_hw_router_hops_total").value
        labeled_series = [
            registry.get(
                "serve_hw_router_hops_total", labels={"shard": str(index)}
            )
            for index in range(2)
        ]
        labeled = sum(
            metric.value for metric in labeled_series if metric is not None
        )
        assert labeled == unlabeled > 0
