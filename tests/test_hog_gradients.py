"""Tests for gradient computation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.hog.gradients import (
    compute_gradients,
    gradient_angle,
    gradient_magnitude,
    interior_gradients,
)


class TestComputeGradients:
    def test_horizontal_ramp(self):
        image = np.tile(np.arange(5.0), (4, 1))
        ix, iy = compute_gradients(image)
        assert np.allclose(ix[:, 1:-1], 2.0)  # centered difference
        assert np.allclose(iy, 0.0)

    def test_vertical_ramp_sign(self):
        # Intensity grows downward -> Iy = above - below is negative.
        image = np.tile(np.arange(5.0)[:, None], (1, 4))
        ix, iy = compute_gradients(image)
        assert np.allclose(iy[1:-1, :], -2.0)
        assert np.allclose(ix, 0.0)

    def test_figure2_convention(self):
        # Ix = Pixel5 - Pixel3, Iy = Pixel1 - Pixel7 on a 3x3 patch.
        patch = np.zeros((3, 3))
        patch[1, 2] = 4.0  # pixel 5
        patch[1, 0] = 1.0  # pixel 3
        patch[0, 1] = 7.0  # pixel 1
        patch[2, 1] = 2.0  # pixel 7
        ix, iy = interior_gradients(patch)
        assert ix[0, 0] == 3.0
        assert iy[0, 0] == 5.0

    def test_constant_image(self):
        ix, iy = compute_gradients(np.full((6, 6), 0.7))
        assert not ix.any() and not iy.any()

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            compute_gradients(np.arange(5.0))

    def test_interior_needs_3x3(self):
        with pytest.raises(ValueError):
            interior_gradients(np.zeros((2, 5)))

    def test_interior_shape(self):
        ix, iy = interior_gradients(np.zeros((10, 10)))
        assert ix.shape == (8, 8)


class TestMagnitudeAngle:
    def test_magnitude_pythagorean(self):
        assert gradient_magnitude(np.array([3.0]), np.array([4.0]))[0] == 5.0

    def test_angle_quadrants_signed(self):
        ix = np.array([1.0, 0.0, -1.0, 0.0])
        iy = np.array([0.0, 1.0, 0.0, -1.0])
        angles = gradient_angle(ix, iy, signed=True)
        assert np.allclose(angles, [0.0, 90.0, 180.0, 270.0])

    def test_angle_unsigned_folds(self):
        angles = gradient_angle(np.array([-1.0]), np.array([0.0]), signed=False)
        assert np.allclose(angles, [0.0])

    def test_angle_range(self):
        rng = np.random.default_rng(0)
        ix = rng.normal(size=100)
        iy = rng.normal(size=100)
        signed = gradient_angle(ix, iy, signed=True)
        unsigned = gradient_angle(ix, iy, signed=False)
        assert signed.min() >= 0 and signed.max() < 360
        assert unsigned.min() >= 0 and unsigned.max() < 180

    @given(
        arrays(
            np.float64,
            (5, 5),
            elements=st.floats(0, 1, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_gradient_bounded_by_value_range(self, image):
        ix, iy = compute_gradients(image)
        span = image.max() - image.min()
        assert np.abs(ix).max() <= span + 1e-12
        assert np.abs(iy).max() <= span + 1e-12
