"""Shared fixtures: small, session-cached instances of expensive objects."""

import numpy as np
import pytest

from repro.datasets import SyntheticPersonDataset
from repro.experiments.setup import ExperimentData
from repro.parrot import ParrotExtractor, train_parrot


@pytest.fixture(scope="session")
def tiny_parrot():
    """A quickly trained parrot network shared across tests."""
    network, dataset, diagnostics = train_parrot(
        hidden=128, n_samples=1200, epochs=10, rng=11
    )
    return network, dataset, diagnostics


@pytest.fixture(scope="session")
def tiny_parrot_extractor(tiny_parrot):
    """Analog parrot extractor over the session network."""
    network, _, _ = tiny_parrot
    return ParrotExtractor(network)


@pytest.fixture(scope="session")
def small_dataset():
    """A seeded synthetic dataset generator."""
    return SyntheticPersonDataset(rng=2024)


@pytest.fixture(scope="session")
def small_split():
    """A miniature train/test split for pipeline tests."""
    dataset = SyntheticPersonDataset(rng=31)
    return ExperimentData(
        positive_windows=dataset.positive_windows(40),
        negative_windows=dataset.negative_windows(80),
        negative_images=dataset.negative_images(2, (160, 200)),
        test_scenes=dataset.test_scenes(6, (176, 224), max_people=1),
    )


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)
