"""The metrics naming convention (``repro.obs.metrics.naming_violations``).

Every registered base name must be lowercase snake_case and end in a
kind-appropriate unit suffix (counters ``_total``, histograms/gauges a
unit). The convention test exercises a registry the way the real
subsystems do — ServiceStats, spans, SLO publication, video stage
histograms — and asserts the result is clean, so a new metric that
drifts from the exposition style fails here instead of silently
shipping.
"""

from repro.obs import MetricsRegistry, naming_violations, observe_span
from repro.obs.slo import evaluate_objectives, publish_results
from repro.serve.stats import ServiceStats


class TestConventionChecks:
    def test_empty_registry_is_clean(self):
        assert naming_violations(MetricsRegistry()) == []

    def test_counter_must_end_in_total(self):
        registry = MetricsRegistry()
        registry.counter("serve_requests").inc()
        problems = naming_violations(registry)
        assert len(problems) == 1 and "_total" in problems[0]

    def test_histogram_needs_a_unit_suffix(self):
        registry = MetricsRegistry()
        registry.histogram("serve_latency").observe(0.1)
        assert any("histogram" in p for p in naming_violations(registry))

    def test_gauge_needs_a_unit_suffix(self):
        registry = MetricsRegistry()
        registry.gauge("queue").set(3)
        assert any("gauge" in p for p in naming_violations(registry))

    def test_uppercase_names_are_flagged(self):
        registry = MetricsRegistry()
        registry.counter("Serve_requests_total").inc()
        assert any("snake_case" in p for p in naming_violations(registry))

    def test_uppercase_label_names_are_flagged(self):
        registry = MetricsRegistry()
        registry.counter(
            "serve_requests_total", labels={"Shard": "0"}
        ).inc()
        assert any("label" in p for p in naming_violations(registry))

    def test_violations_reported_once_per_base_name(self):
        registry = MetricsRegistry()
        for shard in range(4):
            registry.counter(
                "serve_requests", labels={"shard": str(shard)}
            ).inc()
        assert len(naming_violations(registry)) == 1


class TestRealSubsystemsConform:
    def test_exercised_service_stats_are_clean(self):
        stats = ServiceStats()
        stats.count("submitted")
        stats.count("cache_hits")
        stats.record_batch(4)
        stats.record_latency(0.01)
        stats.record_energy(125.0)
        stats.record_hw_totals(
            {"router_hops": 7, "cross_chip_hops": 2, "intra_chip_hops": 5},
            shard=1,
        )
        observe_span("serve.model.batch", 0.01, registry=stats.registry)
        assert naming_violations(stats.registry) == []

    def test_slo_publication_is_clean(self):
        registry = MetricsRegistry()
        registry.histogram(
            "serve_latency_seconds", buckets=(0.1, 1.0)
        ).observe(0.05)
        publish_results(evaluate_objectives(registry), registry)
        assert naming_violations(registry) == []

    def test_video_stage_histograms_are_clean(self):
        from repro.obs.traces import VIDEO_STAGE_METRIC

        registry = MetricsRegistry()
        for stage in ("extract", "pool", "serve", "nms"):
            registry.histogram(
                VIDEO_STAGE_METRIC, labels={"stage": stage, "level": "0"}
            ).observe(0.002)
        registry.counter("video_frames_total").inc()
        assert naming_violations(registry) == []

    def test_process_default_names_are_clean(self):
        """The names other subsystems hardcode all pass the convention."""
        registry = MetricsRegistry()
        registry.counter("sim_ticks_total").inc(10)
        registry.counter("engine_runs_total").inc()
        registry.counter("hw_core_spikes_total", labels={"core": "3"}).inc(5)
        registry.gauge("serve_breaker_state", labels={"shard": "0"}).set(1)
        registry.gauge("serve_breaker_open_shards").set(0)
        registry.histogram("serve_batch_size").observe(8)
        assert naming_violations(registry) == []
