"""FaultPlan validation, identity, and hash-selection properties."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    CompiledFaults,
    DeadCore,
    DroppedSpikes,
    DuplicatedSpikes,
    FaultPlan,
    RandomDeadCores,
    RandomStuckNeurons,
    StuckNeuron,
    ThresholdDrift,
    WeightBitFlips,
    compile_faults,
)
from repro.faults.compile import _SALT_DROP, _absorb, _seed_word, _uniform

from tests.engine_systems import CASES_BY_NAME


class TestPlanValidation:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan(())
        assert FaultPlan((DroppedSpikes(0.1),))

    def test_faults_frozen_to_tuple(self):
        plan = FaultPlan([DroppedSpikes(0.1)])
        assert isinstance(plan.faults, tuple)

    def test_rejects_non_fault_entries(self):
        with pytest.raises(ConfigurationError, match="fault"):
            FaultPlan(("not a fault",))

    def test_rejects_duplicate_dynamic_kinds(self):
        with pytest.raises(ConfigurationError, match="one"):
            FaultPlan((DroppedSpikes(0.1), DroppedSpikes(0.2)))

    def test_rejects_non_int_seed(self):
        with pytest.raises(ConfigurationError, match="seed"):
            FaultPlan((), seed="7")

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: DroppedSpikes(-0.1),
            lambda: DroppedSpikes(1.5),
            lambda: DuplicatedSpikes(2.0),
            lambda: RandomStuckNeurons(0.5, mode="explode"),
            lambda: RandomStuckNeurons(-1.0),
            lambda: RandomDeadCores(1.01),
            lambda: WeightBitFlips(0.1, bit=16),
            lambda: WeightBitFlips(0.1, bit=-1),
            lambda: ThresholdDrift(-2.0),
            lambda: StuckNeuron(0, -1),
            lambda: StuckNeuron(-1, 0),
        ],
    )
    def test_rejects_out_of_range_parameters(self, bad):
        with pytest.raises(ConfigurationError):
            bad()

    def test_dynamic_classification(self):
        assert FaultPlan((DroppedSpikes(0.1),)).has_dynamic
        assert FaultPlan((DuplicatedSpikes(0.1),)).has_dynamic
        assert not FaultPlan((ThresholdDrift(1.0),)).has_dynamic
        assert FaultPlan((ThresholdDrift(1.0),)).is_static


class TestDigest:
    def test_digest_is_stable_and_seed_sensitive(self):
        a = FaultPlan((DroppedSpikes(0.1),), seed=1)
        b = FaultPlan((DroppedSpikes(0.1),), seed=1)
        c = FaultPlan((DroppedSpikes(0.1),), seed=2)
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()

    def test_digest_sees_fault_parameters(self):
        a = FaultPlan((DroppedSpikes(0.1),))
        b = FaultPlan((DroppedSpikes(0.2),))
        assert a.digest() != b.digest()


class TestCompile:
    def test_none_and_empty_compile_to_none(self):
        system = CASES_BY_NAME["pattern_match"].build()
        assert compile_faults(None, system) is None
        assert compile_faults(FaultPlan(()), system) is None

    def test_compiled_passthrough(self):
        system = CASES_BY_NAME["pattern_match"].build()
        compiled = compile_faults(FaultPlan((ThresholdDrift(1.0),)), system)
        assert isinstance(compiled, CompiledFaults)
        assert compile_faults(compiled, system) is compiled

    def test_stuck_neuron_lands_in_core_view(self):
        system = CASES_BY_NAME["pattern_match"].build()
        core = system.cores[0]
        compiled = compile_faults(
            FaultPlan((StuckNeuron(core.core_id, 3, mode="fire"),)), system
        )
        view = compiled.core_view(core)
        assert view is not None and bool(view.force_fire[3])

    def test_unknown_core_rejected_at_compile(self):
        system = CASES_BY_NAME["pattern_match"].build()
        with pytest.raises(ConfigurationError, match="unknown core"):
            compile_faults(FaultPlan((DeadCore(10_000),)), system)

    def test_out_of_range_neuron_rejected_at_compile(self):
        system = CASES_BY_NAME["pattern_match"].build()
        core_id = system.cores[0].core_id
        with pytest.raises(ConfigurationError, match="out of range"):
            compile_faults(FaultPlan((StuckNeuron(core_id, 256),)), system)

    def test_bit_flips_only_touch_connected_points(self):
        system = CASES_BY_NAME["weighted_sum"].build()
        compiled = compile_faults(
            FaultPlan((WeightBitFlips(1.0, bit=0),), seed=3), system
        )
        core = system.cores[0]
        base = core.effective_weights()
        faulted = compiled.effective_weights(core)
        connected = np.asarray(core.crossbar, dtype=bool)
        # rate 1.0: every connected weight flips, nothing else moves
        assert np.all((faulted != base) == connected)


class TestNestedRates:
    """hash-u < rate selection nests fault sets across rates."""

    def test_stuck_sites_nest(self):
        system = CASES_BY_NAME["pattern_match"].build()
        masks = {}
        for rate in (0.1, 0.3, 0.8):
            compiled = compile_faults(
                FaultPlan((RandomStuckNeurons(rate, mode="silent"),), seed=5),
                system,
            )
            masks[rate] = compiled.force_silent.copy()
        assert np.all(masks[0.1] <= masks[0.3])
        assert np.all(masks[0.3] <= masks[0.8])
        assert masks[0.8].sum() > masks[0.1].sum()

    def test_drop_decisions_nest(self):
        # A delivery dropped at rate r is dropped at every r' > r: the
        # per-site uniform is rate-independent.
        lane_key = _absorb(_seed_word(5), _SALT_DROP)
        sites = np.arange(4096, dtype=np.uint64)
        u = _uniform(_absorb(lane_key, sites))
        low = u < 0.2
        high = u < 0.6
        assert np.all(low <= high)
        assert 0 < low.sum() < high.sum() < sites.size
