"""Regenerate the golden spike-trace fixtures.

Run from the repository root after an *intentional* semantic change to
the simulator:

    PYTHONPATH=src:. python tests/fixtures/golden/generate.py

Each fixture freezes the reference engine's probe rasters for one
scenario of ``tests/engine_systems.py``, stored sparsely as
``[tick, line]`` spike coordinates. ``test_golden_traces.py`` replays
the scenarios through both engines against these files, so a regression
is caught even if both engines drift together. Review a regenerated
diff as carefully as a code change — it redefines correctness.
"""

import json
import sys
from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent


def generate() -> None:
    from repro.truenorth.simulator import Simulator

    from tests.engine_systems import ENGINE_CASES, shared_inputs

    for case in ENGINE_CASES:
        simulator = Simulator(case.build(), rng=case.sim_seed)
        inputs = shared_inputs(
            simulator.system, case.ticks, case.input_seed, case.density
        )
        result = simulator.run(case.ticks, inputs)
        payload = {
            "case": case.name,
            "ticks": case.ticks,
            "sim_seed": case.sim_seed,
            "input_seed": case.input_seed,
            "density": case.density,
            "total_spikes": result.total_spikes,
            "probes": {
                name: {
                    "width": int(raster.shape[1]),
                    "spikes": [
                        [int(t), int(line)] for t, line in zip(*raster.nonzero())
                    ],
                }
                for name, raster in result.probe_spikes.items()
            },
        }
        path = GOLDEN_DIR / f"{case.name}.json"
        path.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {path.relative_to(GOLDEN_DIR.parent.parent.parent)}")


if __name__ == "__main__":
    sys.exit(generate())
