"""Regenerate the golden spike-trace fixtures.

Run from the repository root after an *intentional* semantic change to
the simulator:

    PYTHONPATH=src:. python tests/fixtures/golden/generate.py

Each fixture freezes the reference engine's probe rasters for one
scenario of ``tests/engine_systems.py``, stored sparsely as
``[tick, line]`` spike coordinates. The reference engine is the single
source of truth; before a fixture is written, every registered engine
(``repro.truenorth.simulator.ENGINES``) replays the scenario and must
reproduce the trace bit for bit, and the verified engine list is
recorded in the payload. ``test_golden_traces.py`` replays the
scenarios through every engine against these files, so a regression is
caught even if all engines drift together — and asserts regeneration
is idempotent (committed bytes == freshly generated). Review a
regenerated diff as carefully as a code change — it redefines
correctness.
"""

import json
import sys
from pathlib import Path
from typing import Dict

GOLDEN_DIR = Path(__file__).resolve().parent


def case_payload(case) -> Dict:
    """The golden payload for one case: reference-generated, all-engine
    verified.

    Raises:
        AssertionError: if any registered engine disagrees with the
            reference trace — a fixture must never be written from a
            divergent simulator.
    """
    import numpy as np

    from repro.truenorth.simulator import ENGINES, Simulator

    from tests.engine_systems import shared_inputs

    results = {}
    for engine in ENGINES:
        simulator = Simulator(case.build(), rng=case.sim_seed, engine=engine)
        inputs = shared_inputs(
            simulator.system, case.ticks, case.input_seed, case.density
        )
        results[engine] = simulator.run(case.ticks, inputs)

    reference = results["reference"]
    for engine, result in results.items():
        assert result.total_spikes == reference.total_spikes, (
            f"{case.name}: {engine} disagrees with reference on total_spikes"
        )
        assert result.probe_spikes.keys() == reference.probe_spikes.keys()
        for name, raster in reference.probe_spikes.items():
            np.testing.assert_array_equal(
                result.probe_spikes[name],
                raster,
                err_msg=f"{case.name}: {engine} disagrees on probe {name!r}",
            )

    return {
        "case": case.name,
        "ticks": case.ticks,
        "sim_seed": case.sim_seed,
        "input_seed": case.input_seed,
        "density": case.density,
        "verified_engines": list(ENGINES),
        "total_spikes": reference.total_spikes,
        "probes": {
            name: {
                "width": int(raster.shape[1]),
                "spikes": [
                    [int(t), int(line)] for t, line in zip(*raster.nonzero())
                ],
            }
            for name, raster in reference.probe_spikes.items()
        },
    }


def render(payload: Dict) -> str:
    """The canonical on-disk encoding (idempotency depends on this)."""
    return json.dumps(payload, indent=1) + "\n"


def generate(out_dir: Path = GOLDEN_DIR, verbose: bool = True) -> Dict[str, str]:
    """Write every case's fixture into ``out_dir``; return name -> text."""
    from tests.engine_systems import ENGINE_CASES

    written = {}
    for case in ENGINE_CASES:
        text = render(case_payload(case))
        path = Path(out_dir) / f"{case.name}.json"
        path.write_text(text)
        written[case.name] = text
        if verbose:
            print(f"wrote {path}")
    return written


if __name__ == "__main__":
    sys.exit(generate() and None)
